//! parfait-observatory: the process-wide metrics registry.
//!
//! Where [`crate::Telemetry`] streams *events* (spans, heartbeats) to a
//! sink as they happen, this module accumulates *aggregates* — atomic
//! counters, gauges, and log2-bucketed latency histograms — that any
//! subsystem can bump at any time and any bin can snapshot at exit.
//! The snapshot serializes two ways from one source of truth:
//!
//! - **canonical JSON** ([`MetricsSnapshot::to_json`]) — embedded in
//!   [`crate::manifest::RunManifest`] so every `BENCH_*.json` row can
//!   carry its provenance; and
//! - **Prometheus text exposition** ([`MetricsSnapshot::to_prometheus`])
//!   — so the upcoming `parfait-serve` daemon can expose `/metrics`
//!   without a new serializer.
//!
//! Both renderers have exact inverse parsers ([`MetricsSnapshot::
//! from_json`], [`MetricsSnapshot::from_prometheus`]); round-tripping is
//! tested, which is what lets CI treat the emitted snapshot as a
//! machine contract rather than a log.
//!
//! Metrics are identified by a name plus a (possibly empty) sorted
//! label set, e.g. `certcache_disk_hit{stage="fps"}`. Handles returned
//! by [`Metrics::counter`]/[`gauge`](Metrics::gauge)/
//! [`histogram`](Metrics::histogram) are clones of the underlying
//! atomic, so hot paths pay one registry lookup once and then a single
//! `fetch_add` per event — no lock, no allocation.
//!
//! Most code uses the shared [`Metrics::global`] registry (one process,
//! one account of what it did); tests that need *exact* totals under
//! concurrency construct their own [`Metrics::new`] and inject it.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use crate::json::Json;

/// A metric identity: name plus sorted `(key, value)` labels.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name (`[a-zA-Z_][a-zA-Z0-9_]*`).
    pub name: String,
    /// Label pairs, sorted by key. Values are arbitrary UTF-8 (escaped
    /// by the renderers).
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Build a key, sorting the labels.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        debug_assert!(valid_name(name), "invalid metric name {name:?}");
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        MetricKey { name: name.to_string(), labels }
    }
}

impl std::fmt::Display for MetricKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)?;
        if !self.labels.is_empty() {
            f.write_str("{")?;
            for (i, (k, v)) in self.labels.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{k}=\"{}\"", escape_label(v))?;
            }
            f.write_str("}")?;
        }
        Ok(())
    }
}

fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

/// Escape a label value for the Prometheus text format (`\\`, `\"`,
/// `\n`).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape_label`].
fn unescape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    let mut chars = v.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// A monotonic counter handle (clone of the registry's atomic).
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous-value handle; stores `f64` bits in an atomic.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i >= 1`
/// holds `[2^(i-1), 2^i)`, and bucket 64 holds `[2^63, u64::MAX]`.
pub const HIST_BUCKETS: usize = 65;

/// Bucket index of a value.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket (the Prometheus `le` value).
pub fn bucket_le(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

struct HistCore {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A log2-bucketed histogram handle.
///
/// Values are unitless `u64`s; latency users record microseconds
/// ([`Histogram::record_duration`]). Buckets double, so the relative
/// error of any reconstructed quantile is bounded by 2× — plenty for
/// "where did the cold seconds go" questions, at the cost of 65 atomics.
#[derive(Clone)]
pub struct Histogram(Arc<HistCore>);

impl Histogram {
    /// Record one value.
    pub fn record(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        // Saturating: a sum overflow must not wrap into a plausible lie.
        let mut cur = self.0.sum.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_add(v);
            match self.0.sum.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Record a duration in microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }
}

enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Hist(Arc<HistCore>),
}

/// The registry: a clonable handle onto a shared metric table.
///
/// Cloning is cheap (`Arc`); all clones see one table. Use
/// [`Metrics::global`] for production accounting and [`Metrics::new`]
/// for isolated test registries.
#[derive(Clone, Default)]
pub struct Metrics(Arc<Mutex<BTreeMap<MetricKey, Slot>>>);

impl Metrics {
    /// A fresh, empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// The process-wide registry.
    pub fn global() -> &'static Metrics {
        static GLOBAL: OnceLock<Metrics> = OnceLock::new();
        GLOBAL.get_or_init(Metrics::new)
    }

    /// Counter handle for `name` with no labels.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Counter handle for `name` with labels.
    ///
    /// Panics if the key is already registered as a different metric
    /// type — one name, one meaning.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        let mut table = self.0.lock().unwrap();
        match table.entry(key).or_insert_with(|| Slot::Counter(Arc::new(AtomicU64::new(0)))) {
            Slot::Counter(a) => Counter(a.clone()),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Gauge handle for `name` with no labels.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Gauge handle for `name` with labels.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        let mut table = self.0.lock().unwrap();
        match table
            .entry(key)
            .or_insert_with(|| Slot::Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
        {
            Slot::Gauge(a) => Gauge(a.clone()),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Histogram handle for `name` with no labels.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_with(name, &[])
    }

    /// Histogram handle for `name` with labels.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = MetricKey::new(name, labels);
        let mut table = self.0.lock().unwrap();
        match table.entry(key).or_insert_with(|| {
            Slot::Hist(Arc::new(HistCore {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }))
        }) {
            Slot::Hist(h) => Histogram(h.clone()),
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// A consistent point-in-time copy of every registered metric.
    /// (Consistent per metric: each atomic is read once; the snapshot
    /// is not a cross-metric transaction.)
    pub fn snapshot(&self) -> MetricsSnapshot {
        let table = self.0.lock().unwrap();
        let mut snap = MetricsSnapshot::default();
        for (key, slot) in table.iter() {
            match slot {
                Slot::Counter(a) => {
                    snap.counters.push((key.clone(), a.load(Ordering::Relaxed)));
                }
                Slot::Gauge(a) => {
                    snap.gauges.push((key.clone(), f64::from_bits(a.load(Ordering::Relaxed))));
                }
                Slot::Hist(h) => {
                    let buckets: Vec<(usize, u64)> = h
                        .buckets
                        .iter()
                        .enumerate()
                        .map(|(i, b)| (i, b.load(Ordering::Relaxed)))
                        .filter(|&(_, n)| n > 0)
                        .collect();
                    snap.hists.push((
                        key.clone(),
                        HistSnapshot {
                            count: h.count.load(Ordering::Relaxed),
                            sum: h.sum.load(Ordering::Relaxed),
                            buckets,
                        },
                    ));
                }
            }
        }
        snap
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics").field("metrics", &self.0.lock().unwrap().len()).finish()
    }
}

/// Frozen histogram state: sparse `(bucket index, count)` pairs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Total observations.
    pub count: u64,
    /// Saturating sum of observed values.
    pub sum: u64,
    /// Non-empty buckets, ascending by index.
    pub buckets: Vec<(usize, u64)>,
}

/// A frozen copy of a [`Metrics`] registry, ready to serialize.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter totals, sorted by key.
    pub counters: Vec<(MetricKey, u64)>,
    /// Gauge values, sorted by key.
    pub gauges: Vec<(MetricKey, f64)>,
    /// Histogram states, sorted by key.
    pub hists: Vec<(MetricKey, HistSnapshot)>,
}

/// Schema version of the snapshot JSON encoding.
pub const SNAPSHOT_SCHEMA: i64 = 1;

fn key_to_json(key: &MetricKey) -> Vec<(String, Json)> {
    vec![
        ("name".into(), Json::str(&key.name)),
        (
            "labels".into(),
            Json::Arr(
                key.labels
                    .iter()
                    .map(|(k, v)| Json::Arr(vec![Json::str(k), Json::str(v)]))
                    .collect(),
            ),
        ),
    ]
}

fn key_from_json(j: &Json) -> Option<MetricKey> {
    let name = j.get("name")?.as_str()?.to_string();
    let mut labels = Vec::new();
    for pair in j.get("labels")?.as_array()? {
        let kv = pair.as_array()?;
        if kv.len() != 2 {
            return None;
        }
        labels.push((kv[0].as_str()?.to_string(), kv[1].as_str()?.to_string()));
    }
    Some(MetricKey { name, labels })
}

impl MetricsSnapshot {
    /// Total of a counter, summed over every label set of `name`.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.counters.iter().filter(|(k, _)| k.name == name).map(|(_, v)| v).sum()
    }

    /// Value of an exact counter key, if present.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        let key = MetricKey::new(name, labels);
        self.counters.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// Value of an exact gauge key, if present.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        let key = MetricKey::new(name, labels);
        self.gauges.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// Histogram state of an exact key, if present.
    pub fn hist(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistSnapshot> {
        let key = MetricKey::new(name, labels);
        self.hists.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Whether any metric (of any type) starts with `prefix` — the key
    /// families CI asserts on.
    pub fn has_family(&self, prefix: &str) -> bool {
        self.counters.iter().map(|(k, _)| &k.name).any(|n| n.starts_with(prefix))
            || self.gauges.iter().map(|(k, _)| &k.name).any(|n| n.starts_with(prefix))
            || self.hists.iter().map(|(k, _)| &k.name).any(|n| n.starts_with(prefix))
    }

    /// Canonical JSON encoding: keys in sorted order, sparse histogram
    /// buckets. Two equal snapshots always render to identical bytes.
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| {
                let mut f = key_to_json(k);
                f.push(("value".into(), Json::Int(*v as i64)));
                Json::Obj(f)
            })
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|(k, v)| {
                let mut f = key_to_json(k);
                f.push(("value".into(), Json::Num(*v)));
                Json::Obj(f)
            })
            .collect();
        let hists = self
            .hists
            .iter()
            .map(|(k, h)| {
                let mut f = key_to_json(k);
                f.push(("count".into(), Json::Int(h.count as i64)));
                f.push(("sum".into(), Json::Int(h.sum as i64)));
                f.push((
                    "buckets".into(),
                    Json::Arr(
                        h.buckets
                            .iter()
                            .map(|&(i, n)| {
                                Json::Arr(vec![Json::Int(i as i64), Json::Int(n as i64)])
                            })
                            .collect(),
                    ),
                ));
                Json::Obj(f)
            })
            .collect();
        Json::obj([
            ("schema", Json::Int(SNAPSHOT_SCHEMA)),
            ("counters", Json::Arr(counters)),
            ("gauges", Json::Arr(gauges)),
            ("histograms", Json::Arr(hists)),
        ])
    }

    /// Parse the [`to_json`](Self::to_json) encoding.
    pub fn from_json(j: &Json) -> Result<MetricsSnapshot, String> {
        if j.get("schema").and_then(|v| v.as_i64()) != Some(SNAPSHOT_SCHEMA) {
            return Err("metrics snapshot: missing or unsupported schema".into());
        }
        let arr = |field: &str| -> Result<&[Json], String> {
            j.get(field)
                .and_then(|v| v.as_array())
                .ok_or_else(|| format!("metrics snapshot: missing {field} array"))
        };
        let mut snap = MetricsSnapshot::default();
        for c in arr("counters")? {
            let key = key_from_json(c).ok_or("metrics snapshot: malformed counter key")?;
            let v = c
                .get("value")
                .and_then(|v| v.as_i64())
                .ok_or("metrics snapshot: malformed counter value")?;
            snap.counters.push((key, v as u64));
        }
        for g in arr("gauges")? {
            let key = key_from_json(g).ok_or("metrics snapshot: malformed gauge key")?;
            let v = g
                .get("value")
                .and_then(|v| v.as_f64())
                .ok_or("metrics snapshot: malformed gauge value")?;
            snap.gauges.push((key, v));
        }
        for h in arr("histograms")? {
            let key = key_from_json(h).ok_or("metrics snapshot: malformed histogram key")?;
            let count = h
                .get("count")
                .and_then(|v| v.as_i64())
                .ok_or("metrics snapshot: malformed histogram count")?;
            let sum = h
                .get("sum")
                .and_then(|v| v.as_i64())
                .ok_or("metrics snapshot: malformed histogram sum")?;
            let mut buckets = Vec::new();
            for b in h
                .get("buckets")
                .and_then(|v| v.as_array())
                .ok_or("metrics snapshot: malformed histogram buckets")?
            {
                let pair = b.as_array().ok_or("metrics snapshot: malformed bucket")?;
                let (Some(i), Some(n)) =
                    (pair.first().and_then(|v| v.as_i64()), pair.get(1).and_then(|v| v.as_i64()))
                else {
                    return Err("metrics snapshot: malformed bucket pair".into());
                };
                if !(0..HIST_BUCKETS as i64).contains(&i) {
                    return Err(format!("metrics snapshot: bucket index {i} out of range"));
                }
                buckets.push((i as usize, n as u64));
            }
            snap.hists.push((key, HistSnapshot { count: count as u64, sum: sum as u64, buckets }));
        }
        Ok(snap)
    }

    /// Prometheus text exposition format (v0.0.4): `# TYPE` comments,
    /// one sample per line, histograms as cumulative `_bucket{le=...}`
    /// plus `_sum`/`_count`. Only buckets whose cumulative count
    /// changes are emitted (plus `+Inf`), which the parser reconstructs
    /// exactly.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_type: Option<(String, String)> = None;
        let mut typed = |out: &mut String, name: &str, kind: &str| {
            if last_type.as_ref().map(|(n, k)| (n.as_str(), k.as_str())) != Some((name, kind)) {
                out.push_str(&format!("# TYPE {name} {kind}\n"));
                last_type = Some((name.to_string(), kind.to_string()));
            }
        };
        for (key, v) in &self.counters {
            typed(&mut out, &key.name, "counter");
            out.push_str(&format!("{key} {v}\n"));
        }
        for (key, v) in &self.gauges {
            typed(&mut out, &key.name, "gauge");
            out.push_str(&format!("{key} {v}\n"));
        }
        for (key, h) in &self.hists {
            typed(&mut out, &key.name, "histogram");
            let with_le = |le: &str| {
                let mut labels: Vec<(String, String)> = key.labels.clone();
                labels.push(("le".into(), le.into()));
                labels.sort();
                MetricKey { name: format!("{}_bucket", key.name), labels }
            };
            let mut cumulative = 0u64;
            for &(i, n) in &h.buckets {
                cumulative += n;
                out.push_str(&format!("{} {cumulative}\n", with_le(&bucket_le(i).to_string())));
            }
            out.push_str(&format!("{} {}\n", with_le("+Inf"), h.count));
            let sum_key =
                MetricKey { name: format!("{}_sum", key.name), labels: key.labels.clone() };
            let count_key =
                MetricKey { name: format!("{}_count", key.name), labels: key.labels.clone() };
            out.push_str(&format!("{sum_key} {}\n", h.sum));
            out.push_str(&format!("{count_key} {}\n", h.count));
        }
        out
    }

    /// Parse the [`to_prometheus`](Self::to_prometheus) encoding back
    /// into a snapshot (the round-trip inverse; relies on the `# TYPE`
    /// comments this renderer always emits).
    pub fn from_prometheus(text: &str) -> Result<MetricsSnapshot, String> {
        let mut kinds: BTreeMap<String, String> = BTreeMap::new();
        let mut counters: BTreeMap<MetricKey, u64> = BTreeMap::new();
        let mut gauges: BTreeMap<MetricKey, f64> = BTreeMap::new();
        struct HistAcc {
            // (bucket index, cumulative) in emission order.
            cum: Vec<(usize, u64)>,
            sum: u64,
            count: u64,
        }
        let mut hists: BTreeMap<MetricKey, HistAcc> = BTreeMap::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let err = |what: &str| format!("prometheus line {}: {what}", lineno + 1);
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut it = rest.split_whitespace();
                let (Some(name), Some(kind)) = (it.next(), it.next()) else {
                    return Err(err("malformed TYPE comment"));
                };
                kinds.insert(name.to_string(), kind.to_string());
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let (key, value) = parse_prometheus_sample(line).map_err(|e| err(&e))?;
            // Histogram samples use suffixed names; resolve the base.
            let hist_base = ["_bucket", "_sum", "_count"].iter().find_map(|suffix| {
                let base = key.name.strip_suffix(suffix)?;
                (kinds.get(base).map(String::as_str) == Some("histogram"))
                    .then(|| (base.to_string(), *suffix))
            });
            if let Some((base, suffix)) = hist_base {
                let mut labels = key.labels.clone();
                let le = match suffix {
                    "_bucket" => {
                        let pos = labels
                            .iter()
                            .position(|(k, _)| k == "le")
                            .ok_or_else(|| err("bucket sample without le"))?;
                        Some(labels.remove(pos).1)
                    }
                    _ => None,
                };
                let base_key = MetricKey { name: base, labels };
                let acc = hists.entry(base_key).or_insert_with(|| HistAcc {
                    cum: Vec::new(),
                    sum: 0,
                    count: 0,
                });
                let int = value.parse::<u64>().map_err(|_| err("non-integer histogram value"))?;
                match (suffix, le) {
                    ("_bucket", Some(le)) => {
                        if le == "+Inf" {
                            continue; // equals _count; nothing to reconstruct
                        }
                        let bound = le.parse::<u64>().map_err(|_| err("malformed le bound"))?;
                        let index = if bound == 0 {
                            0
                        } else if bound == u64::MAX {
                            64
                        } else if (bound + 1).is_power_of_two() {
                            (bound + 1).trailing_zeros() as usize
                        } else {
                            return Err(err("le bound is not a log2 boundary"));
                        };
                        acc.cum.push((index, int));
                    }
                    ("_sum", _) => acc.sum = int,
                    ("_count", _) => acc.count = int,
                    _ => unreachable!(),
                }
                continue;
            }
            match kinds.get(&key.name).map(String::as_str) {
                Some("counter") => {
                    let v = value.parse::<u64>().map_err(|_| err("non-integer counter"))?;
                    counters.insert(key, v);
                }
                Some("gauge") => {
                    let v = value.parse::<f64>().map_err(|_| err("malformed gauge"))?;
                    gauges.insert(key, v);
                }
                Some(other) => return Err(err(&format!("unsupported metric type {other}"))),
                None => return Err(err("sample before its TYPE comment")),
            }
        }
        let mut snap = MetricsSnapshot {
            counters: counters.into_iter().collect(),
            gauges: gauges.into_iter().collect(),
            hists: Vec::new(),
        };
        let mut hist_entries: Vec<(MetricKey, HistSnapshot)> = Vec::new();
        for (key, acc) in hists {
            let mut buckets = Vec::new();
            let mut prev = 0u64;
            let mut last_index = None;
            for (index, cum) in acc.cum {
                if last_index.is_some_and(|li| index <= li) {
                    return Err(format!("prometheus: {key}: le bounds out of order"));
                }
                let n = cum
                    .checked_sub(prev)
                    .ok_or_else(|| format!("prometheus: {key}: non-monotone buckets"))?;
                if n > 0 {
                    buckets.push((index, n));
                }
                prev = cum;
                last_index = Some(index);
            }
            hist_entries.push((key, HistSnapshot { count: acc.count, sum: acc.sum, buckets }));
        }
        hist_entries.sort_by(|a, b| a.0.cmp(&b.0));
        snap.hists = hist_entries;
        Ok(snap)
    }
}

/// Parse one `name{labels} value` sample line.
fn parse_prometheus_sample(line: &str) -> Result<(MetricKey, String), String> {
    let (name_and_labels, value) =
        line.rsplit_once(' ').ok_or_else(|| "missing value".to_string())?;
    let (name, labels) = match name_and_labels.split_once('{') {
        None => (name_and_labels.trim().to_string(), Vec::new()),
        Some((name, rest)) => {
            let body = rest.strip_suffix('}').ok_or("unterminated label set")?;
            let mut labels = Vec::new();
            let mut chars = body.chars().peekable();
            while chars.peek().is_some() {
                let mut k = String::new();
                for c in chars.by_ref() {
                    if c == '=' {
                        break;
                    }
                    k.push(c);
                }
                if chars.next() != Some('"') {
                    return Err("label value must be quoted".into());
                }
                let mut raw = String::new();
                let mut escaped = false;
                let mut closed = false;
                for c in chars.by_ref() {
                    if escaped {
                        raw.push('\\');
                        raw.push(c);
                        escaped = false;
                    } else if c == '\\' {
                        escaped = true;
                    } else if c == '"' {
                        closed = true;
                        break;
                    } else {
                        raw.push(c);
                    }
                }
                if !closed {
                    return Err("unterminated label value".into());
                }
                if chars.peek() == Some(&',') {
                    chars.next();
                }
                labels.push((k, unescape_label(&raw)));
            }
            labels.sort();
            (name.trim().to_string(), labels)
        }
    };
    Ok((MetricKey { name, labels }, value.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_cover_zero_one_powers_and_max() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        assert_eq!(bucket_index(1 << 62), 63);
        assert_eq!(bucket_index(1 << 63), 64);
        assert_eq!(bucket_index(u64::MAX), 64);
        // Boundaries and indices are inverse: le(i) is the largest
        // value that lands in bucket i, and le(i)+1 lands in i+1.
        for i in 0..HIST_BUCKETS {
            assert_eq!(bucket_index(bucket_le(i)), i, "le({i}) maps back");
            if i + 1 < HIST_BUCKETS {
                assert_eq!(bucket_index(bucket_le(i) + 1), i + 1);
            }
        }
    }

    #[test]
    fn histogram_records_into_expected_buckets() {
        let m = Metrics::new();
        let h = m.histogram("t_us");
        for v in [0, 1, 1, 3, 1024, u64::MAX] {
            h.record(v);
        }
        let snap = m.snapshot();
        let hs = snap.hist("t_us", &[]).unwrap();
        assert_eq!(hs.count, 6);
        assert_eq!(hs.sum, u64::MAX, "sum saturates instead of wrapping");
        assert_eq!(hs.buckets, vec![(0, 1), (1, 2), (2, 1), (11, 1), (64, 1)]);
    }

    #[test]
    fn counters_and_gauges_snapshot_exactly() {
        let m = Metrics::new();
        m.counter_with("hits", &[("stage", "fps")]).add(3);
        m.counter_with("hits", &[("stage", "lockstep")]).inc();
        m.gauge("rate").set(2.5e6);
        let snap = m.snapshot();
        assert_eq!(snap.counter("hits", &[("stage", "fps")]), Some(3));
        assert_eq!(snap.counter("hits", &[("stage", "lockstep")]), Some(1));
        assert_eq!(snap.counter_total("hits"), 4);
        assert_eq!(snap.gauge("rate", &[]), Some(2.5e6));
    }

    #[test]
    fn handles_are_live_and_shared() {
        let m = Metrics::new();
        let a = m.counter("n");
        let b = m.counter("n");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_panics() {
        let m = Metrics::new();
        m.counter("x");
        m.gauge("x");
    }

    #[test]
    fn prometheus_escapes_label_values() {
        let m = Metrics::new();
        m.counter_with("c", &[("path", "a\\b\"c\nd")]).inc();
        let text = m.snapshot().to_prometheus();
        assert!(text.contains(r#"c{path="a\\b\"c\nd"} 1"#), "{text}");
        // And the escaping is invertible.
        let back = MetricsSnapshot::from_prometheus(&text).unwrap();
        assert_eq!(back.counter("c", &[("path", "a\\b\"c\nd")]), Some(1));
    }

    fn demo_snapshot() -> MetricsSnapshot {
        let m = Metrics::new();
        m.counter_with("certcache_disk_hit", &[("stage", "fps")]).add(5);
        m.counter("pool_tasks_spawned_total").add(42);
        m.gauge("fps_cycles_per_second").set(8.125e6);
        m.gauge_with("g2", &[("worker", "1")]).set(-0.5);
        let h = m.histogram_with("pipeline_stage_wall_us", &[("stage", "fps")]);
        for v in [0, 1, 5, 5, 900, 1 << 40, u64::MAX] {
            h.record(v);
        }
        m.snapshot()
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let snap = demo_snapshot();
        let text = snap.to_json().to_string();
        let back = MetricsSnapshot::from_json(&crate::json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, snap);
        // Canonical: equal snapshots render to identical bytes.
        assert_eq!(back.to_json().to_string(), text);
    }

    #[test]
    fn snapshot_roundtrips_through_prometheus() {
        let snap = demo_snapshot();
        let text = snap.to_prometheus();
        let back = MetricsSnapshot::from_prometheus(&text).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_prometheus(), text);
    }

    #[test]
    fn prometheus_histogram_text_is_cumulative_with_inf() {
        let m = Metrics::new();
        let h = m.histogram("lat_us");
        h.record(1);
        h.record(1);
        h.record(300);
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("# TYPE lat_us histogram"), "{text}");
        assert!(text.contains(r#"lat_us_bucket{le="1"} 2"#), "{text}");
        assert!(text.contains(r#"lat_us_bucket{le="511"} 3"#), "{text}");
        assert!(text.contains(r#"lat_us_bucket{le="+Inf"} 3"#), "{text}");
        assert!(text.contains("lat_us_sum 302"), "{text}");
        assert!(text.contains("lat_us_count 3"), "{text}");
    }

    #[test]
    fn global_registry_is_one_instance() {
        Metrics::global().counter("telemetry_test_global_probe").inc();
        let snap = Metrics::global().snapshot();
        assert!(snap.counter_total("telemetry_test_global_probe") >= 1);
    }
}
