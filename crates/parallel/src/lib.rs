//! parfait-parallel — a zero-dependency scoped work-stealing thread
//! pool for the verification pipeline.
//!
//! The workspace rule is "no external dependencies", so this is built
//! entirely on `std`: [`scope`] creates a pool of worker threads inside
//! a [`std::thread::scope`], which lets jobs borrow from the caller's
//! stack (snapshots, scripts, configuration) without `'static` bounds or
//! reference counting. Each worker owns a deque; [`Pool::spawn`] pushes
//! to the least recently used deque, a worker pops its own deque LIFO
//! (cache-warm), and an idle worker steals FIFO from a victim (oldest
//! job first, the classic stealing discipline). Jobs here are coarse —
//! whole verification segments or whole case studies, milliseconds to
//! minutes each — so the queues share one mutex; the stealing structure
//! is about load balance, not about shaving nanoseconds off `push`.
//!
//! Panics inside jobs do not poison the pool: the first panic payload is
//! captured, remaining queued jobs still run, and the panic is resumed
//! on the caller's thread once the scope ends (mirroring
//! `std::thread::scope` semantics).

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use parfait_telemetry::metrics::{Counter, Metrics};

/// The parallelism degree to use when the user did not pick one: the
/// `PARFAIT_THREADS` environment variable if set and positive, else the
/// machine's available parallelism, else 1. A malformed value is a
/// hard error (stderr + exit 2, via [`parfait_telemetry::env`]).
pub fn default_threads() -> usize {
    parfait_telemetry::env::threads_loud()
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// A job: runs once on some worker, receiving that worker's index.
type Job<'env> = Box<dyn FnOnce(usize) + Send + 'env>;

struct State<'env> {
    /// One deque per worker; `spawn` round-robins across them.
    deques: Vec<VecDeque<Job<'env>>>,
    /// Next deque `spawn` pushes to.
    next: usize,
    /// Jobs spawned but not yet completed.
    pending: usize,
    /// Set once the owning scope is finished and drained.
    shutdown: bool,
    /// First captured panic payload from a job.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Shared<'env> {
    state: Mutex<State<'env>>,
    /// Signaled on spawn (work available) and on completion (possibly
    /// idle) and on shutdown.
    cv: Condvar,
    /// Registry the pool accounts to, plus pre-resolved hot-path
    /// handles (`pool_tasks_spawned_total`, `pool_tasks_completed_total`,
    /// `pool_steals_total`; per-worker busy/idle nanos are accumulated
    /// locally and flushed once at worker exit).
    metrics: Metrics,
    spawned: Counter,
    completed: Counter,
    steals: Counter,
}

/// A scoped thread pool handle; obtained from [`scope`].
pub struct Pool<'env> {
    shared: Shared<'env>,
    threads: usize,
}

impl<'env> Pool<'env> {
    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Jobs spawned but not yet completed — the queue-depth signal a
    /// long-running scheduler exports as a gauge. A snapshot, stale the
    /// moment it is read; use it for observability, never for control
    /// flow.
    pub fn pending(&self) -> usize {
        self.shared.state.lock().unwrap().pending
    }

    /// Submit a job. It may borrow anything that outlives the [`scope`]
    /// call and runs on some worker thread before `scope` returns.
    pub fn spawn(&self, job: impl FnOnce(usize) + Send + 'env) {
        let mut st = self.shared.state.lock().unwrap();
        let slot = st.next % st.deques.len();
        st.next = st.next.wrapping_add(1);
        st.pending += 1;
        st.deques[slot].push_back(Box::new(job));
        drop(st);
        self.shared.spawned.inc();
        self.shared.cv.notify_all();
    }
}

impl<'env> Shared<'env> {
    /// Pop a job for worker `id`: own deque from the back (LIFO), else
    /// steal the oldest job of the most loaded victim (FIFO). The flag
    /// is true when the job was stolen.
    fn find_job(st: &mut State<'env>, id: usize) -> Option<(Job<'env>, bool)> {
        if let Some(job) = st.deques[id].pop_back() {
            return Some((job, false));
        }
        let victim = (0..st.deques.len())
            .filter(|&v| v != id && !st.deques[v].is_empty())
            .max_by_key(|&v| st.deques[v].len())?;
        st.deques[victim].pop_front().map(|job| (job, true))
    }

    fn worker_loop(&self, id: usize) {
        // Busy/idle nanos accumulate in locals — zero shared-state
        // traffic per job — and flush to the registry once at exit.
        let mut busy_ns = 0u64;
        let mut idle_ns = 0u64;
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some((job, stolen)) = Self::find_job(&mut st, id) {
                drop(st);
                if stolen {
                    self.steals.inc();
                }
                let start = Instant::now();
                let result = catch_unwind(AssertUnwindSafe(|| job(id)));
                busy_ns += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.completed.inc();
                st = self.state.lock().unwrap();
                st.pending -= 1;
                if let Err(payload) = result {
                    if st.panic.is_none() {
                        st.panic = Some(payload);
                    }
                }
                self.cv.notify_all();
                continue;
            }
            if st.shutdown {
                break;
            }
            let start = Instant::now();
            st = self.cv.wait(st).unwrap();
            idle_ns += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        }
        drop(st);
        let worker = id.to_string();
        self.metrics.counter_with("pool_worker_busy_ns", &[("worker", &worker)]).add(busy_ns);
        self.metrics.counter_with("pool_worker_idle_ns", &[("worker", &worker)]).add(idle_ns);
    }
}

/// Run `f` with a pool of `threads` workers (clamped to at least 1).
/// Returns after every spawned job has completed and every worker has
/// exited. If any job panicked, the first panic is resumed here.
/// Accounts to the process-wide [`Metrics::global`] registry.
pub fn scope<'env, R>(threads: usize, f: impl FnOnce(&Pool<'env>) -> R) -> R {
    scope_with(threads, Metrics::global(), f)
}

/// [`scope`] accounting to an explicit registry — tests inject an
/// isolated [`Metrics`] to assert exact counter totals regardless of
/// what else the process is running.
pub fn scope_with<'env, R>(
    threads: usize,
    metrics: &Metrics,
    f: impl FnOnce(&Pool<'env>) -> R,
) -> R {
    let threads = threads.max(1);
    let pool = Pool {
        shared: Shared {
            state: Mutex::new(State {
                deques: (0..threads).map(|_| VecDeque::new()).collect(),
                next: 0,
                pending: 0,
                shutdown: false,
                panic: None,
            }),
            cv: Condvar::new(),
            metrics: metrics.clone(),
            spawned: metrics.counter("pool_tasks_spawned_total"),
            completed: metrics.counter("pool_tasks_completed_total"),
            steals: metrics.counter("pool_steals_total"),
        },
        threads,
    };
    let result = std::thread::scope(|s| {
        for id in 0..threads {
            let shared = &pool.shared;
            s.spawn(move || shared.worker_loop(id));
        }
        let r = f(&pool);
        // Wait for the queues to drain, then release the workers.
        let mut st = pool.shared.state.lock().unwrap();
        while st.pending > 0 {
            st = pool.shared.cv.wait(st).unwrap();
        }
        st.shutdown = true;
        drop(st);
        pool.shared.cv.notify_all();
        r
    });
    if let Some(payload) = pool.shared.state.lock().unwrap().panic.take() {
        resume_unwind(payload);
    }
    result
}

/// Apply `f` to every item on the pool, preserving input order in the
/// output. With `threads <= 1` this runs inline on the caller's thread
/// (no pool, deterministic scheduling) — the common oracle path.
pub fn parallel_map<T, U, F>(threads: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    scope(threads, |pool| {
        for (i, item) in items.into_iter().enumerate() {
            let f = &f;
            let slots = &slots;
            pool.spawn(move |_w| {
                let out = f(i, item);
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    slots.into_iter().map(|s| s.into_inner().unwrap().expect("job completed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_runs_all_jobs_with_borrows() {
        let data: Vec<usize> = (0..100).collect();
        let sum = AtomicUsize::new(0);
        scope(4, |pool| {
            for chunk in data.chunks(7) {
                let sum = &sum;
                pool.spawn(move |_w| {
                    sum.fetch_add(chunk.iter().sum::<usize>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), (0..100).sum());
    }

    #[test]
    fn parallel_map_preserves_order() {
        for threads in [1, 2, 8] {
            let out = parallel_map(threads, (0..50).collect(), |i, x: i32| {
                assert_eq!(i as i32, x);
                x * 2
            });
            assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_ids_are_in_range() {
        let max_id = AtomicUsize::new(0);
        scope(3, |pool| {
            for _ in 0..64 {
                let max_id = &max_id;
                pool.spawn(move |w| {
                    max_id.fetch_max(w, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_micros(100));
                });
            }
        });
        assert!(max_id.load(Ordering::Relaxed) < 3);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let completed = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            scope(2, |pool| {
                pool.spawn(|_| panic!("boom"));
                for _ in 0..8 {
                    let completed = &completed;
                    pool.spawn(move |_| {
                        completed.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(caught.is_err(), "panic must cross the scope");
        // Sibling jobs are not cancelled by a panicking one.
        assert_eq!(completed.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn pool_counters_are_exact_at_8_threads() {
        // An isolated registry sees only this scope's pool, so the
        // totals are exact — no lost increments under contention.
        const JOBS: usize = 500;
        let metrics = Metrics::new();
        let ran = AtomicUsize::new(0);
        scope_with(8, &metrics, |pool| {
            for _ in 0..JOBS {
                let ran = &ran;
                pool.spawn(move |_w| {
                    ran.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(ran.load(Ordering::Relaxed), JOBS);
        let snap = metrics.snapshot();
        assert_eq!(snap.counter_total("pool_tasks_spawned_total"), JOBS as u64);
        assert_eq!(snap.counter_total("pool_tasks_completed_total"), JOBS as u64);
        assert!(snap.counter_total("pool_steals_total") <= JOBS as u64);
        // Every worker flushed a busy and an idle line.
        for w in 0..8 {
            let worker = w.to_string();
            let labels = [("worker", worker.as_str())];
            assert!(snap.counter("pool_worker_busy_ns", &labels).is_some(), "worker {w} busy");
            assert!(snap.counter("pool_worker_idle_ns", &labels).is_some(), "worker {w} idle");
        }
    }

    #[test]
    fn empty_scope_terminates() {
        let r = scope(4, |_pool| 42);
        assert_eq!(r, 42);
    }
}
