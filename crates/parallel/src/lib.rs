//! parfait-parallel — a zero-dependency scoped work-stealing thread
//! pool for the verification pipeline.
//!
//! The workspace rule is "no external dependencies", so this is built
//! entirely on `std`: [`scope`] creates a pool of worker threads inside
//! a [`std::thread::scope`], which lets jobs borrow from the caller's
//! stack (snapshots, scripts, configuration) without `'static` bounds or
//! reference counting. Each worker owns a deque; [`Pool::spawn`] pushes
//! to the least recently used deque, a worker pops its own deque LIFO
//! (cache-warm), and an idle worker steals FIFO from a victim (oldest
//! job first, the classic stealing discipline). Jobs here are coarse —
//! whole verification segments or whole case studies, milliseconds to
//! minutes each — so the queues share one mutex; the stealing structure
//! is about load balance, not about shaving nanoseconds off `push`.
//!
//! Panics inside jobs do not poison the pool: the first panic payload is
//! captured, remaining queued jobs still run, and the panic is resumed
//! on the caller's thread once the scope ends (mirroring
//! `std::thread::scope` semantics).

#![forbid(unsafe_code)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

/// The parallelism degree to use when the user did not pick one: the
/// `PARFAIT_THREADS` environment variable if set and positive, else the
/// machine's available parallelism, else 1.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("PARFAIT_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// A job: runs once on some worker, receiving that worker's index.
type Job<'env> = Box<dyn FnOnce(usize) + Send + 'env>;

struct State<'env> {
    /// One deque per worker; `spawn` round-robins across them.
    deques: Vec<VecDeque<Job<'env>>>,
    /// Next deque `spawn` pushes to.
    next: usize,
    /// Jobs spawned but not yet completed.
    pending: usize,
    /// Set once the owning scope is finished and drained.
    shutdown: bool,
    /// First captured panic payload from a job.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Shared<'env> {
    state: Mutex<State<'env>>,
    /// Signaled on spawn (work available) and on completion (possibly
    /// idle) and on shutdown.
    cv: Condvar,
}

/// A scoped thread pool handle; obtained from [`scope`].
pub struct Pool<'env> {
    shared: Shared<'env>,
    threads: usize,
}

impl<'env> Pool<'env> {
    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Submit a job. It may borrow anything that outlives the [`scope`]
    /// call and runs on some worker thread before `scope` returns.
    pub fn spawn(&self, job: impl FnOnce(usize) + Send + 'env) {
        let mut st = self.shared.state.lock().unwrap();
        let slot = st.next % st.deques.len();
        st.next = st.next.wrapping_add(1);
        st.pending += 1;
        st.deques[slot].push_back(Box::new(job));
        drop(st);
        self.shared.cv.notify_all();
    }
}

impl<'env> Shared<'env> {
    /// Pop a job for worker `id`: own deque from the back (LIFO), else
    /// steal the oldest job of the most loaded victim (FIFO).
    fn find_job(st: &mut State<'env>, id: usize) -> Option<Job<'env>> {
        if let Some(job) = st.deques[id].pop_back() {
            return Some(job);
        }
        let victim = (0..st.deques.len())
            .filter(|&v| v != id && !st.deques[v].is_empty())
            .max_by_key(|&v| st.deques[v].len())?;
        st.deques[victim].pop_front()
    }

    fn worker_loop(&self, id: usize) {
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(job) = Self::find_job(&mut st, id) {
                drop(st);
                let result = catch_unwind(AssertUnwindSafe(|| job(id)));
                st = self.state.lock().unwrap();
                st.pending -= 1;
                if let Err(payload) = result {
                    if st.panic.is_none() {
                        st.panic = Some(payload);
                    }
                }
                self.cv.notify_all();
                continue;
            }
            if st.shutdown {
                return;
            }
            st = self.cv.wait(st).unwrap();
        }
    }
}

/// Run `f` with a pool of `threads` workers (clamped to at least 1).
/// Returns after every spawned job has completed and every worker has
/// exited. If any job panicked, the first panic is resumed here.
pub fn scope<'env, R>(threads: usize, f: impl FnOnce(&Pool<'env>) -> R) -> R {
    let threads = threads.max(1);
    let pool = Pool {
        shared: Shared {
            state: Mutex::new(State {
                deques: (0..threads).map(|_| VecDeque::new()).collect(),
                next: 0,
                pending: 0,
                shutdown: false,
                panic: None,
            }),
            cv: Condvar::new(),
        },
        threads,
    };
    let result = std::thread::scope(|s| {
        for id in 0..threads {
            let shared = &pool.shared;
            s.spawn(move || shared.worker_loop(id));
        }
        let r = f(&pool);
        // Wait for the queues to drain, then release the workers.
        let mut st = pool.shared.state.lock().unwrap();
        while st.pending > 0 {
            st = pool.shared.cv.wait(st).unwrap();
        }
        st.shutdown = true;
        drop(st);
        pool.shared.cv.notify_all();
        r
    });
    if let Some(payload) = pool.shared.state.lock().unwrap().panic.take() {
        resume_unwind(payload);
    }
    result
}

/// Apply `f` to every item on the pool, preserving input order in the
/// output. With `threads <= 1` this runs inline on the caller's thread
/// (no pool, deterministic scheduling) — the common oracle path.
pub fn parallel_map<T, U, F>(threads: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.into_iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let slots: Vec<Mutex<Option<U>>> = items.iter().map(|_| Mutex::new(None)).collect();
    scope(threads, |pool| {
        for (i, item) in items.into_iter().enumerate() {
            let f = &f;
            let slots = &slots;
            pool.spawn(move |_w| {
                let out = f(i, item);
                *slots[i].lock().unwrap() = Some(out);
            });
        }
    });
    slots.into_iter().map(|s| s.into_inner().unwrap().expect("job completed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_runs_all_jobs_with_borrows() {
        let data: Vec<usize> = (0..100).collect();
        let sum = AtomicUsize::new(0);
        scope(4, |pool| {
            for chunk in data.chunks(7) {
                let sum = &sum;
                pool.spawn(move |_w| {
                    sum.fetch_add(chunk.iter().sum::<usize>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), (0..100).sum());
    }

    #[test]
    fn parallel_map_preserves_order() {
        for threads in [1, 2, 8] {
            let out = parallel_map(threads, (0..50).collect(), |i, x: i32| {
                assert_eq!(i as i32, x);
                x * 2
            });
            assert_eq!(out, (0..50).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn worker_ids_are_in_range() {
        let max_id = AtomicUsize::new(0);
        scope(3, |pool| {
            for _ in 0..64 {
                let max_id = &max_id;
                pool.spawn(move |w| {
                    max_id.fetch_max(w, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_micros(100));
                });
            }
        });
        assert!(max_id.load(Ordering::Relaxed) < 3);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let completed = AtomicUsize::new(0);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            scope(2, |pool| {
                pool.spawn(|_| panic!("boom"));
                for _ in 0..8 {
                    let completed = &completed;
                    pool.spawn(move |_| {
                        completed.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(caught.is_err(), "panic must cross the scope");
        // Sibling jobs are not cancelled by a panicking one.
        assert_eq!(completed.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn empty_scope_terminates() {
        let r = scope(4, |_pool| 42);
        assert_eq!(r, 42);
    }
}
