//! parfait-lint — static secret-taint / constant-time analysis.
//!
//! Parfait's dynamic stages (lockstep, equivalence, FPS) prove
//! leakage-freedom end-to-end, but only report violations after an
//! expensive run. The leakage bugs they catch live in secret-dependent
//! *control flow* and *memory addressing*; this crate finds those
//! statically, in milliseconds, at two layers:
//!
//! * [`lint_ir`] — forward taint analysis over the littlec IR
//!   ([`parfait_littlec::ir`]), seeded from the handler's
//!   secret-state parameter, with fixpoint propagation across the CFG
//!   and through calls. This is the "App Impl \[C\]" layer.
//! * [`lint_asm`] — CFG recovery over the assembled RV32IM firmware
//!   ([`parfait_riscv::decode`]) plus abstract taint interpretation
//!   over registers and stack slots with the same rule set, so leaks
//!   *introduced by* `littlec::opt`/`regalloc` (spills, branch
//!   rewrites) are caught even when the IR is clean.
//!
//! Both layers enforce the same core rules:
//!
//! | rule id      | violation                                          |
//! |--------------|----------------------------------------------------|
//! | `CT-BRANCH`  | branch (or loop bound) on a secret-derived value   |
//! | `CT-MEM`     | load/store at a secret-dependent address           |
//! | `CT-LATENCY` | secret operand to a variable-latency op            |
//! | `CT-ABI`     | callee-saved register clobbered across the handler (asm layer only) |
//!
//! Which instruction classes count as `CT-LATENCY`/`CT-MEM` sinks is
//! not hard-coded: it is derived from the supported cores' declared
//! [`parfait_cores::LeakageContract`]s via [`latency_model`], so the
//! lint's applicability tracks the microarchitectures it protects.
//!
//! Findings carry a [`Diagnostic`] (rule id + source span), the layer,
//! and the taint path from seed to sink. [`lint_source`] runs both
//! layers over one littlec application and is what the pipeline's
//! `ctcheck` stage and the `lint` binary call.

#![forbid(unsafe_code)]

use std::fmt;

use parfait_littlec::codegen::OptLevel;
use parfait_littlec::diag::Diagnostic;
use parfait_littlec::LcError;
use parfait_telemetry::json::Json;
use parfait_telemetry::Telemetry;

mod asm_lint;
mod bound;
mod ir_lint;
mod latency_model;

pub use asm_lint::{lint_asm, lint_asm_dense, lint_asm_threaded};
pub use bound::{
    bound_asm, BoundError, BoundRegions, BoundReport, BOUND_RULESET_VERSION, HOST_POLL_ITERS,
    SERVER_ROUNDS,
};
pub use ir_lint::lint_ir;
pub use latency_model::{latency_model, latency_model_fingerprint, LatencyModel};

/// Version string of the rule set; part of the `ctcheck` stage's input
/// hash so a rule change invalidates cached certificates.
pub const RULESET_VERSION: &str = "ct-rules-v1";

/// The handler entry point every firmware exposes, with the Parfait
/// ABI: `handle(u8* state, u8* cmd, u8* resp)` where `state` is
/// secret, `cmd` is attacker-chosen (public), and `resp` is the
/// declassified-by-specification output buffer.
pub const HANDLER_ENTRY: &str = "handle";

/// Which analysis layer produced a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// littlec IR (the "App Impl \[C\]" level).
    Ir,
    /// Assembled RV32IM firmware (the "App Impl \[Asm\]" level).
    Asm,
}

impl Layer {
    /// Stable machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            Layer::Ir => "ir",
            Layer::Asm => "asm",
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The constant-time rule a finding violates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Secret-dependent branch or loop bound.
    SecretBranch,
    /// Secret-indexed load or store.
    SecretIndex,
    /// Secret operand to a variable-latency operation (div/rem).
    SecretLatency,
    /// Callee-saved register (or `ra`/`sp`) clobbered across the
    /// handler: the firmware returns to the boot loop with ABI state
    /// the caller relies on silently corrupted.
    CalleeSaved,
}

impl RuleId {
    /// Stable rule id (diagnostic codes, baselines, JSON).
    pub fn id(self) -> &'static str {
        match self {
            RuleId::SecretBranch => "CT-BRANCH",
            RuleId::SecretIndex => "CT-MEM",
            RuleId::SecretLatency => "CT-LATENCY",
            RuleId::CalleeSaved => "CT-ABI",
        }
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One constant-time violation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// The violated rule.
    pub rule: RuleId,
    /// Which layer caught it.
    pub layer: Layer,
    /// Rule id + span + message (the shared littlec diagnostic type).
    pub diagnostic: Diagnostic,
    /// The taint path, seed first, sink last.
    pub taint: Vec<String>,
}

impl Finding {
    /// Serialize for `lint --json` and the findings baseline.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("rule", Json::str(self.rule.id())),
            ("layer", Json::str(self.layer.as_str())),
            ("function", Json::str(&self.diagnostic.span.function)),
            ("line", Json::Int(self.diagnostic.span.line as i64)),
            ("message", Json::str(&self.diagnostic.message)),
            ("taint", Json::Arr(self.taint.iter().map(Json::str).collect())),
        ])
    }

    /// The stable identity used by the findings ratchet: everything
    /// except the free-text taint path.
    pub fn baseline_key(&self) -> String {
        format!(
            "{}|{}|{}|{}|{}",
            self.rule.id(),
            self.layer,
            self.diagnostic.span.function,
            self.diagnostic.span.line,
            self.diagnostic.message
        )
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} layer)", self.diagnostic, self.layer)?;
        if !self.taint.is_empty() {
            write!(f, "\n    taint: {}", self.taint.join(" -> "))?;
        }
        Ok(())
    }
}

/// Why the analyzer could not produce a verdict (distinct from a
/// finding: an error means the program is outside the analyzable
/// fragment, not that it leaks).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LintError {
    /// The littlec front end or lowering rejected the source.
    Frontend(LcError),
    /// The generated assembly failed to assemble or decode.
    Asm(String),
    /// The program has no entry function with the expected name.
    NoEntry(String),
    /// A construct outside the analyzable fragment (indirect jump,
    /// recursion); documented incompleteness, reported loudly instead
    /// of analyzed unsoundly.
    Unsupported(String),
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::Frontend(e) => write!(f, "front end: {e}"),
            LintError::Asm(e) => write!(f, "assembly: {e}"),
            LintError::NoEntry(e) => write!(f, "no entry function `{e}`"),
            LintError::Unsupported(e) => write!(f, "outside the analyzable fragment: {e}"),
        }
    }
}

impl std::error::Error for LintError {}

impl From<LcError> for LintError {
    fn from(e: LcError) -> LintError {
        LintError::Frontend(e)
    }
}

/// The result of linting one application at one optimization level.
#[derive(Clone, Debug)]
pub struct LintReport {
    /// All findings, both layers, sorted and deduplicated.
    pub findings: Vec<Finding>,
    /// IR instructions analyzed (deterministic size stat).
    pub ir_insts: usize,
    /// Assembly instructions analyzed (deterministic size stat).
    pub asm_instrs: usize,
}

impl LintReport {
    /// Whether no rule fired at either layer.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// The distinct rule ids fired at `layer`.
    pub fn rules_at(&self, layer: Layer) -> Vec<RuleId> {
        let mut rules: Vec<RuleId> =
            self.findings.iter().filter(|f| f.layer == layer).map(|f| f.rule).collect();
        rules.sort();
        rules.dedup();
        rules
    }
}

/// Lint one littlec application at both layers: taint analysis over
/// the lowered (unoptimized) IR, then abstract interpretation over the
/// firmware compiled at `opt` and assembled.
///
/// Emits `lint.ir` / `lint.asm` telemetry spans and a `lint.findings`
/// counter.
pub fn lint_source(source: &str, opt: OptLevel, tel: &Telemetry) -> Result<LintReport, LintError> {
    lint_source_with(source, opt, tel, |a| a)
}

/// [`lint_source`] with a hook applied to the compiled assembly text
/// before the asm layer analyzes it. Production callers pass the
/// identity; the `parfait-adversary` mutation harness (DESIGN.md §12)
/// seeds compiler-introduced leaks through it to prove the asm layer
/// catches what the IR layer cannot see.
pub fn lint_source_with(
    source: &str,
    opt: OptLevel,
    tel: &Telemetry,
    patch_asm: impl FnOnce(String) -> String,
) -> Result<LintReport, LintError> {
    let program = parfait_littlec::frontend(source)?;
    let ir = parfait_littlec::ir::lower(&program)?;
    let ir_findings = {
        let _span = tel.span("lint.ir");
        lint_ir(&ir, HANDLER_ENTRY)?
    };
    let ir_insts = ir.functions.iter().map(parfait_littlec::opt::inst_count).sum();
    let asm = patch_asm(parfait_littlec::compile(&program, opt)?);
    let prog = parfait_riscv::assemble(&asm)
        .map_err(|e| LintError::Asm(format!("generated assembly does not assemble: {e}")))?;
    let asm_findings = {
        let _span = tel.span("lint.asm");
        lint_asm(&prog, HANDLER_ENTRY)?
    };
    let asm_instrs = prog.text.len();
    let mut findings = ir_findings;
    findings.extend(asm_findings);
    findings.sort();
    findings.dedup();
    tel.count("lint.findings", findings.len() as u64);
    Ok(LintReport { findings, ir_insts, asm_instrs })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_and_layers_are_stable() {
        assert_eq!(RuleId::SecretBranch.id(), "CT-BRANCH");
        assert_eq!(RuleId::SecretIndex.id(), "CT-MEM");
        assert_eq!(RuleId::SecretLatency.id(), "CT-LATENCY");
        assert_eq!(Layer::Ir.as_str(), "ir");
        assert_eq!(Layer::Asm.as_str(), "asm");
    }

    #[test]
    fn clean_handler_lints_clean_at_both_layers() {
        // A masked constant-time select: no branches, no secret
        // indices, no division.
        let src = "
            void handle(u8* state, u8* cmd, u8* resp) {
                u32 s = state[0];
                u32 c = cmd[0];
                u32 m = 0 - (c & 1);
                resp[0] = (u8)((s & m) | (c & ~m));
            }
        ";
        let report = lint_source(src, OptLevel::O2, &Telemetry::disabled()).expect("analyzable");
        assert!(report.is_clean(), "unexpected findings: {:#?}", report.findings);
        assert!(report.ir_insts > 0);
        assert!(report.asm_instrs > 0);
    }

    #[test]
    fn secret_branch_is_found_at_both_layers() {
        let src = "
            void handle(u8* state, u8* cmd, u8* resp) {
                if (state[0]) { resp[0] = 1; }
            }
        ";
        let report = lint_source(src, OptLevel::O2, &Telemetry::disabled()).expect("analyzable");
        assert_eq!(report.rules_at(Layer::Ir), vec![RuleId::SecretBranch]);
        assert_eq!(report.rules_at(Layer::Asm), vec![RuleId::SecretBranch]);
        let f = &report.findings[0];
        assert_eq!(f.diagnostic.code, "CT-BRANCH");
        assert!(!f.taint.is_empty());
    }
}
