//! bound — whole-firmware worst-case execution-time and stack bounds.
//!
//! The dynamic Parfait stages prove what a run *did*; none of them
//! bound what a run *may do*. FPS in particular needs an a-priori
//! cycle budget, which until now was a magic `PARFAIT_TIMEOUT`
//! constant. This module closes that hole statically, over the fully
//! linked RISC-V text:
//!
//! 1. **Call-graph recovery.** Functions are the non-`.`-prefixed text
//!    symbols; direct `jal ra` calls form the graph. Recursion and
//!    indirect (`jalr`) calls are rejected — the production compiler
//!    never emits either, and both would make the bounds below
//!    unsound.
//! 2. **Stack and store discipline.** A per-function abstract
//!    interpretation tracks `sp` exactly (as an offset from the
//!    function's entry `sp`), every spill slot word, the return
//!    address, and the callee-saved registers. Every store must land
//!    in the current frame, a caller-checked buffer, or a declared
//!    writable region (`.data`, MMIO, journal); the composed
//!    worst-case stack depth over the (acyclic) call graph must stay
//!    above the stack floor. A prologue that under-allocates its
//!    frame, or an epilogue that restores the wrong `sp`, fails here.
//! 3. **WCET.** Loop bounds come from the `# loopbound` annotations
//!    emitted by `littlec`'s [`parfait_littlec::loop_bounds`] pass and
//!    are *re-validated against the machine code* (a counted loop must
//!    actually advance its counter toward an invariant bound; a host
//!    loop must actually poll MMIO; a server loop must have no live
//!    exit). Per-instruction costs are the worst case of the core's
//!    [`LeakageContract`] latency clauses, plus the redirect penalty
//!    on every branch and jump. Loops collapse innermost-first into
//!    `iters x longest-iteration` supernodes; the WCET is the longest
//!    path through the resulting DAG, composed bottom-up over the
//!    call graph.
//!
//! The result certifies, per firmware: a finite cycle bound for one
//! command round-trip (the server loop is charged [`SERVER_ROUNDS`]
//! iterations) and a stack high-water mark that stays inside the
//! stack region. The pipeline's `bound` stage caches this next to the
//! other certificates and derives the FPS timeout from it.
//!
//! Soundness caveats, deliberately inherited from lower layers rather
//! than re-proven here: in-buffer offsets through caller-provided
//! pointers are trusted (array-bounds discipline is the littlec type
//! checker's job, and FPS executes every reachable store anyway), and
//! host-blocking polls are charged [`HOST_POLL_ITERS`] iterations — a
//! *responsiveness hypothesis* on the host, not a theorem.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

use parfait_cores::contract::InstrClass;
use parfait_cores::LeakageContract;
use parfait_littlec::loop_bounds::LoopKind;
use parfait_riscv::asm::{assemble_with, Layout, Program};
use parfait_riscv::decode::decode;
use parfait_riscv::isa::{AluOp, BranchOp, Instr, LoadOp, Reg, StoreOp};

/// Version of the bound rule set; part of the `bound` stage cache key
/// so a rule change invalidates cached certificates.
pub const BOUND_RULESET_VERSION: &str = "bound-rules-v1";

/// Cycles charged per host-blocking MMIO poll loop. The annotation
/// says two iterations (one failed poll, one success); we charge the
/// maximum of that and this floor so the certified WCET absorbs a
/// host that answers within 64 polls rather than instantly.
pub const HOST_POLL_ITERS: u32 = 64;

/// Iterations charged for the server dispatch loop: the WCET is per
/// command round-trip, so one worst-case command plus one round of
/// slack for re-entering the dispatch head.
pub const SERVER_ROUNDS: u32 = 2;

/// Memory regions the store checks and the stack bound run against.
/// All ranges are `[lo, hi)`. The analyzer crate has no SoC
/// dependency; the pipeline fills this from `parfait_soc` constants.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundRegions {
    /// Where the text section is linked.
    pub text_base: u32,
    /// Where the data section is linked; its extent is taken from the
    /// assembled program.
    pub data_base: u32,
    /// Memory-mapped I/O window.
    pub mmio: (u32, u32),
    /// Persistent journal region. Writes are allowed here; the
    /// journaling *discipline* is the spec stages' concern.
    pub fram: (u32, u32),
    /// Lowest address the stack may grow down to.
    pub stack_floor: u32,
}

/// The certified bounds for one linked firmware image.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundReport {
    /// Worst-case cycles for one command round-trip from the entry
    /// point, under the core's leakage-contract latency model.
    pub wcet_cycles: u64,
    /// Worst-case stack depth in bytes, composed over the call graph.
    pub stack_depth: u32,
    /// The constant `sp` the entry point establishes.
    pub stack_top: u32,
    /// Functions reachable from the entry point.
    pub functions: usize,
    /// Loops validated and collapsed.
    pub loops: usize,
    /// Instructions analyzed.
    pub instructions: usize,
}

/// Why a firmware image failed to certify.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoundError {
    /// Assembly or instruction-decode failure.
    Asm(String),
    /// Control flow the analysis refuses: recursion, indirect calls,
    /// jumps that leave their function.
    Unsupported(String),
    /// A reachable loop whose bound littlec could not infer.
    Unbounded {
        /// Function containing the loop.
        function: String,
        /// 1-based source line of the loop condition.
        line: usize,
    },
    /// A loop annotation the machine-code validator could not confirm.
    Unvalidated(String),
    /// A store whose target cannot be proven inside a writable region.
    Memory(String),
    /// Stack-discipline violation or composed-depth overflow.
    Stack(String),
}

impl fmt::Display for BoundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundError::Asm(m) => write!(f, "{m}"),
            BoundError::Unsupported(m) => write!(f, "{m}"),
            BoundError::Unbounded { function, line } => write!(
                f,
                "[LB-UNBOUNDED] {function}:{line}: loop bound is not statically inferable; \
                 rewrite as a counted loop or poll MMIO directly"
            ),
            BoundError::Unvalidated(m) => write!(f, "{m}"),
            BoundError::Memory(m) => write!(f, "{m}"),
            BoundError::Stack(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for BoundError {}

/// Bound the given linked assembly under `contract` and `regions`.
///
/// `entry` is the boot symbol (`_start` for production firmware); the
/// analysis covers exactly the functions reachable from it by direct
/// calls. The text must carry the `# loopbound` annotations that
/// [`parfait_littlec::compile`] emits.
pub fn bound_asm(
    asm: &str,
    entry: &str,
    contract: &LeakageContract,
    regions: &BoundRegions,
) -> Result<BoundReport, BoundError> {
    let prog =
        assemble_with(asm, Layout { text_base: regions.text_base, data_base: regions.data_base })
            .map_err(|e| BoundError::Asm(e.to_string()))?;
    let annos = parse_annotations(asm, &prog)?;
    let analysis = Analysis::new(&prog, contract, regions, annos);
    analysis.run(entry)
}

// ---------------------------------------------------------------------------
// Loop-bound annotations
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct Anno {
    kind: LoopKind,
    iters: u32,
    function: String,
    line: usize,
}

/// Parse `# loopbound .L<fn>_<block> kind=<k> iters=<n> line=<l>`
/// comment lines and resolve each label through the symbol table to
/// the loop head's address.
fn parse_annotations(asm: &str, prog: &Program) -> Result<HashMap<u32, Anno>, BoundError> {
    let mut annos = HashMap::new();
    for raw in asm.lines() {
        let Some(rest) = raw.trim().strip_prefix("# loopbound ") else { continue };
        let mut label = None;
        let (mut kind, mut iters, mut line) = (None, None, None);
        for tok in rest.split_whitespace() {
            if let Some(v) = tok.strip_prefix("kind=") {
                kind = LoopKind::from_name(v);
            } else if let Some(v) = tok.strip_prefix("iters=") {
                iters = v.parse::<u32>().ok();
            } else if let Some(v) = tok.strip_prefix("line=") {
                line = v.parse::<usize>().ok();
            } else if label.is_none() {
                label = Some(tok);
            }
        }
        let (Some(label), Some(kind), Some(iters), Some(line)) = (label, kind, iters, line) else {
            return Err(BoundError::Asm(format!("malformed loop annotation `{raw}`")));
        };
        let addr = prog.address_of(label).ok_or_else(|| {
            BoundError::Asm(format!("loop annotation label `{label}` is not in the symbol table"))
        })?;
        let function = label
            .strip_prefix(".L")
            .and_then(|s| s.rsplit_once('_'))
            .map(|(f, _)| f.to_string())
            .unwrap_or_else(|| label.to_string());
        annos.insert(addr, Anno { kind, iters, function, line });
    }
    Ok(annos)
}

// ---------------------------------------------------------------------------
// CFG recovery
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct FuncSym {
    name: String,
    lo: u32,
    hi: u32,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Term {
    /// `jalr zero, ra, 0`.
    Ret,
    /// Self-jump, `ecall`, or `ebreak`: execution stops making progress.
    Halt,
    /// Control falls past the function's last instruction (the boot
    /// shim's `call` falling into `_halt`).
    Fallout,
    /// Branch, jump, or plain fallthrough to the listed successors.
    Flow,
}

#[derive(Clone, Debug)]
struct Block {
    start: u32,
    instrs: Vec<(u32, Instr)>,
    succs: Vec<u32>,
    term: Term,
}

#[derive(Clone, Debug)]
struct FnCode {
    name: String,
    entry: u32,
    blocks: BTreeMap<u32, Block>,
    calls: BTreeSet<u32>,
    ninstrs: usize,
}

// ---------------------------------------------------------------------------
// Abstract values
// ---------------------------------------------------------------------------

/// One abstract machine word. The lattice is flat: unequal non-`Top`
/// values join to `Top`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AVal {
    Top,
    Const(u32),
    /// `sp`-relative address, offset in bytes from the function's
    /// entry `sp` (always negative inside the frame).
    Sp(i32),
    /// Somewhere inside the current frame (a stack-array interior
    /// reached through a computed index).
    SpAny,
    /// Pointer into a caller-checked buffer or a writable data
    /// region; in-buffer offsets are trusted.
    Buf,
    /// The function's own return address.
    Ra,
    /// Entry value of callee-saved register `s<n>`.
    Saved(u8),
}

#[derive(Clone, PartialEq, Eq)]
struct AState {
    regs: [AVal; 32],
    /// Word-granular spill-slot model, keyed by entry-`sp`-relative
    /// byte offset.
    stack: BTreeMap<i32, AVal>,
}

/// Join two abstract values. Distinct in-frame pointers (a walked
/// array cursor joining `Sp(k)` with `Sp(k+4)` at a loop head) stay
/// in-frame as [`AVal::SpAny`], and two distinct buffer-root constants
/// (the double-buffered journal slots picked by a branch) degrade to
/// [`AVal::Buf`], rather than escaping to `Top` — the store checks
/// already treat both as trusted may-alias pointers. Everything else
/// mismatched is `Top`.
fn join_val(an: &Analysis, a: AVal, b: AVal) -> AVal {
    if a == b {
        return a;
    }
    let bufish = |v: AVal| matches!(v, AVal::Buf) || matches!(v, AVal::Const(c) if an.buf_root(c));
    match (a, b) {
        (AVal::Sp(_) | AVal::SpAny, AVal::Sp(_) | AVal::SpAny) => AVal::SpAny,
        _ if bufish(a) && bufish(b) => AVal::Buf,
        _ => AVal::Top,
    }
}

fn join_state(an: &Analysis, a: &AState, b: &AState) -> AState {
    let mut regs = [AVal::Top; 32];
    for (i, r) in regs.iter_mut().enumerate() {
        *r = join_val(an, a.regs[i], b.regs[i]);
    }
    let mut stack = BTreeMap::new();
    for (k, v) in &a.stack {
        if let Some(w) = b.stack.get(k) {
            let j = join_val(an, *v, *w);
            if j != AVal::Top {
                stack.insert(*k, j);
            }
        }
    }
    AState { regs, stack }
}

fn saved_index(r: Reg) -> Option<u8> {
    match r.0 {
        8 => Some(0),
        9 => Some(1),
        18..=27 => Some(r.0 - 16),
        _ => None,
    }
}

fn caller_saved(r: Reg) -> bool {
    matches!(r.0, 1 | 5..=7 | 10..=17 | 28..=31)
}

fn inst_dst(i: &Instr) -> Option<Reg> {
    let rd = match *i {
        Instr::Lui { rd, .. }
        | Instr::Auipc { rd, .. }
        | Instr::Jal { rd, .. }
        | Instr::Jalr { rd, .. }
        | Instr::Load { rd, .. }
        | Instr::OpImm { rd, .. }
        | Instr::Op { rd, .. } => rd,
        _ => return None,
    };
    if rd == Reg::ZERO {
        None
    } else {
        Some(rd)
    }
}

fn is_call(i: &Instr) -> bool {
    matches!(*i, Instr::Jal { rd, .. } if rd == Reg::RA)
}

fn eval_branch(op: BranchOp, a: u32, b: u32) -> bool {
    match op {
        BranchOp::Eq => a == b,
        BranchOp::Ne => a != b,
        BranchOp::Lt => (a as i32) < (b as i32),
        BranchOp::Ge => (a as i32) >= (b as i32),
        BranchOp::Ltu => a < b,
        BranchOp::Geu => a >= b,
    }
}

fn class_of(i: &Instr) -> InstrClass {
    match *i {
        Instr::Lui { .. } | Instr::Auipc { .. } => InstrClass::Alu,
        Instr::OpImm { op, .. } | Instr::Op { op, .. } => InstrClass::of_alu(op),
        Instr::Load { .. } => InstrClass::Load,
        Instr::Store { .. } => InstrClass::Store,
        Instr::Branch { .. } => InstrClass::Branch,
        Instr::Jal { .. } | Instr::Jalr { .. } => InstrClass::Jump,
        Instr::Fence => InstrClass::Fence,
        Instr::Ecall | Instr::Ebreak => InstrClass::Alu,
    }
}

// ---------------------------------------------------------------------------
// Natural loops
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct NatLoop {
    head: u32,
    latches: BTreeSet<u32>,
    members: BTreeSet<u32>,
}

/// Back edges via DFS from the entry block, then natural-loop bodies
/// by walking predecessors backward from each latch. Loops sharing a
/// head are merged.
fn find_loops(f: &FnCode) -> Vec<NatLoop> {
    let mut preds: BTreeMap<u32, Vec<u32>> = BTreeMap::new();
    for (b, blk) in &f.blocks {
        for &s in &blk.succs {
            preds.entry(s).or_default().push(*b);
        }
    }
    // Iterative DFS with on-stack coloring; the compiler only lowers
    // structured loops, so every retreating edge targets a loop head.
    let mut color: HashMap<u32, u8> = HashMap::new(); // 1 = on stack, 2 = done
    let mut back: Vec<(u32, u32)> = Vec::new(); // (latch, head)
    let mut stack: Vec<(u32, usize)> = vec![(f.entry, 0)];
    color.insert(f.entry, 1);
    while let Some(&mut (b, ref mut idx)) = stack.last_mut() {
        let succs = &f.blocks[&b].succs;
        if *idx < succs.len() {
            let s = succs[*idx];
            *idx += 1;
            match color.get(&s) {
                Some(1) => back.push((b, s)),
                Some(_) => {}
                None => {
                    color.insert(s, 1);
                    stack.push((s, 0));
                }
            }
        } else {
            color.insert(b, 2);
            stack.pop();
        }
    }
    let mut by_head: BTreeMap<u32, NatLoop> = BTreeMap::new();
    for (latch, head) in back {
        let lp = by_head.entry(head).or_insert_with(|| NatLoop {
            head,
            latches: BTreeSet::new(),
            members: BTreeSet::from([head]),
        });
        lp.latches.insert(latch);
        let mut work = vec![latch];
        while let Some(b) = work.pop() {
            if lp.members.insert(b) {
                if let Some(ps) = preds.get(&b) {
                    work.extend(ps.iter().copied());
                }
            }
        }
    }
    let mut loops: Vec<NatLoop> = by_head.into_values().collect();
    loops.sort_by_key(|l| l.members.len());
    loops
}

// ---------------------------------------------------------------------------
// The analysis driver
// ---------------------------------------------------------------------------

struct Analysis<'a> {
    prog: &'a Program,
    contract: &'a LeakageContract,
    regions: &'a BoundRegions,
    annos: HashMap<u32, Anno>,
    funcs: Vec<FuncSym>,
    data_end: u32,
}

struct FnResult {
    wcet: u64,
    depth: u32,
    stack_top: Option<u32>,
    loops: usize,
}

impl<'a> Analysis<'a> {
    fn new(
        prog: &'a Program,
        contract: &'a LeakageContract,
        regions: &'a BoundRegions,
        annos: HashMap<u32, Anno>,
    ) -> Self {
        let text_end = prog.text_base + 4 * prog.text.len() as u32;
        let mut starts: Vec<(u32, String)> = prog
            .symbols
            .iter()
            .filter(|(n, &a)| !n.starts_with('.') && a >= prog.text_base && a < text_end)
            .map(|(n, &a)| (a, n.clone()))
            .collect();
        starts.sort();
        starts.dedup_by_key(|(a, _)| *a);
        let funcs = starts
            .iter()
            .enumerate()
            .map(|(i, (a, n))| FuncSym {
                name: n.clone(),
                lo: *a,
                hi: starts.get(i + 1).map(|(b, _)| *b).unwrap_or(text_end),
            })
            .collect();
        let data_end = regions.data_base + prog.data.len() as u32;
        Analysis { prog, contract, regions, annos, funcs, data_end }
    }

    fn writable(&self, a: u32) -> bool {
        (a >= self.regions.data_base && a < self.data_end)
            || (a >= self.regions.mmio.0 && a < self.regions.mmio.1)
            || (a >= self.regions.fram.0 && a < self.regions.fram.1)
    }

    /// Constants in these regions are treated as buffer roots under
    /// pointer arithmetic (`la`-materialized globals plus the journal).
    fn buf_root(&self, a: u32) -> bool {
        (a >= self.regions.data_base && a < self.data_end)
            || (a >= self.regions.fram.0 && a < self.regions.fram.1)
    }

    fn func_at(&self, addr: u32) -> Option<&FuncSym> {
        self.funcs.iter().find(|f| f.lo == addr)
    }

    fn name_at(&self, addr: u32) -> &str {
        self.func_at(addr).map(|f| f.name.as_str()).unwrap_or("<unknown>")
    }

    fn run(&self, entry: &str) -> Result<BoundReport, BoundError> {
        let entry_addr =
            self.funcs.iter().find(|f| f.name == entry).map(|f| f.lo).ok_or_else(|| {
                BoundError::Unsupported(format!("entry symbol `{entry}` is not a text function"))
            })?;

        // Depth-first over the call graph: reject recursion, produce a
        // post-order so callees are bounded before their callers.
        let mut code: HashMap<u32, FnCode> = HashMap::new();
        let mut on_stack: HashSet<u32> = HashSet::new();
        let mut done: HashSet<u32> = HashSet::new();
        let mut order: Vec<u32> = Vec::new();
        let mut stack: Vec<(u32, usize)> = vec![(entry_addr, 0)];
        code.insert(entry_addr, self.decode_fn(self.func_at(entry_addr).unwrap())?);
        on_stack.insert(entry_addr);
        while let Some(&mut (a, ref mut idx)) = stack.last_mut() {
            let next = code[&a].calls.iter().nth(*idx).copied();
            match next {
                Some(c) => {
                    *idx += 1;
                    if on_stack.contains(&c) {
                        return Err(BoundError::Unsupported(format!(
                            "recursive call to `{}` (via `{}`)",
                            self.name_at(c),
                            self.name_at(a)
                        )));
                    }
                    if !done.contains(&c) {
                        let fs = self.func_at(c).ok_or_else(|| {
                            BoundError::Unsupported(format!(
                                "call target {c:#010x} is not a function entry"
                            ))
                        })?;
                        code.entry(c).or_insert(self.decode_fn(fs)?);
                        on_stack.insert(c);
                        stack.push((c, 0));
                    }
                }
                None => {
                    stack.pop();
                    on_stack.remove(&a);
                    done.insert(a);
                    order.push(a);
                }
            }
        }

        let mut results: HashMap<u32, FnResult> = HashMap::new();
        let mut total_loops = 0usize;
        let mut total_instrs = 0usize;
        for &fa in &order {
            let fc = &code[&fa];
            total_instrs += fc.ninstrs;
            let r = self.bound_function(fc, fa == entry_addr, &results)?;
            total_loops += r.loops;
            results.insert(fa, r);
        }

        let er = &results[&entry_addr];
        let stack_top = er.stack_top.ok_or_else(|| {
            BoundError::Stack(format!("entry `{entry}` never establishes a constant stack pointer"))
        })?;
        if self.data_end > self.regions.stack_floor {
            return Err(BoundError::Memory(format!(
                "data section ends at {:#010x}, inside the stack region (floor {:#010x})",
                self.data_end, self.regions.stack_floor
            )));
        }
        let lowest = stack_top.saturating_sub(er.depth);
        if lowest < self.regions.stack_floor {
            return Err(BoundError::Stack(format!(
                "worst-case stack depth of {} bytes drives sp from {:#010x} to {:#010x}, \
                 below the stack floor {:#010x}",
                er.depth, stack_top, lowest, self.regions.stack_floor
            )));
        }
        Ok(BoundReport {
            wcet_cycles: er.wcet,
            stack_depth: er.depth,
            stack_top,
            functions: order.len(),
            loops: total_loops,
            instructions: total_instrs,
        })
    }

    /// Decode one function's span, validate its control flow (direct
    /// calls to function entries only, no indirect jumps, branches
    /// stay inside), and slice it into basic blocks.
    fn decode_fn(&self, fs: &FuncSym) -> Result<FnCode, BoundError> {
        let mut instrs: Vec<(u32, Instr)> = Vec::new();
        let mut a = fs.lo;
        while a < fs.hi {
            let w = self.prog.text[((a - self.prog.text_base) / 4) as usize];
            let i = decode(w).map_err(|e| {
                BoundError::Asm(format!("`{}`: undecodable word at {a:#010x}: {e}", fs.name))
            })?;
            instrs.push((a, i));
            a += 4;
        }

        let mut leaders: BTreeSet<u32> = BTreeSet::from([fs.lo]);
        let mut calls: BTreeSet<u32> = BTreeSet::new();
        for &(a, i) in &instrs {
            match i {
                Instr::Branch { off, .. } => {
                    let t = a.wrapping_add(off as u32);
                    if !(t >= fs.lo && t < fs.hi) {
                        return Err(BoundError::Unsupported(format!(
                            "`{}`: branch at {a:#010x} targets {t:#010x}, outside the function",
                            fs.name
                        )));
                    }
                    if a + 4 >= fs.hi {
                        return Err(BoundError::Unsupported(format!(
                            "`{}`: conditional branch at {a:#010x} can fall off the function end",
                            fs.name
                        )));
                    }
                    leaders.insert(t);
                    leaders.insert(a + 4);
                }
                Instr::Jal { rd, off } => {
                    let t = a.wrapping_add(off as u32);
                    if rd == Reg::ZERO {
                        if t == a {
                            // `j .` halt spin: terminal.
                        } else if t >= fs.lo && t < fs.hi {
                            leaders.insert(t);
                        } else {
                            return Err(BoundError::Unsupported(format!(
                                "`{}`: jump at {a:#010x} leaves the function for {t:#010x}",
                                fs.name
                            )));
                        }
                        if a + 4 < fs.hi {
                            leaders.insert(a + 4);
                        }
                    } else if rd == Reg::RA {
                        if self.func_at(t).is_none() {
                            return Err(BoundError::Unsupported(format!(
                                "`{}`: call at {a:#010x} targets {t:#010x}, \
                                 which is not a function entry",
                                fs.name
                            )));
                        }
                        calls.insert(t);
                    } else {
                        return Err(BoundError::Unsupported(format!(
                            "`{}`: jal at {a:#010x} links a register other than ra",
                            fs.name
                        )));
                    }
                }
                Instr::Jalr { rd, rs1, off } => {
                    if rd == Reg::ZERO && rs1 == Reg::RA && off == 0 {
                        if a + 4 < fs.hi {
                            leaders.insert(a + 4);
                        }
                    } else {
                        return Err(BoundError::Unsupported(format!(
                            "`{}`: indirect call/jump (`jalr`) at {a:#010x}; \
                             its target cannot be resolved statically",
                            fs.name
                        )));
                    }
                }
                Instr::Ecall | Instr::Ebreak if a + 4 < fs.hi => {
                    leaders.insert(a + 4);
                }
                _ => {}
            }
        }

        let mut blocks: BTreeMap<u32, Block> = BTreeMap::new();
        let leader_vec: Vec<u32> = leaders.iter().copied().collect();
        for (li, &start) in leader_vec.iter().enumerate() {
            let end = leader_vec.get(li + 1).copied().unwrap_or(fs.hi);
            let body: Vec<(u32, Instr)> =
                instrs.iter().filter(|(a, _)| *a >= start && *a < end).cloned().collect();
            let &(last_a, last_i) = body.last().expect("leader ranges are non-empty");
            let (succs, term) = match last_i {
                Instr::Branch { off, .. } => {
                    (vec![last_a.wrapping_add(off as u32), last_a + 4], Term::Flow)
                }
                Instr::Jal { rd, off } if rd == Reg::ZERO => {
                    let t = last_a.wrapping_add(off as u32);
                    if t == last_a {
                        (vec![], Term::Halt)
                    } else {
                        (vec![t], Term::Flow)
                    }
                }
                Instr::Jalr { .. } => (vec![], Term::Ret),
                Instr::Ecall | Instr::Ebreak => (vec![], Term::Halt),
                _ => {
                    if last_a + 4 < fs.hi {
                        (vec![last_a + 4], Term::Flow)
                    } else {
                        (vec![], Term::Fallout)
                    }
                }
            };
            blocks.insert(start, Block { start, instrs: body, succs, term });
        }
        Ok(FnCode { name: fs.name.clone(), entry: fs.lo, blocks, calls, ninstrs: instrs.len() })
    }

    /// Abstract-interpret, validate loops, and bound one function.
    fn bound_function(
        &self,
        fc: &FnCode,
        is_entry: bool,
        results: &HashMap<u32, FnResult>,
    ) -> Result<FnResult, BoundError> {
        let mut pass = FnPass::new(self, fc, is_entry);
        // First pass discovers the spill floor (lowest slot accessed
        // directly off `sp`); the second clears only array-interior
        // slots at calls and enforces every check. Instruction
        // coverage is path-insensitive, so one discovery pass is
        // complete.
        pass.run()?;
        pass.spill_floor = pass.direct.iter().next().copied().unwrap_or(0);
        pass.final_pass = true;
        pass.run()?;

        let loops = find_loops(fc);
        let mut charges: Vec<(NatLoop, u32)> = Vec::new();
        for lp in loops {
            let anno = self.annos.get(&lp.head).ok_or_else(|| {
                BoundError::Unvalidated(format!(
                    "`{}`: loop at {:#010x} carries no littlec bound annotation",
                    fc.name, lp.head
                ))
            })?;
            let charge = pass.validate_loop(&lp, anno)?;
            charges.push((lp, charge));
        }
        let nloops = charges.len();

        let wcet = self.function_wcet(fc, &charges, results)?;
        let mut depth = (-pass.min_sp) as u32;
        for &(callee, sp_off) in &pass.calls {
            depth = depth.max((-sp_off) as u32 + results[&callee].depth);
        }
        Ok(FnResult { wcet, depth, stack_top: pass.stack_top, loops: nloops })
    }

    fn instr_cost(&self, i: &Instr) -> u64 {
        let mut c = self.contract.worst_cost(class_of(i)) as u64;
        if matches!(i, Instr::Jal { .. } | Instr::Jalr { .. } | Instr::Branch { .. }) {
            // Conservatively charge the redirect penalty on every
            // control transfer, taken or not.
            c += self.contract.redirect_penalty as u64;
        }
        c
    }

    /// Collapse validated loops innermost-first into
    /// `iters x longest-iteration` supernodes, then take the longest
    /// path through the residual DAG. Calls add the callee's WCET.
    fn function_wcet(
        &self,
        fc: &FnCode,
        charges: &[(NatLoop, u32)],
        results: &HashMap<u32, FnResult>,
    ) -> Result<u64, BoundError> {
        let mut node_cost: BTreeMap<u32, u64> = BTreeMap::new();
        let mut succs: BTreeMap<u32, BTreeSet<u32>> = BTreeMap::new();
        for (b, blk) in &fc.blocks {
            let mut c = 0u64;
            for (_, i) in &blk.instrs {
                c = c.saturating_add(self.instr_cost(i));
            }
            // Calls charge the callee's (memoized) WCET at each site.
            for (a, i) in &blk.instrs {
                if let Instr::Jal { rd, off } = *i {
                    if rd == Reg::RA {
                        let t = a.wrapping_add(off as u32);
                        c = c.saturating_add(results[&t].wcet);
                    }
                }
            }
            node_cost.insert(*b, c);
            succs.insert(*b, blk.succs.iter().copied().collect());
        }

        let mut repr: HashMap<u32, u32> = HashMap::new();
        fn resolve(repr: &HashMap<u32, u32>, mut x: u32) -> u32 {
            while let Some(&r) = repr.get(&x) {
                if r == x {
                    break;
                }
                x = r;
            }
            x
        }

        for (lp, charge) in charges {
            let head = lp.head;
            let members: BTreeSet<u32> = lp.members.iter().map(|&m| resolve(&repr, m)).collect();
            let latches: BTreeSet<u32> = lp.latches.iter().map(|&l| resolve(&repr, l)).collect();
            let iter_cost = loop_iter_cost(head, &latches, &members, &succs, &node_cost)
                .ok_or_else(|| {
                    BoundError::Unsupported(format!(
                        "`{}`: loop at {head:#010x} has no head-to-latch path",
                        fc.name
                    ))
                })?;
            let total = (*charge as u64).saturating_mul(iter_cost);
            let exits: BTreeSet<u32> = members
                .iter()
                .flat_map(|m| succs[m].iter().copied())
                .filter(|s| !members.contains(s))
                .collect();
            for &m in &members {
                if m != head {
                    node_cost.remove(&m);
                    succs.remove(&m);
                    repr.insert(m, head);
                }
            }
            node_cost.insert(head, total);
            succs.insert(head, exits);
        }

        let entry = resolve(&repr, fc.entry);
        let mut memo: HashMap<u32, u64> = HashMap::new();
        let mut on_path: HashSet<u32> = HashSet::new();
        longest_path(entry, &succs, &node_cost, &mut memo, &mut on_path).ok_or_else(|| {
            BoundError::Unsupported(format!(
                "`{}`: residual control flow is cyclic after loop collapse",
                fc.name
            ))
        })
    }
}

/// Longest head-to-latch path cost inside one loop, inner loops
/// already collapsed. `None` on an (impossible for reducible input)
/// cycle or when no latch is reachable.
fn loop_iter_cost(
    head: u32,
    latches: &BTreeSet<u32>,
    members: &BTreeSet<u32>,
    succs: &BTreeMap<u32, BTreeSet<u32>>,
    node_cost: &BTreeMap<u32, u64>,
) -> Option<u64> {
    #[allow(clippy::too_many_arguments)]
    fn best(
        n: u32,
        head: u32,
        latches: &BTreeSet<u32>,
        members: &BTreeSet<u32>,
        succs: &BTreeMap<u32, BTreeSet<u32>>,
        node_cost: &BTreeMap<u32, u64>,
        memo: &mut HashMap<u32, Option<u64>>,
        on_path: &mut HashSet<u32>,
    ) -> Option<Option<u64>> {
        if let Some(&m) = memo.get(&n) {
            return Some(m);
        }
        if !on_path.insert(n) {
            return None; // cycle
        }
        let mut tail: Option<u64> = if latches.contains(&n) { Some(0) } else { None };
        for &s in succs.get(&n).into_iter().flatten() {
            if s == head || !members.contains(&s) {
                continue;
            }
            if let Some(t) = best(s, head, latches, members, succs, node_cost, memo, on_path)? {
                tail = Some(tail.unwrap_or(0).max(t));
            }
        }
        on_path.remove(&n);
        let r = tail.map(|t| node_cost[&n].saturating_add(t));
        memo.insert(n, r);
        Some(r)
    }
    let mut memo = HashMap::new();
    let mut on_path = HashSet::new();
    best(head, head, latches, members, succs, node_cost, &mut memo, &mut on_path)?
}

/// Longest path from `n` to any terminal node of the collapsed DAG;
/// `None` if a cycle survives (which a validated firmware never has).
fn longest_path(
    n: u32,
    succs: &BTreeMap<u32, BTreeSet<u32>>,
    node_cost: &BTreeMap<u32, u64>,
    memo: &mut HashMap<u32, u64>,
    on_path: &mut HashSet<u32>,
) -> Option<u64> {
    if let Some(&m) = memo.get(&n) {
        return Some(m);
    }
    if !on_path.insert(n) {
        return None;
    }
    let mut tail = 0u64;
    for &s in succs.get(&n).into_iter().flatten() {
        tail = tail.max(longest_path(s, succs, node_cost, memo, on_path)?);
    }
    on_path.remove(&n);
    let r = node_cost[&n].saturating_add(tail);
    memo.insert(n, r);
    Some(r)
}

// ---------------------------------------------------------------------------
// Per-function abstract interpretation
// ---------------------------------------------------------------------------

struct FnPass<'a> {
    an: &'a Analysis<'a>,
    f: &'a FnCode,
    is_entry: bool,
    final_pass: bool,
    /// Below this entry-relative offset live stack arrays whose
    /// interiors a callee may legitimately write through escaped
    /// pointers; tracked slots under it are dropped at calls.
    spill_floor: i32,
    /// Entry-relative offsets accessed directly off `sp` (spills,
    /// saved registers, the return address) — never array interiors,
    /// since the compiler materializes array addresses into scratch
    /// registers first.
    direct: BTreeSet<i32>,
    min_sp: i32,
    calls: BTreeSet<(u32, i32)>,
    stack_top: Option<u32>,
    entry_states: BTreeMap<u32, AState>,
}

impl<'a> FnPass<'a> {
    fn new(an: &'a Analysis<'a>, f: &'a FnCode, is_entry: bool) -> Self {
        FnPass {
            an,
            f,
            is_entry,
            final_pass: false,
            spill_floor: 0,
            direct: BTreeSet::new(),
            min_sp: 0,
            calls: BTreeSet::new(),
            stack_top: None,
            entry_states: BTreeMap::new(),
        }
    }

    fn entry_state(&self) -> AState {
        let mut regs = [AVal::Top; 32];
        regs[Reg::SP.0 as usize] = if self.is_entry { AVal::Top } else { AVal::Sp(0) };
        regs[Reg::RA.0 as usize] = AVal::Ra;
        for r in regs.iter_mut().take(18).skip(10) {
            *r = AVal::Buf;
        }
        for r in [8usize, 9, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27] {
            regs[r] = AVal::Saved(saved_index(Reg(r as u8)).unwrap());
        }
        AState { regs, stack: BTreeMap::new() }
    }

    fn read(st: &AState, r: Reg) -> AVal {
        if r == Reg::ZERO {
            AVal::Const(0)
        } else {
            st.regs[r.0 as usize]
        }
    }

    fn run(&mut self) -> Result<(), BoundError> {
        self.min_sp = 0;
        self.calls.clear();
        self.entry_states.clear();
        self.entry_states.insert(self.f.entry, self.entry_state());
        let mut work: BTreeSet<u32> = BTreeSet::from([self.f.entry]);
        while let Some(&b) = work.iter().next() {
            work.remove(&b);
            let f = self.f;
            let blk = &f.blocks[&b];
            let mut st = self.entry_states[&b].clone();
            for (a, i) in &blk.instrs {
                self.exec(*a, i, &mut st)?;
            }
            if self.final_pass && blk.term == Term::Ret && !self.is_entry {
                self.check_return(&st)?;
            }
            for &s in &blk.succs {
                match self.entry_states.get_mut(&s) {
                    None => {
                        self.entry_states.insert(s, st.clone());
                        work.insert(s);
                    }
                    Some(prev) => {
                        let joined = join_state(self.an, prev, &st);
                        if joined != *prev {
                            *prev = joined;
                            work.insert(s);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The inductive frame contract: a returning function has
    /// restored `sp`, `ra`, and every callee-saved register. Each
    /// caller's analysis relies on exactly this across its calls.
    fn check_return(&self, st: &AState) -> Result<(), BoundError> {
        if Self::read(st, Reg::SP) != AVal::Sp(0) {
            return Err(BoundError::Stack(format!(
                "`{}`: frame not restored at return (sp is {:?} relative to entry)",
                self.f.name,
                Self::read(st, Reg::SP)
            )));
        }
        if Self::read(st, Reg::RA) != AVal::Ra {
            return Err(BoundError::Stack(format!(
                "`{}`: return address clobbered across the function body",
                self.f.name
            )));
        }
        for r in [8u8, 9, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27] {
            let want = AVal::Saved(saved_index(Reg(r)).unwrap());
            if Self::read(st, Reg(r)) != want {
                return Err(BoundError::Stack(format!(
                    "`{}`: callee-saved {} clobbered across the function body",
                    self.f.name,
                    Reg(r)
                )));
            }
        }
        Ok(())
    }

    fn write(&mut self, st: &mut AState, addr: u32, rd: Reg, v: AVal) -> Result<(), BoundError> {
        if rd == Reg::ZERO {
            return Ok(());
        }
        if rd == Reg::SP {
            match v {
                AVal::Sp(k) => self.min_sp = self.min_sp.min(k),
                // Only the boot shim materializes an absolute stack
                // top; everywhere else sp must stay frame-relative.
                AVal::Const(_) if self.is_entry => {}
                _ => {
                    return Err(BoundError::Stack(format!(
                        "`{}`: sp escapes static tracking at {addr:#010x}",
                        self.f.name
                    )))
                }
            }
        }
        st.regs[rd.0 as usize] = v;
        Ok(())
    }

    fn alu(&self, op: AluOp, a: AVal, b: AVal) -> AVal {
        use AVal::*;
        if let (Const(x), Const(y)) = (a, b) {
            return Const(op.eval(x, y));
        }
        match op {
            AluOp::Add => match (a, b) {
                (Sp(k), Const(c)) | (Const(c), Sp(k)) => Sp(k.wrapping_add(c as i32)),
                (Sp(_), _) | (_, Sp(_)) | (SpAny, _) | (_, SpAny) => SpAny,
                (Buf, _) | (_, Buf) => Buf,
                (Const(c), _) | (_, Const(c)) if self.an.buf_root(c) => Buf,
                _ => Top,
            },
            AluOp::Sub => match (a, b) {
                (Sp(k), Const(c)) => Sp(k.wrapping_sub(c as i32)),
                (Sp(_), _) | (SpAny, _) => SpAny,
                (Buf, _) => Buf,
                (Const(c), _) if self.an.buf_root(c) => Buf,
                _ => Top,
            },
            _ => Top,
        }
    }

    fn exec(&mut self, addr: u32, i: &Instr, st: &mut AState) -> Result<(), BoundError> {
        match *i {
            Instr::Lui { rd, imm } => {
                self.write(st, addr, rd, AVal::Const((imm as u32) << 12))?;
            }
            Instr::Auipc { rd, imm } => {
                self.write(st, addr, rd, AVal::Const(addr.wrapping_add((imm as u32) << 12)))?;
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                let v = self.alu(op, Self::read(st, rs1), AVal::Const(imm as u32));
                self.write(st, addr, rd, v)?;
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let v = self.alu(op, Self::read(st, rs1), Self::read(st, rs2));
                self.write(st, addr, rd, v)?;
            }
            Instr::Load { op, rd, rs1, off } => {
                let base = Self::read(st, rs1);
                if rs1 == Reg::SP {
                    if let AVal::Sp(c) = base {
                        self.direct.insert(c + off);
                    }
                }
                let v = match (base, op) {
                    (AVal::Sp(k), LoadOp::Lw) if (k + off) % 4 == 0 => {
                        st.stack.get(&(k + off)).copied().unwrap_or(AVal::Top)
                    }
                    _ => AVal::Top,
                };
                self.write(st, addr, rd, v)?;
            }
            Instr::Store { op, rs1, rs2, off } => {
                self.store(st, addr, op, rs1, rs2, off)?;
            }
            Instr::Jal { rd, off } => {
                if rd == Reg::RA {
                    self.call(st, addr, addr.wrapping_add(off as u32))?;
                }
            }
            Instr::Branch { .. }
            | Instr::Jalr { .. }
            | Instr::Fence
            | Instr::Ecall
            | Instr::Ebreak => {}
        }
        Ok(())
    }

    fn store(
        &mut self,
        st: &mut AState,
        addr: u32,
        op: StoreOp,
        rs1: Reg,
        rs2: Reg,
        off: i32,
    ) -> Result<(), BoundError> {
        let base = Self::read(st, rs1);
        if rs1 == Reg::SP {
            if let AVal::Sp(c) = base {
                self.direct.insert(c + off);
            }
        }
        if self.final_pass {
            match base {
                AVal::Sp(k) => {
                    let t = k + off;
                    let cur = match Self::read(st, Reg::SP) {
                        AVal::Sp(c) => c,
                        _ => i32::MIN,
                    };
                    if t < cur || t >= 0 {
                        return Err(BoundError::Memory(format!(
                            "`{}`: store at {addr:#010x} writes sp{t:+} — outside the \
                             current frame [sp{cur:+}, sp+0)",
                            self.f.name
                        )));
                    }
                }
                AVal::SpAny | AVal::Buf => {}
                AVal::Const(a) => {
                    let tgt = a.wrapping_add(off as u32);
                    if !self.an.writable(tgt) {
                        return Err(BoundError::Memory(format!(
                            "`{}`: store at {addr:#010x} targets {tgt:#010x}, \
                             outside every writable region",
                            self.f.name
                        )));
                    }
                }
                AVal::Top | AVal::Ra | AVal::Saved(_) => {
                    return Err(BoundError::Memory(format!(
                        "`{}`: store target at {addr:#010x} is not statically resolvable",
                        self.f.name
                    )));
                }
            }
        }
        match base {
            AVal::Sp(k) => {
                let t = k + off;
                if op == StoreOp::Sw && t % 4 == 0 {
                    let v = Self::read(st, rs2);
                    st.stack.insert(t, v);
                } else {
                    let size = match op {
                        StoreOp::Sb => 1,
                        StoreOp::Sh => 2,
                        StoreOp::Sw => 4,
                    };
                    st.stack.remove(&(t & !3));
                    st.stack.remove(&((t + size - 1) & !3));
                }
            }
            // A computed in-frame store may alias any array-interior
            // slot; spill slots sit above the floor and survive.
            AVal::SpAny => {
                let floor = self.spill_floor;
                st.stack.retain(|&k, _| k >= floor);
            }
            _ => {}
        }
        Ok(())
    }

    fn call(&mut self, st: &mut AState, addr: u32, target: u32) -> Result<(), BoundError> {
        let sp_off = match Self::read(st, Reg::SP) {
            AVal::Sp(c) => c,
            AVal::Const(top) if self.is_entry => {
                self.stack_top = Some(top);
                0
            }
            _ => {
                return Err(BoundError::Stack(format!(
                    "`{}`: call at {addr:#010x} before sp is established",
                    self.f.name
                )))
            }
        };
        if self.final_pass {
            self.calls.insert((target, sp_off));
        }
        for r in 0..32u8 {
            if caller_saved(Reg(r)) {
                st.regs[r as usize] = AVal::Top;
            }
        }
        // The callee may write through any escaped array pointer;
        // spill slots are provably untouched (its own frame check).
        let floor = self.spill_floor;
        st.stack.retain(|&k, _| k >= floor);
        Ok(())
    }

    /// Replay a block from its fixpoint entry state, returning the
    /// state *before* each instruction. Used by the loop validators.
    fn states_before(&mut self, blk: &Block) -> Vec<AState> {
        let saved = self.final_pass;
        self.final_pass = false;
        let mut st = self.entry_states[&blk.start].clone();
        let mut v = Vec::with_capacity(blk.instrs.len());
        for (a, i) in &blk.instrs {
            v.push(st.clone());
            let _ = self.exec(*a, i, &mut st);
        }
        v.push(st);
        self.final_pass = saved;
        v
    }

    // -- loop validation ---------------------------------------------------

    /// Check a loop's annotation against the machine code and return
    /// the iteration count to charge.
    fn validate_loop(&mut self, lp: &NatLoop, anno: &Anno) -> Result<u32, BoundError> {
        match anno.kind {
            LoopKind::Unknown => {
                Err(BoundError::Unbounded { function: anno.function.clone(), line: anno.line })
            }
            LoopKind::Counted => {
                self.validate_counted(lp, anno)?;
                Ok(anno.iters.max(1))
            }
            LoopKind::Host => {
                self.validate_host(lp, anno)?;
                Ok(anno.iters.max(HOST_POLL_ITERS))
            }
            LoopKind::Server => {
                self.validate_server(lp, anno)?;
                Ok(anno.iters.max(SERVER_ROUNDS))
            }
        }
    }

    /// A counted loop must compare a location that advances inside
    /// the loop against an invariant bound. This is what kills a
    /// mutant that deletes the counter step: the annotation still
    /// promises `counted`, but no instruction writes the counter.
    fn validate_counted(&mut self, lp: &NatLoop, anno: &Anno) -> Result<(), BoundError> {
        let f = self.f;
        let head = &f.blocks[&lp.head];
        let states = self.states_before(head);
        let n = head.instrs.len();
        let (_, term) = head.instrs[n - 1];
        let Instr::Branch { rs1, rs2, .. } = term else {
            return Err(BoundError::Unvalidated(format!(
                "`{}`: counted loop at {}:{} does not end in a conditional branch",
                f.name, anno.function, anno.line
            )));
        };
        let mut cur = if rs2 == Reg::ZERO {
            rs1
        } else if rs1 == Reg::ZERO {
            rs2
        } else {
            return Err(BoundError::Unvalidated(format!(
                "`{}`: counted loop at {}:{} branches on a two-register compare",
                f.name, anno.function, anno.line
            )));
        };
        // Walk the head block backward from the branch through copies,
        // masks, negations, and spill reloads to the comparison.
        let mut slot_mode: Option<i32> = None;
        let mut found: Option<(Operand, Operand)> = None;
        let mut idx = n - 1;
        while idx > 0 {
            idx -= 1;
            let (_, ins) = head.instrs[idx];
            if let Some(slot) = slot_mode {
                if let Instr::Store { op: StoreOp::Sw, rs1, rs2, off } = ins {
                    if let AVal::Sp(k) = Self::read(&states[idx], rs1) {
                        if k + off == slot {
                            slot_mode = None;
                            cur = rs2;
                        }
                    }
                }
                continue;
            }
            if inst_dst(&ins) != Some(cur) {
                continue;
            }
            match ins {
                Instr::OpImm { op: AluOp::Add, rs1, imm: 0, .. } => cur = rs1,
                Instr::OpImm { op: AluOp::And, rs1, imm: 0xff, .. } => cur = rs1,
                Instr::OpImm { op: AluOp::Xor, rs1, imm: 1, .. } => cur = rs1,
                Instr::OpImm { op: AluOp::Sltu | AluOp::Slt, rs1, imm, .. } => {
                    found =
                        Some((self.operand_loc(&states, head, idx, rs1), Operand::Imm(imm as u32)));
                    break;
                }
                Instr::Op { op: AluOp::Sltu | AluOp::Slt, rs1, rs2, .. } => {
                    found = Some((
                        self.operand_loc(&states, head, idx, rs1),
                        self.operand_loc(&states, head, idx, rs2),
                    ));
                    break;
                }
                Instr::Load { op: LoadOp::Lw, rs1, off, .. } => {
                    if let AVal::Sp(k) = Self::read(&states[idx], rs1) {
                        slot_mode = Some(k + off);
                    } else {
                        return Err(BoundError::Unvalidated(format!(
                            "`{}`: counted loop at {}:{}: condition trace lost at a \
                             non-stack load",
                            f.name, anno.function, anno.line
                        )));
                    }
                }
                _ => {
                    return Err(BoundError::Unvalidated(format!(
                        "`{}`: cannot trace the loop condition of the counted loop at {}:{}",
                        f.name, anno.function, anno.line
                    )))
                }
            }
        }
        let Some((a_loc, b_loc)) = found else {
            return Err(BoundError::Unvalidated(format!(
                "`{}`: counted loop at {}:{} has no bound comparison in its head",
                f.name, anno.function, anno.line
            )));
        };
        let aw = self.loc_written_in(lp, &a_loc);
        let bw = self.loc_written_in(lp, &b_loc);
        let counter_ok = (a_loc.is_location() && aw && b_loc.is_invariant(bw))
            || (b_loc.is_location() && bw && a_loc.is_invariant(aw));
        if counter_ok {
            return Ok(());
        }
        if !aw && !bw {
            return Err(BoundError::Unvalidated(format!(
                "`{}`: counted loop at {}:{} never advances its counter",
                f.name, anno.function, anno.line
            )));
        }
        Err(BoundError::Unvalidated(format!(
            "`{}`: counted loop at {}:{} does not compare a counter against an \
             invariant bound",
            f.name, anno.function, anno.line
        )))
    }

    /// Resolve a comparison operand to a durable location (register
    /// or spill slot), following copies and masks backward.
    fn operand_loc(&self, states: &[AState], head: &Block, upto: usize, r: Reg) -> Operand {
        if r == Reg::ZERO {
            return Operand::Imm(0);
        }
        // A bound the compiler materialized (`li`, or reloaded from an
        // invariant spill slot) is a constant in the fixpoint state;
        // the counter never is, since it varies across iterations.
        if let AVal::Const(c) = Self::read(&states[upto], r) {
            return Operand::Imm(c);
        }
        let mut rr = r;
        let mut j = upto;
        while j > 0 {
            j -= 1;
            let (_, ins) = head.instrs[j];
            if inst_dst(&ins) != Some(rr) {
                continue;
            }
            match ins {
                Instr::OpImm { op: AluOp::Add, rs1, imm: 0, .. } => rr = rs1,
                Instr::OpImm { op: AluOp::And, rs1, imm: 0xff, .. } => rr = rs1,
                Instr::Load { op: LoadOp::Lw, rs1, off, .. } => {
                    if let AVal::Sp(k) = Self::read(&states[j], rs1) {
                        return Operand::Slot(k + off);
                    }
                    return Operand::Computed;
                }
                _ => return Operand::Computed,
            }
        }
        Operand::Reg(rr)
    }

    /// Is the location written anywhere in the loop body (including
    /// by a call clobbering a caller-saved register)?
    fn loc_written_in(&mut self, lp: &NatLoop, loc: &Operand) -> bool {
        match *loc {
            Operand::Imm(_) => false,
            Operand::Computed => true,
            Operand::Reg(r) => {
                for m in &lp.members {
                    let blk = &self.f.blocks[m];
                    for (_, ins) in &blk.instrs {
                        if inst_dst(ins) == Some(r) {
                            return true;
                        }
                        if is_call(ins) && caller_saved(r) {
                            return true;
                        }
                    }
                }
                false
            }
            Operand::Slot(k) => {
                let members: Vec<u32> = lp.members.iter().copied().collect();
                for m in members {
                    let blk = &self.f.blocks[&m].clone();
                    let states = self.states_before(blk);
                    for (idx, (_, ins)) in blk.instrs.iter().enumerate() {
                        if let Instr::Store { op, rs1, off, .. } = *ins {
                            if let AVal::Sp(b) = Self::read(&states[idx], rs1) {
                                let lo = b + off;
                                let size = match op {
                                    StoreOp::Sb => 1,
                                    StoreOp::Sh => 2,
                                    StoreOp::Sw => 4,
                                };
                                if lo < k + 4 && lo + size > k {
                                    return true;
                                }
                            }
                        }
                    }
                }
                false
            }
        }
    }

    /// A host-blocking loop must actually poll the MMIO window.
    fn validate_host(&mut self, lp: &NatLoop, anno: &Anno) -> Result<(), BoundError> {
        let mmio = self.an.regions.mmio;
        let members: Vec<u32> = lp.members.iter().copied().collect();
        for m in members {
            let blk = &self.f.blocks[&m].clone();
            let states = self.states_before(blk);
            for (idx, (_, ins)) in blk.instrs.iter().enumerate() {
                if let Instr::Load { rs1, off, .. } = *ins {
                    if let AVal::Const(b) = Self::read(&states[idx], rs1) {
                        let t = b.wrapping_add(off as u32);
                        if t >= mmio.0 && t < mmio.1 {
                            return Ok(());
                        }
                    }
                }
            }
        }
        Err(BoundError::Unvalidated(format!(
            "`{}`: host-blocking loop at {}:{} has no MMIO status poll",
            self.f.name, anno.function, anno.line
        )))
    }

    /// The server loop may only exit through a statically dead branch
    /// arm in its head; anything else would let a command handler
    /// escape the dispatch loop.
    fn validate_server(&mut self, lp: &NatLoop, anno: &Anno) -> Result<(), BoundError> {
        let exits: Vec<(u32, u32)> = lp
            .members
            .iter()
            .flat_map(|m| self.f.blocks[m].succs.iter().map(move |s| (*m, *s)))
            .filter(|(_, s)| !lp.members.contains(s))
            .collect();
        if exits.is_empty() {
            return Ok(());
        }
        let head = &self.f.blocks[&lp.head].clone();
        let states = self.states_before(head);
        let &(ta, term) = head.instrs.last().expect("blocks are non-empty");
        if let Instr::Branch { op, rs1, rs2, off } = term {
            let st = &states[head.instrs.len() - 1];
            if let (AVal::Const(x), AVal::Const(y)) = (Self::read(st, rs1), Self::read(st, rs2)) {
                let live = if eval_branch(op, x, y) { ta.wrapping_add(off as u32) } else { ta + 4 };
                if lp.members.contains(&live)
                    && exits.iter().all(|&(from, to)| from == lp.head && to != live)
                {
                    return Ok(());
                }
            }
        }
        Err(BoundError::Unvalidated(format!(
            "`{}`: server loop at {}:{} has a reachable exit",
            self.f.name, anno.function, anno.line
        )))
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Operand {
    Imm(u32),
    Reg(Reg),
    Slot(i32),
    Computed,
}

impl Operand {
    fn is_location(&self) -> bool {
        matches!(self, Operand::Reg(_) | Operand::Slot(_))
    }

    fn is_invariant(&self, written: bool) -> bool {
        match self {
            Operand::Imm(_) => true,
            Operand::Reg(_) | Operand::Slot(_) => !written,
            Operand::Computed => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfait_littlec::{compile, frontend, OptLevel};

    /// The boot shim production firmware links (see `syssw`),
    /// reproduced here so the analyzer crate stays SoC-free.
    const BOOT: &str =
        "\n.text\n_start:\n    li sp, 0x2003ff00\n    call hsm_main\n_halt:\n    j _halt\n";

    fn regions() -> BoundRegions {
        BoundRegions {
            text_base: 0,
            data_base: 0x2000_0000,
            mmio: (0x1000_0000, 0x1000_0010),
            fram: (0x3000_0000, 0x3000_2000),
            stack_floor: 0x2002_0000,
        }
    }

    fn asm_for(src: &str, opt: OptLevel) -> String {
        let program = frontend(src).unwrap();
        let mut asm = compile(&program, opt).unwrap();
        asm.insert_str(0, BOOT);
        asm
    }

    fn bound_src(src: &str, opt: OptLevel) -> Result<BoundReport, BoundError> {
        bound_asm(&asm_for(src, opt), "_start", parfait_cores::ibex::contract(), &regions())
    }

    #[test]
    fn straight_line_program_certifies() {
        let src = "
            u32 dbl(u32 x) { return x + x; }
            void hsm_main() { u32 y; y = dbl(21); }
        ";
        for opt in [OptLevel::O0, OptLevel::O2] {
            let r = bound_src(src, opt).unwrap();
            assert!(r.wcet_cycles > 0, "{opt}: zero wcet");
            assert_eq!(r.stack_top, 0x2003_ff00);
            assert!(r.stack_depth >= 16, "{opt}: depth {}", r.stack_depth);
            assert_eq!(r.loops, 0);
            // _start, hsm_main, dbl — `_halt` is fallout, not a call.
            assert_eq!(r.functions, 3, "{opt}");
        }
    }

    #[test]
    fn counted_loop_scales_the_wcet() {
        let few = "
            void hsm_main() {
                u32 i; u32 s; s = 0;
                for (i = 0; i < 8; i = i + 1) { s = s + i; }
            }
        ";
        let many = "
            void hsm_main() {
                u32 i; u32 s; s = 0;
                for (i = 0; i < 64; i = i + 1) { s = s + i; }
            }
        ";
        for opt in [OptLevel::O0, OptLevel::O2] {
            let a = bound_src(few, opt).unwrap();
            let b = bound_src(many, opt).unwrap();
            assert_eq!(a.loops, 1, "{opt}");
            assert!(
                b.wcet_cycles > a.wcet_cycles,
                "{opt}: 64 iters ({}) not costlier than 8 ({})",
                b.wcet_cycles,
                a.wcet_cycles
            );
        }
    }

    #[test]
    fn host_poll_loop_is_charged_the_responsiveness_floor() {
        let src = "
            void hsm_main() {
                u32* status; status = (u32*)0x10000000;
                while (status[0] == 0) { }
            }
        ";
        for opt in [OptLevel::O0, OptLevel::O2] {
            let r = bound_src(src, opt).unwrap();
            assert_eq!(r.loops, 1, "{opt}");
            // At least HOST_POLL_ITERS iterations of a >= 2-cycle poll.
            assert!(
                r.wcet_cycles >= 2 * HOST_POLL_ITERS as u64,
                "{opt}: wcet {} below the host floor",
                r.wcet_cycles
            );
        }
    }

    #[test]
    fn server_loop_certifies_with_dead_exit_only() {
        let src = "
            void hsm_main() {
                u32 x; x = 0;
                while (1) { x = x + 1; }
            }
        ";
        for opt in [OptLevel::O0, OptLevel::O2] {
            let r = bound_src(src, opt).unwrap();
            assert_eq!(r.loops, 1, "{opt}");
        }
    }

    #[test]
    fn uninferable_bound_is_rejected_with_its_source_line() {
        let src = "\
void hsm_main() {
    u32* p; p = (u32*)0x20000000;
    u32 n; n = p[0];
    u32 i;
    for (i = 0; i < n; i = i + 1) { }
}
";
        for opt in [OptLevel::O0, OptLevel::O2] {
            match bound_src(src, opt) {
                Err(BoundError::Unbounded { function, line }) => {
                    assert_eq!(function, "hsm_main", "{opt}");
                    assert_eq!(line, 5, "{opt}");
                }
                other => panic!("{opt}: expected Unbounded, got {other:?}"),
            }
        }
    }

    #[test]
    fn recursion_is_rejected() {
        let src = "
            u32 f(u32 n) { if (n == 0) { return 0; } return f(n - 1); }
            void hsm_main() { u32 x; x = f(3); }
        ";
        for opt in [OptLevel::O0, OptLevel::O2] {
            match bound_src(src, opt) {
                Err(BoundError::Unsupported(m)) => {
                    assert!(m.contains("recursive"), "{opt}: {m}")
                }
                other => panic!("{opt}: expected Unsupported, got {other:?}"),
            }
        }
    }

    #[test]
    fn indirect_calls_are_rejected() {
        let asm = "\
.text
_start:
    li sp, 0x2003ff00
    call hsm_main
_halt:
    j _halt
hsm_main:
    addi sp, sp, -16
    sw ra, 12(sp)
    la t0, helper
    jalr ra, t0, 0
    lw ra, 12(sp)
    addi sp, sp, 16
    ret
helper:
    ret
";
        match bound_asm(asm, "_start", parfait_cores::ibex::contract(), &regions()) {
            Err(BoundError::Unsupported(m)) => assert!(m.contains("jalr"), "{m}"),
            other => panic!("expected Unsupported, got {other:?}"),
        }
    }

    /// Hand-built counted loop so the counter step can be removed
    /// surgically — the `littlec-loop-bound-drop` fault class.
    fn counted_asm(with_step: bool) -> String {
        let step = if with_step { "    addi t0, t0, 1\n" } else { "" };
        format!(
            "\
# loopbound .Lhsm_main_1 kind=counted iters=9 line=3
.text
_start:
    li sp, 0x2003ff00
    call hsm_main
_halt:
    j _halt
hsm_main:
    addi sp, sp, -16
    sw ra, 12(sp)
    li t0, 0
    li t1, 8
.Lhsm_main_1:
    sltu t2, t0, t1
    bnez t2, .Lhsm_main_2
    j .Lhsm_main_3
.Lhsm_main_2:
{step}    j .Lhsm_main_1
.Lhsm_main_3:
    lw ra, 12(sp)
    addi sp, sp, 16
    ret
"
        )
    }

    #[test]
    fn dropped_counter_step_is_rejected() {
        let ok =
            bound_asm(&counted_asm(true), "_start", parfait_cores::ibex::contract(), &regions())
                .unwrap();
        assert_eq!(ok.loops, 1);
        match bound_asm(&counted_asm(false), "_start", parfait_cores::ibex::contract(), &regions())
        {
            Err(BoundError::Unvalidated(m)) => {
                assert!(m.contains("never advances"), "{m}")
            }
            other => panic!("expected Unvalidated, got {other:?}"),
        }
    }

    #[test]
    fn underallocated_frame_is_rejected() {
        let asm = "\
.text
_start:
    li sp, 0x2003ff00
    call hsm_main
_halt:
    j _halt
hsm_main:
    addi sp, sp, -16
    sw ra, 28(sp)
    lw ra, 28(sp)
    addi sp, sp, 16
    ret
";
        match bound_asm(asm, "_start", parfait_cores::ibex::contract(), &regions()) {
            Err(BoundError::Memory(m)) => {
                assert!(m.contains("outside the current frame"), "{m}")
            }
            other => panic!("expected Memory, got {other:?}"),
        }
    }

    #[test]
    fn store_into_text_is_rejected() {
        let asm = "\
.text
_start:
    li sp, 0x2003ff00
    call hsm_main
_halt:
    j _halt
hsm_main:
    li t0, 64
    sw zero, 0(t0)
    ret
";
        match bound_asm(asm, "_start", parfait_cores::ibex::contract(), &regions()) {
            Err(BoundError::Memory(m)) => {
                assert!(m.contains("outside every writable region"), "{m}")
            }
            other => panic!("expected Memory, got {other:?}"),
        }
    }

    #[test]
    fn stack_overrun_is_rejected() {
        let asm = "\
.text
_start:
    li sp, 0x2003ff00
    call hsm_main
_halt:
    j _halt
hsm_main:
    li t6, 131072
    sub sp, sp, t6
    add sp, sp, t6
    ret
";
        match bound_asm(asm, "_start", parfait_cores::ibex::contract(), &regions()) {
            Err(BoundError::Stack(m)) => {
                assert!(m.contains("below the stack floor"), "{m}")
            }
            other => panic!("expected Stack, got {other:?}"),
        }
    }

    #[test]
    fn call_costs_compose_into_the_caller() {
        let once = "
            u32 work(u32 x) { u32 i; for (i = 0; i < 32; i = i + 1) { x = x + i; } return x; }
            void hsm_main() { u32 y; y = work(1); }
        ";
        let twice = "
            u32 work(u32 x) { u32 i; for (i = 0; i < 32; i = i + 1) { x = x + i; } return x; }
            void hsm_main() { u32 y; y = work(1); y = work(y); }
        ";
        let a = bound_src(once, OptLevel::O2).unwrap();
        let b = bound_src(twice, OptLevel::O2).unwrap();
        assert!(b.wcet_cycles > a.wcet_cycles);
        assert_eq!(a.stack_depth, b.stack_depth, "same call depth either way");
    }

    #[test]
    fn pico_contract_charges_more_overhead_than_ibex() {
        let src = "
            void hsm_main() { u32 x; x = 0; while (1) { x = x + 1; } }
        ";
        let asm = asm_for(src, OptLevel::O2);
        let ibex = bound_asm(&asm, "_start", parfait_cores::ibex::contract(), &regions()).unwrap();
        let pico = bound_asm(&asm, "_start", parfait_cores::pico::contract(), &regions()).unwrap();
        assert!(pico.wcet_cycles > ibex.wcet_cycles);
    }
}
