//! Forward taint analysis over littlec IR.
//!
//! The abstract value for a virtual register is a pair: *is it
//! secret-derived* (with a provenance string for the taint path) and
//! *which memory regions may it point into*. The analysis runs a
//! per-function worklist fixpoint over basic blocks, joins at merges
//! (the IR is not SSA — loop variables are reassigned in place), and
//! follows calls by analyzing the callee on the caller's abstract
//! arguments (memoized; recursion is outside the fragment).
//!
//! Memory is summarized per *region*: the secret state buffer, the
//! public command buffer, the response buffer, each global, and each
//! local-array frame slot (context-insensitively per function). A
//! region's content taint only ever goes clean → secret, so iterating
//! the whole analysis until the region table stops changing is a
//! terminating outer fixpoint.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use parfait_littlec::diag::{Diagnostic, Span};
use parfait_littlec::ir::{Inst, IrFunction, IrOp, IrProgram, Operand, Term, VReg};

use crate::latency_model::latency_model;
use crate::{Finding, Layer, LintError, RuleId};

/// A memory region, the granularity of the content-taint summary.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Region {
    /// The handler's secret state buffer (content pinned secret).
    State,
    /// The attacker-chosen command buffer.
    Cmd,
    /// The response buffer (declassified by specification).
    Resp,
    /// A global array, by name.
    Global(String),
    /// A local array frame slot, per function name.
    Frame(String, usize),
    /// The target of a pointer the analysis lost track of.
    Unknown,
}

impl Region {
    fn describe(&self) -> String {
        match self {
            Region::State => "state".into(),
            Region::Cmd => "cmd".into(),
            Region::Resp => "resp".into(),
            Region::Global(g) => format!("global `{g}`"),
            Region::Frame(f, s) => format!("{f} frame slot {s}"),
            Region::Unknown => "untracked memory".into(),
        }
    }
}

/// The abstract value of a virtual register.
#[derive(Clone, Debug, Default)]
struct AbsVal {
    /// `Some(provenance)` when the value may be secret-derived.
    secret: Option<String>,
    /// Regions this value may point into (empty: not a pointer).
    pts: BTreeSet<Region>,
}

impl AbsVal {
    fn join(&self, other: &AbsVal) -> AbsVal {
        AbsVal {
            secret: self.secret.clone().or_else(|| other.secret.clone()),
            pts: self.pts.union(&other.pts).cloned().collect(),
        }
    }

    /// Lattice identity (provenance strings are carried, not compared).
    fn same_lattice(&self, other: &AbsVal) -> bool {
        self.secret.is_some() == other.secret.is_some() && self.pts == other.pts
    }
}

type VMap = BTreeMap<VReg, AbsVal>;

fn join_maps(into: &mut VMap, from: &VMap) -> bool {
    let mut changed = false;
    for (v, val) in from {
        match into.get(v) {
            Some(old) => {
                let j = old.join(val);
                if !j.same_lattice(old) {
                    into.insert(*v, j);
                    changed = true;
                }
            }
            None => {
                into.insert(*v, val.clone());
                changed = true;
            }
        }
    }
    changed
}

/// Memo key for a call: callee name plus the lattice shape of each
/// argument and the region-table epoch.
type CallKey = (String, Vec<(bool, Vec<Region>)>, u64);

struct IrLint<'p> {
    prog: &'p IrProgram,
    /// Region → provenance of its secret content. Absent = clean.
    /// `State` is pinned secret at construction.
    content: BTreeMap<Region, String>,
    /// Bumped whenever `content` grows; memo entries key on it.
    epoch: u64,
    memo: HashMap<CallKey, AbsVal>,
    call_stack: Vec<String>,
    /// (rule, function, block, site) → finding; dedup across fixpoint
    /// iterations (values are monotone, so early firings stay valid).
    findings: BTreeMap<(RuleId, String, usize, usize), Finding>,
    /// Worklist pops across every function fixpoint (flushed to the
    /// metrics registry by [`lint_ir`], not per-pop).
    fixpoint_iters: u64,
    /// Summary-memo hits in `analyze_function`.
    memo_hits: u64,
}

impl<'p> IrLint<'p> {
    fn region_taint(&self, r: &Region) -> Option<String> {
        self.content.get(r).cloned()
    }

    fn taint_region(&mut self, r: Region, why: String) {
        if let std::collections::btree_map::Entry::Vacant(slot) = self.content.entry(r) {
            slot.insert(why);
            self.epoch += 1;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn record(
        &mut self,
        rule: RuleId,
        f: &IrFunction,
        block: usize,
        site: usize,
        line: usize,
        message: String,
        taint: Vec<String>,
    ) {
        let key = (rule, f.name.clone(), block, site);
        self.findings.entry(key).or_insert_with(|| Finding {
            rule,
            layer: Layer::Ir,
            diagnostic: Diagnostic::new(rule.id(), Span::new(f.name.clone(), line), message),
            taint,
        });
    }

    fn analyze_function(&mut self, name: &str, args: Vec<AbsVal>) -> Result<AbsVal, LintError> {
        if self.call_stack.iter().any(|n| n == name) {
            return Err(LintError::Unsupported(format!(
                "recursive call to `{name}` (call stack: {})",
                self.call_stack.join(" -> ")
            )));
        }
        let key: CallKey = (
            name.to_string(),
            args.iter().map(|a| (a.secret.is_some(), a.pts.iter().cloned().collect())).collect(),
            self.epoch,
        );
        if let Some(ret) = self.memo.get(&key) {
            self.memo_hits += 1;
            return Ok(ret.clone());
        }
        let f = self.prog.function(name).ok_or_else(|| LintError::NoEntry(name.to_string()))?;
        self.call_stack.push(name.to_string());
        let t0 = std::time::Instant::now();
        let result = self.function_fixpoint(f, args);
        parfait_telemetry::metrics::Metrics::global()
            .histogram_with("analyzer_fn_lint_us", &[("layer", "ir")])
            .record_duration(t0.elapsed());
        self.call_stack.pop();
        let ret = result?;
        self.memo.insert(key, ret.clone());
        Ok(ret)
    }

    fn function_fixpoint(
        &mut self,
        f: &'p IrFunction,
        args: Vec<AbsVal>,
    ) -> Result<AbsVal, LintError> {
        let mut entry = VMap::new();
        for (i, &p) in f.params.iter().enumerate() {
            entry.insert(p, args.get(i).cloned().unwrap_or_default());
        }
        let nb = f.blocks.len();
        let mut in_states: Vec<Option<VMap>> = vec![None; nb];
        in_states[0] = Some(entry);
        let mut work = vec![0usize];
        let mut ret = AbsVal::default();
        while let Some(bi) = work.pop() {
            self.fixpoint_iters += 1;
            let Some(mut st) = in_states[bi].clone() else { continue };
            self.transfer(f, bi, &mut st)?;
            let block = &f.blocks[bi];
            let succs: Vec<usize> = match block.term.as_ref().expect("terminated") {
                Term::Jump(t) => vec![*t],
                Term::Br { then_b, else_b, .. } => vec![*then_b, *else_b],
                Term::Ret { value } => {
                    if let Some(v) = value {
                        if let Some(val) = st.get(v) {
                            ret = ret.join(val);
                        }
                    }
                    vec![]
                }
            };
            for s in succs {
                match &mut in_states[s] {
                    Some(old) => {
                        if join_maps(old, &st) {
                            work.push(s);
                        }
                    }
                    None => {
                        in_states[s] = Some(st.clone());
                        work.push(s);
                    }
                }
            }
        }
        Ok(ret)
    }

    /// Abstractly execute block `bi` from `st`, recording findings.
    fn transfer(&mut self, f: &'p IrFunction, bi: usize, st: &mut VMap) -> Result<(), LintError> {
        let block = &f.blocks[bi];
        let get = |st: &VMap, v: VReg| st.get(&v).cloned().unwrap_or_default();
        for (i, inst) in block.insts.iter().enumerate() {
            let line = block.line_of(i);
            match inst {
                Inst::Const { dst, .. } => {
                    st.insert(*dst, AbsVal::default());
                }
                Inst::Copy { dst, src } => {
                    let v = get(st, *src);
                    st.insert(*dst, v);
                }
                Inst::Bin { op, dst, a, b } => {
                    let va = get(st, *a);
                    let vb = match b {
                        Operand::Reg(r) => get(st, *r),
                        Operand::Imm(_) => AbsVal::default(),
                    };
                    // IR division lowers to the machine div/rem class;
                    // it is a `CT-LATENCY` sink only while some core's
                    // contract declares that class operand-dependent.
                    if matches!(op, IrOp::Divu | IrOp::Remu)
                        && latency_model().variable_latency(parfait_cores::InstrClass::Div)
                    {
                        if let Some(why) = va.secret.as_ref().or(vb.secret.as_ref()) {
                            self.record(
                                RuleId::SecretLatency,
                                f,
                                bi,
                                i,
                                line,
                                format!(
                                    "secret operand to variable-latency `{op:?}` in `{}`",
                                    f.name
                                ),
                                vec![why.clone(), format!("{op:?} operand at {}:{line}", f.name)],
                            );
                        }
                    }
                    st.insert(*dst, va.join(&vb));
                }
                Inst::Load { dst, addr, .. } => {
                    let av = get(st, *addr);
                    if let Some(why) = &av.secret {
                        self.record(
                            RuleId::SecretIndex,
                            f,
                            bi,
                            i,
                            line,
                            format!("load at secret-dependent address in `{}`", f.name),
                            vec![why.clone(), format!("load address at {}:{line}", f.name)],
                        );
                    }
                    let mut loaded = AbsVal::default();
                    if av.pts.is_empty() {
                        loaded.secret =
                            Some(format!("load via untracked pointer at {}:{line}", f.name));
                    } else {
                        for r in &av.pts {
                            if let Some(why) = self.region_taint(r) {
                                loaded.secret = Some(format!(
                                    "{why}, loaded from {} at {}:{line}",
                                    r.describe(),
                                    f.name
                                ));
                                break;
                            }
                        }
                    }
                    st.insert(*dst, loaded);
                }
                Inst::Store { addr, src, .. } => {
                    let av = get(st, *addr);
                    let sv = get(st, *src);
                    if let Some(why) = &av.secret {
                        self.record(
                            RuleId::SecretIndex,
                            f,
                            bi,
                            i,
                            line,
                            format!("store at secret-dependent address in `{}`", f.name),
                            vec![why.clone(), format!("store address at {}:{line}", f.name)],
                        );
                    }
                    if let Some(why) = &sv.secret {
                        if av.pts.is_empty() {
                            self.taint_region(Region::Unknown, why.clone());
                        }
                        for r in av.pts.iter().cloned().collect::<Vec<_>>() {
                            if r != Region::State {
                                self.taint_region(r, why.clone());
                            }
                        }
                    }
                }
                Inst::AddrOfGlobal { dst, name } => {
                    let mut v = AbsVal::default();
                    v.pts.insert(Region::Global(name.clone()));
                    st.insert(*dst, v);
                }
                Inst::AddrOfLocal { dst, slot } => {
                    let mut v = AbsVal::default();
                    v.pts.insert(Region::Frame(f.name.clone(), *slot));
                    st.insert(*dst, v);
                }
                Inst::Call { dst, func, args } => {
                    let argv: Vec<AbsVal> = args.iter().map(|&a| get(st, a)).collect();
                    let ret = self.analyze_function(func, argv)?;
                    if let Some(d) = dst {
                        st.insert(*d, ret);
                    }
                }
            }
        }
        if let Some(Term::Br { cond, .. }) = block.term.as_ref() {
            let cv = get(st, *cond);
            if let Some(why) = &cv.secret {
                let line = block.term_line;
                self.record(
                    RuleId::SecretBranch,
                    f,
                    bi,
                    usize::MAX,
                    line,
                    format!("branch on secret-derived value in `{}`", f.name),
                    vec![why.clone(), format!("branch condition at {}:{line}", f.name)],
                );
            }
        }
        Ok(())
    }
}

/// Run the IR-layer constant-time analysis on `prog`, seeding taint
/// from `entry`'s parameters per the Parfait handler ABI
/// (`handle(state, cmd, resp)` — state content is secret).
///
/// Returns the sorted findings; [`LintError`] when the program is
/// outside the analyzable fragment.
pub fn lint_ir(prog: &IrProgram, entry: &str) -> Result<Vec<Finding>, LintError> {
    if prog.function(entry).is_none() {
        return Err(LintError::NoEntry(entry.to_string()));
    }
    let mut content = BTreeMap::new();
    content.insert(Region::State, "secret handler state".to_string());
    let mut lint = IrLint {
        prog,
        content,
        epoch: 0,
        memo: HashMap::new(),
        call_stack: Vec::new(),
        findings: BTreeMap::new(),
        fixpoint_iters: 0,
        memo_hits: 0,
    };
    // Outer fixpoint over the region content table: stores may taint a
    // region that earlier loads already read; re-run until stable
    // (content only grows clean → secret, so this terminates).
    loop {
        let epoch0 = lint.epoch;
        lint.findings.clear();
        lint.memo.clear();
        let seeds = seed_args(prog, entry);
        lint.analyze_function(entry, seeds)?;
        if lint.epoch == epoch0 {
            break;
        }
    }
    let metrics = parfait_telemetry::metrics::Metrics::global();
    metrics
        .counter_with("analyzer_fixpoint_iterations_total", &[("layer", "ir")])
        .add(lint.fixpoint_iters);
    metrics.counter_with("analyzer_memo_hits_total", &[("layer", "ir")]).add(lint.memo_hits);
    let mut findings: Vec<Finding> = lint.findings.into_values().collect();
    findings.sort();
    findings.dedup();
    Ok(findings)
}

/// Abstract arguments for the handler entry: `state` points into the
/// secret state region, `cmd` into the public command buffer, `resp`
/// into the response buffer. Any further parameters are clean.
fn seed_args(prog: &IrProgram, entry: &str) -> Vec<AbsVal> {
    let nparams = prog.function(entry).map(|f| f.params.len()).unwrap_or(0);
    let mut seeds = Vec::with_capacity(nparams);
    for i in 0..nparams {
        let mut v = AbsVal::default();
        match i {
            0 => {
                v.pts.insert(Region::State);
            }
            1 => {
                v.pts.insert(Region::Cmd);
            }
            2 => {
                v.pts.insert(Region::Resp);
            }
            _ => {}
        }
        seeds.push(v);
    }
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfait_littlec::ir::lower;

    fn lint_src(src: &str) -> Vec<Finding> {
        let p = parfait_littlec::frontend(src).unwrap();
        let ir = lower(&p).unwrap();
        lint_ir(&ir, "handle").unwrap()
    }

    fn rules(findings: &[Finding]) -> Vec<RuleId> {
        let mut r: Vec<RuleId> = findings.iter().map(|f| f.rule).collect();
        r.sort();
        r.dedup();
        r
    }

    #[test]
    fn masked_select_is_clean() {
        let f = lint_src(
            "void handle(u8* state, u8* cmd, u8* resp) {
                u32 s = state[0];
                u32 m = 0 - (cmd[0] & 1);
                resp[0] = (u8)(s & m);
            }",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn secret_branch_fires_with_span() {
        let f = lint_src(
            "void handle(u8* state, u8* cmd, u8* resp) {
                u32 s = state[0];
                if (s) { resp[0] = 1; }
            }",
        );
        assert_eq!(rules(&f), vec![RuleId::SecretBranch]);
        assert_eq!(f[0].diagnostic.span.function, "handle");
        assert_eq!(f[0].diagnostic.span.line, 3);
    }

    #[test]
    fn secret_loop_bound_fires_branch_rule() {
        let f = lint_src(
            "void handle(u8* state, u8* cmd, u8* resp) {
                u32 n = state[0];
                u32 i = 0;
                while (i < n) { i = i + 1; }
                resp[0] = (u8)i;
            }",
        );
        assert_eq!(rules(&f), vec![RuleId::SecretBranch]);
    }

    #[test]
    fn secret_index_fires_mem_rule() {
        let f = lint_src(
            "const u8 T[4] = {1, 2, 3, 4};
            void handle(u8* state, u8* cmd, u8* resp) {
                resp[0] = T[state[0] & 3];
            }",
        );
        assert_eq!(rules(&f), vec![RuleId::SecretIndex]);
    }

    #[test]
    fn division_by_secret_fires_latency_rule() {
        let f = lint_src(
            "void handle(u8* state, u8* cmd, u8* resp) {
                u32 s = state[0];
                resp[0] = (u8)(100 / (s + 1));
            }",
        );
        assert_eq!(rules(&f), vec![RuleId::SecretLatency]);
    }

    #[test]
    fn taint_flows_through_calls_and_frames() {
        // The secret flows through a helper's return value and a local
        // array before reaching the branch.
        let f = lint_src(
            "u32 pick(u8* p) { return p[0]; }
            void handle(u8* state, u8* cmd, u8* resp) {
                u32 buf[2];
                buf[0] = pick(state);
                if (buf[1] + buf[0]) { resp[0] = 1; }
            }",
        );
        assert_eq!(rules(&f), vec![RuleId::SecretBranch]);
    }

    #[test]
    fn const_global_exponent_scan_is_clean() {
        // The mont_pow_pub pattern: branching on bits of a *public*
        // const-global exponent is fine.
        let f = lint_src(
            "const u8 E[4] = {1, 0, 1, 1};
            void handle(u8* state, u8* cmd, u8* resp) {
                u32 acc = 1;
                u32 s = state[0];
                u32 i = 0;
                while (i < 4) {
                    if (E[i]) { acc = acc * (s | 1); }
                    i = i + 1;
                }
                resp[0] = (u8)acc;
            }",
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn secret_store_through_static_global_taints_later_loads() {
        let f = lint_src(
            "static u8 scratch[4];
            void handle(u8* state, u8* cmd, u8* resp) {
                scratch[0] = state[0];
                if (scratch[1]) { resp[0] = 1; }
            }",
        );
        assert_eq!(rules(&f), vec![RuleId::SecretBranch]);
    }

    #[test]
    fn missing_entry_is_an_error() {
        let p = parfait_littlec::frontend("u32 f() { return 1; }").unwrap();
        let ir = lower(&p).unwrap();
        assert!(matches!(lint_ir(&ir, "handle"), Err(LintError::NoEntry(_))));
    }
}
