//! The lint's timing model, derived from the cores' leakage contracts.
//!
//! `CT-LATENCY` ("secret operand to a variable-latency op") and
//! `CT-MEM` ("load/store at a secret-dependent address") are only
//! meaningful relative to a microarchitecture: an op is a latency sink
//! exactly when *some* supported core declares its latency
//! operand-dependent, and an access is an address sink exactly when
//! some core puts the address on an observable bus. Rather than baking
//! that table into the lint (where it silently drifts from the RTL),
//! this module derives it as the **union** of the supported cores'
//! [`LeakageContract`]s: firmware is linted once and must be
//! constant-time on every core it may run on, so a class is a sink if
//! any core makes it one.
//!
//! [`latency_model_fingerprint`] feeds the `ctcheck` stage's input
//! hash, so editing a core contract re-lints exactly the firmwares
//! whose verdicts could change.
//!
//! [`LeakageContract`]: parfait_cores::LeakageContract

use std::sync::OnceLock;

use parfait_cores::{InstrClass, Latency, LeakageContract};

/// Per-[`InstrClass`] observability facts the lint needs, folded over
/// every supported core's contract.
#[derive(Debug)]
pub struct LatencyModel {
    /// `variable[class.index()]`: some core's latency for this class
    /// depends on operand *values* — a secret operand is a timing leak.
    variable: [bool; InstrClass::ALL.len()],
    /// `addr_trace[class.index()]`: some core exposes this class's
    /// address on an observable bus — a secret-derived address is a
    /// trace leak.
    addr_trace: [bool; InstrClass::ALL.len()],
}

impl LatencyModel {
    fn fold(contracts: &[&LeakageContract]) -> LatencyModel {
        let mut variable = [false; InstrClass::ALL.len()];
        let mut addr_trace = [false; InstrClass::ALL.len()];
        for c in contracts {
            for class in InstrClass::ALL {
                let clause = c.clause(class);
                if matches!(clause.latency, Latency::Operand { .. }) {
                    variable[class.index()] = true;
                }
                if clause.addr_trace {
                    addr_trace[class.index()] = true;
                }
            }
        }
        LatencyModel { variable, addr_trace }
    }

    /// Is this class a `CT-LATENCY` sink on any supported core?
    pub fn variable_latency(&self, class: InstrClass) -> bool {
        self.variable[class.index()]
    }

    /// Is this class a `CT-MEM` sink on any supported core?
    pub fn addr_trace(&self, class: InstrClass) -> bool {
        self.addr_trace[class.index()]
    }
}

/// The contracts the lint is accountable to: every core the pipeline
/// can target.
fn supported_contracts() -> [&'static LeakageContract; 2] {
    [parfait_cores::ibex::contract(), parfait_cores::pico::contract()]
}

/// The union timing model over all supported cores (cached).
pub fn latency_model() -> &'static LatencyModel {
    static MODEL: OnceLock<LatencyModel> = OnceLock::new();
    MODEL.get_or_init(|| LatencyModel::fold(&supported_contracts()))
}

/// Deterministic fingerprint of every contract the lint consumes;
/// part of the `ctcheck` stage's input hash.
pub fn latency_model_fingerprint() -> String {
    let mut s = String::new();
    for c in supported_contracts() {
        s.push_str(&c.canonical());
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_covers_both_cores_sinks() {
        let m = latency_model();
        // Div is operand-dependent on both cores; Shift only on Pico's
        // serial shifter; Mul on neither (Ibex 1-cycle, Pico fixed 32).
        assert!(m.variable_latency(InstrClass::Div));
        assert!(m.variable_latency(InstrClass::Shift));
        assert!(!m.variable_latency(InstrClass::Mul));
        assert!(!m.variable_latency(InstrClass::Alu));
        // Both cores trace data-bus addresses.
        assert!(m.addr_trace(InstrClass::Load));
        assert!(m.addr_trace(InstrClass::Store));
        assert!(!m.addr_trace(InstrClass::Branch));
    }

    #[test]
    fn fingerprint_names_every_supported_core() {
        let fp = latency_model_fingerprint();
        assert!(fp.contains("core=Ibex"));
        assert!(fp.contains("core=PicoRV32"));
        assert!(fp.contains("leakage-contract-v1"));
    }
}
