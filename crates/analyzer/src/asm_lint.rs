//! Abstract taint interpretation over assembled RV32IM firmware.
//!
//! The IR-layer analysis cannot see leaks *introduced by* the
//! compiler: `opt` rewrites branches, `regalloc` spills secrets to the
//! stack and reloads them, codegen materializes addresses. This module
//! re-checks the constant-time rules on the final instruction words,
//! recovering control flow with [`parfait_riscv::decode`] and running
//! a per-instruction dataflow fixpoint.
//!
//! The abstract machine tracks, per register: secrecy (with
//! provenance) and a *kind* — known constant, stack-pointer offset,
//! pointer into a named memory region, or unknown. The stack is
//! modeled byte-granularly relative to the entry `sp`, so spills and
//! reloads (including mixed-width `(u32*)` reads of byte arrays)
//! round-trip precisely. Calls (`jal ra`) are analyzed by inlining:
//! the callee runs on the caller's abstract state and its joined
//! return states continue at the call's fall-through, which makes the
//! single stack coordinate system work across frames. Indirect jumps
//! other than the `jalr x0, ra, 0` return idiom are outside the
//! fragment and reported as [`LintError::Unsupported`].
//!
//! # The sparse interprocedural fixpoint
//!
//! The whole-program analysis is itself a fixpoint over two global
//! tables — the region content map (which memory regions hold secret
//! data) and the escape flag — because a store into a global may feed
//! a load analyzed earlier. Both tables grow monotonically, so the
//! driver re-runs the analysis until they stabilize.
//!
//! The dense driver ([`lint_asm_dense`]) recomputes every function
//! from scratch on every pass, which multiplies the cost of the
//! biggest firmwares by the pass count. The sparse driver (the
//! default, [`lint_asm`]/[`lint_asm_threaded`]) instead memoizes each
//! `(function, abstract entry state)` call **across passes**, keyed by
//! a *dependency footprint*: the set of regions the call observed as
//! clean, and whether it observed the escape flag unset. A memo entry
//! stays valid exactly while its footprint still holds — only calls
//! that actually depended on a table entry that later changed are
//! re-analyzed, everything else *replays* its recorded effect list
//! (region taints, escape, findings) in original execution order.
//! Because every effect application is first-writer-wins and the
//! tables are monotone, a replayed call is observationally identical
//! to re-running it, so the sparse driver's findings are byte-identical
//! to the dense oracle's (proved differentially over the lint corpus).

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::rc::Rc;

use parfait_cores::InstrClass;
use parfait_littlec::diag::{Diagnostic, Span};
use parfait_riscv::asm::Program;
use parfait_riscv::decode::decode;
use parfait_riscv::isa::{AluOp, Instr, LoadOp, Reg, StoreOp};

use crate::latency_model::latency_model;
use crate::{Finding, Layer, LintError, RuleId};

/// A memory region, the granularity of the content-taint summary.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum MRegion {
    /// The secret state buffer (`a0` at entry; content pinned secret).
    State,
    /// The attacker-chosen command buffer (`a1` at entry).
    Cmd,
    /// The response buffer (`a2` at entry).
    Resp,
    /// A global in the data section, by symbol name.
    Global(String),
}

impl MRegion {
    fn describe(&self) -> String {
        match self {
            MRegion::State => "state".into(),
            MRegion::Cmd => "cmd".into(),
            MRegion::Resp => "resp".into(),
            MRegion::Global(g) => format!("global `{g}`"),
        }
    }
}

/// Interned region id: an index into [`AsmLint::regions`]. Ids are
/// assigned in [`MRegion`] sort order, so a set of ids iterates in the
/// same order a `BTreeSet<MRegion>` would — provenance strings built
/// from "the first tainted region of a set" come out byte-identical.
type Rid = u32;

/// An interned region set. `Rc`-shared: pointer kinds are cloned on
/// every join and most sets are singletons minted once at
/// [`AsmLint::new`].
type RegionSet = Rc<BTreeSet<Rid>>;

/// What a register value *is*, beyond its secrecy.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
enum Kind {
    /// Nothing known.
    Top,
    /// A known 32-bit constant (from `lui`/`li`/`auipc` folding).
    Const(u32),
    /// `entry_sp + offset` — a resolvable stack address.
    Sp(i32),
    /// Somewhere on the stack, offset unknown (variable array index).
    SpAny,
    /// A pointer into one of these regions, at any offset.
    Mem(RegionSet),
}

/// The abstract value of a register or stack slot.
#[derive(Clone, Debug)]
struct AVal {
    /// `Some(provenance)` when the value may be secret-derived.
    /// Shared: provenance strings are cloned on every join.
    secret: Option<Rc<str>>,
    kind: Kind,
}

impl Default for AVal {
    fn default() -> AVal {
        AVal { secret: None, kind: Kind::Top }
    }
}

impl AVal {
    fn konst(v: u32) -> AVal {
        AVal { secret: None, kind: Kind::Const(v) }
    }

    fn join(&self, other: &AVal) -> AVal {
        AVal {
            secret: self.secret.clone().or_else(|| other.secret.clone()),
            kind: join_kind(&self.kind, &other.kind),
        }
    }

    fn same_lattice(&self, other: &AVal) -> bool {
        self.secret.is_some() == other.secret.is_some() && self.kind == other.kind
    }
}

fn join_kind(a: &Kind, b: &Kind) -> Kind {
    match (a, b) {
        _ if a == b => a.clone(),
        (Kind::Sp(_) | Kind::SpAny, Kind::Sp(_) | Kind::SpAny) => Kind::SpAny,
        (Kind::Mem(x), Kind::Mem(y)) => Kind::Mem(Rc::new(x.union(y).copied().collect())),
        _ => Kind::Top,
    }
}

/// One tracked stack byte: the abstract value of the store that wrote
/// it plus which *world* it belongs to. Spill/temp slots are addressed
/// directly off `sp`; local-array bytes are addressed through
/// materialized `sp+K` pointers. Variable-index accesses (unknown
/// stack offset) can only hit array bytes — littlec has no
/// address-taken spill slots and the analyzer assumes in-bounds
/// indexing (spatial memory safety is the other stages' job) — so
/// variable reads join array bytes and the blob, never spills.
///
/// A multi-byte store replicates its value across the covered bytes; a
/// load whose bytes all agree on one lattice value reconstructs it
/// (spill/reload round-trips, including across joins, stay precise),
/// anything else degrades to an unknown with the joined secrecy. Byte
/// reassembly of *numeric* constants written at a different width can
/// therefore be imprecise, but never in a way that drops taint.
#[derive(Clone, Debug)]
struct SByte {
    val: AVal,
    /// True when written through a pointer (array world) rather than
    /// directly off `sp` (spill/temp world).
    array: bool,
}

/// The abstract machine state at one program point.
#[derive(Clone, Debug)]
struct MState {
    regs: Vec<AVal>,
    /// Bytes relative to the *entry* `sp` of the linted handler; one
    /// coordinate system across inlined callees. Shared copy-on-write:
    /// most instructions don't touch the stack, so cloning a state is
    /// cheap.
    stack: Rc<BTreeMap<i32, SByte>>,
    /// Join of everything stored at an unresolved stack address; reads
    /// at any stack address must also observe it.
    blob: Option<AVal>,
}

/// Provenance-free lattice shape of a state, for memoization and
/// change detection.
type StateKey = (Vec<(bool, Kind)>, Vec<(i32, bool, bool, Kind)>, Option<(bool, Kind)>);

impl MState {
    fn reg(&self, r: Reg) -> &AVal {
        &self.regs[r.0 as usize]
    }

    fn set_reg(&mut self, r: Reg, v: AVal) {
        if r != Reg::ZERO {
            self.regs[r.0 as usize] = v;
        }
    }

    fn key(&self) -> StateKey {
        (
            self.regs.iter().map(|v| (v.secret.is_some(), v.kind.clone())).collect(),
            self.stack
                .iter()
                .map(|(o, b)| (*o, b.array, b.val.secret.is_some(), b.val.kind.clone()))
                .collect(),
            self.blob.as_ref().map(|v| (v.secret.is_some(), v.kind.clone())),
        )
    }
}

/// Join `from` into `into`; true when `into`'s lattice shape changed.
fn join_state(into: &mut MState, from: &MState) -> bool {
    let mut changed = false;
    for i in 0..32 {
        let j = into.regs[i].join(&from.regs[i]);
        if !j.same_lattice(&into.regs[i]) {
            into.regs[i] = j;
            changed = true;
        }
    }
    // A byte missing on one side was never written there: clean,
    // unknown contents. The join keeps the other side's secrecy but
    // degrades the exact-store shape.
    if !Rc::ptr_eq(&into.stack, &from.stack) {
        let keys: BTreeSet<i32> = into.stack.keys().chain(from.stack.keys()).copied().collect();
        let mut updates: Vec<(i32, SByte)> = Vec::new();
        for o in keys {
            match (into.stack.get(&o), from.stack.get(&o)) {
                (Some(a), Some(b)) => {
                    let world = a.array || b.array;
                    let merged = a.val.join(&b.val);
                    if a.array == world && a.val.same_lattice(&merged) {
                        continue;
                    }
                    updates.push((o, SByte { val: merged, array: world }));
                }
                (Some(a), None) => {
                    // Missing on one side: never written there — clean,
                    // unknown contents.
                    if a.val.kind != Kind::Top {
                        updates.push((
                            o,
                            SByte {
                                val: AVal { secret: a.val.secret.clone(), kind: Kind::Top },
                                array: a.array,
                            },
                        ));
                    }
                }
                (None, Some(b)) => {
                    updates.push((
                        o,
                        SByte {
                            val: AVal { secret: b.val.secret.clone(), kind: Kind::Top },
                            array: b.array,
                        },
                    ));
                }
                (None, None) => unreachable!(),
            }
        }
        if !updates.is_empty() {
            let stack = Rc::make_mut(&mut into.stack);
            for (o, b) in updates {
                stack.insert(o, b);
            }
            changed = true;
        }
    }
    match (&mut into.blob, &from.blob) {
        (_, None) => {}
        (Some(a), Some(b)) => {
            let j = a.join(b);
            if !j.same_lattice(a) {
                *a = j;
                changed = true;
            }
        }
        (into_blob @ None, Some(b)) => {
            *into_blob = Some(b.clone());
            changed = true;
        }
    }
    changed
}

/// Drop stack bytes below offset `s` (the current stack pointer):
/// they belong to frames that have returned. Real code never reads
/// below `sp`, and keeping the stale bytes makes call memoization
/// keys needlessly unique.
fn prune_below(st: &mut MState, s: i32) {
    if st.stack.keys().next().is_some_and(|&lo| lo < s) {
        Rc::make_mut(&mut st.stack).retain(|&o, _| o >= s);
    }
}

/// Where a memory access lands.
enum Target {
    Stack(i32),
    StackAny,
    Regions(RegionSet),
    Untracked,
}

/// A globally-visible side effect of analyzing a call, recorded for
/// cross-pass replay. Every application is guarded first-writer-wins,
/// so replaying an effect that already took hold is a no-op.
#[derive(Clone, Debug)]
enum Effect {
    /// `taint_region(rid, why)` was attempted.
    Taint(Rid, Rc<str>),
    /// The escape flag was attempted with this provenance.
    Escape(Rc<str>),
    /// A finding was attempted at `(rule, addr)`.
    Record(RuleId, u32, Rc<Finding>),
}

/// Dedup key for [`Effect`]s within one recording frame: only the
/// first attempt per key can take hold, so later ones need not be
/// recorded.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum EffKey {
    Taint(Rid),
    Escape,
    Record(RuleId, u32),
}

/// The in-progress recording of one `analyze_function` call: its
/// effects (in execution order) and its dependency footprint.
#[derive(Default)]
struct Frame {
    effects: Vec<Effect>,
    keys: HashSet<EffKey>,
    /// Regions observed absent from the content table.
    clean: BTreeSet<Rid>,
    /// Whether the escape flag was observed unset at a point where it
    /// determined a load's secrecy.
    saw_unescaped: bool,
}

/// A finished call summary: the joined return state plus the recording.
struct MemoEntry {
    ret: Option<MState>,
    effects: Vec<Effect>,
    clean: BTreeSet<Rid>,
    saw_unescaped: bool,
    /// Epoch at recording time — the dense oracle's validity key.
    epoch_at: u64,
}

struct AsmLint<'p> {
    prog: &'p Program,
    /// Pre-decoded text section (parallel to `prog.text`).
    code: Vec<Result<Instr, String>>,
    /// Function symbols (text labels not starting with `.`), sorted by
    /// address; used to name findings.
    funcs: Vec<(u32, String)>,
    /// Interned regions, indexed by [`Rid`]; ids follow [`MRegion`]
    /// sort order.
    regions: Vec<MRegion>,
    /// Pre-minted singleton region sets, indexed by [`Rid`].
    singletons: Vec<RegionSet>,
    /// Data-section symbol ranges, sorted by start address, for
    /// binary-search classification of constant addresses.
    globals: Vec<(u32, u32, Rid)>,
    /// Region → provenance of its secret content. Absent = clean.
    /// Monotone: entries are only ever added, never changed or removed,
    /// across the whole lint run (all passes).
    content: HashMap<Rid, Rc<str>>,
    /// Set when a secret was stored through an untracked pointer: all
    /// loads must then be considered secret. Set once, monotone.
    escaped: Option<Rc<str>>,
    /// Bumped when `content`/`escaped` grow; the outer loop reruns
    /// until stable.
    epoch: u64,
    /// Cross-pass call summaries; validity is footprint-checked (or
    /// epoch-checked for the dense oracle) at lookup.
    memo: HashMap<(u32, StateKey), Rc<MemoEntry>>,
    /// Sparse mode: reuse entries whose footprint still holds. Dense
    /// mode (the oracle): reuse only within the recording epoch.
    reuse: bool,
    /// Active recordings, innermost last. Effects and footprint
    /// observations go to *every* active frame (a caller depends on
    /// whatever its callees depend on).
    frames: Vec<Frame>,
    /// True when every active frame already has `saw_unescaped` — the
    /// common case after the first clean load, kept as a flag so the
    /// per-load hot path is one branch.
    all_unescaped: bool,
    call_stack: Vec<u32>,
    /// Per-active-call snapshot of the entry register file (parallel
    /// to `call_stack`), for the callee-saved-preservation check at
    /// each return point. Memoization stays sound: the snapshot's
    /// lattice shape is part of the memo key, and the findings the
    /// check records replay through the frame effect list.
    entry_regs: Vec<Vec<AVal>>,
    findings: BTreeMap<(RuleId, u32), Finding>,
    /// Worklist pops across every function fixpoint (flushed to the
    /// metrics registry by [`lint_asm`], not per-pop).
    fixpoint_iters: u64,
    /// Summary-memo hits in `analyze_function`.
    memo_hits: u64,
}

impl<'p> AsmLint<'p> {
    fn new(prog: &'p Program, code: Vec<Result<Instr, String>>, reuse: bool) -> AsmLint<'p> {
        let text_end = prog.text_base + 4 * prog.text.len() as u32;
        let mut funcs: Vec<(u32, String)> = prog
            .symbols
            .iter()
            .filter(|(name, &a)| !name.starts_with('.') && a >= prog.text_base && a < text_end)
            .map(|(name, &a)| (a, name.clone()))
            .collect();
        funcs.sort();
        let data_end = prog.data_base + prog.data.len() as u32;
        let mut starts: Vec<(u32, String)> = prog
            .symbols
            .iter()
            .filter(|(_, &a)| a >= prog.data_base && a < data_end)
            .map(|(name, &a)| (a, name.clone()))
            .collect();
        starts.sort();
        // Intern in MRegion sort order (State, Cmd, Resp, globals by
        // name) so interned sets iterate like `BTreeSet<MRegion>` did.
        let mut regions = vec![MRegion::State, MRegion::Cmd, MRegion::Resp];
        let mut names: Vec<&String> = starts.iter().map(|(_, n)| n).collect();
        names.sort();
        names.dedup();
        let by_name: HashMap<&str, Rid> = names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.as_str(), (regions.len() + i) as Rid))
            .collect();
        regions.extend(names.iter().map(|n| MRegion::Global((*n).clone())));
        let singletons: Vec<RegionSet> =
            (0..regions.len() as Rid).map(|r| Rc::new(BTreeSet::from([r]))).collect();
        let mut globals = Vec::with_capacity(starts.len());
        for (i, (start, name)) in starts.iter().enumerate() {
            let end = starts.get(i + 1).map(|(s, _)| *s).unwrap_or(data_end);
            globals.push((*start, end, by_name[name.as_str()]));
        }
        let mut content = HashMap::new();
        content.insert(RID_STATE, Rc::from("secret handler state"));
        AsmLint {
            prog,
            code,
            funcs,
            regions,
            singletons,
            globals,
            content,
            escaped: None,
            epoch: 0,
            memo: HashMap::new(),
            reuse,
            frames: Vec::new(),
            all_unescaped: false,
            call_stack: Vec::new(),
            entry_regs: Vec::new(),
            findings: BTreeMap::new(),
            fixpoint_iters: 0,
            memo_hits: 0,
        }
    }

    /// The handler's abstract entry state (`a0` = state, `a1` = cmd,
    /// `a2` = resp, `sp` = 0).
    fn entry_state(&self) -> MState {
        let mut regs = vec![AVal::default(); 32];
        regs[Reg::ZERO.0 as usize] = AVal::konst(0);
        regs[Reg::SP.0 as usize] = AVal { secret: None, kind: Kind::Sp(0) };
        for (r, rid) in [(Reg::A0, RID_STATE), (Reg::A1, RID_CMD), (Reg::A2, RID_RESP)] {
            regs[r.0 as usize] =
                AVal { secret: None, kind: Kind::Mem(self.singletons[rid as usize].clone()) };
        }
        MState { regs, stack: Rc::new(BTreeMap::new()), blob: None }
    }

    fn describe(&self, r: Rid) -> String {
        self.regions[r as usize].describe()
    }

    fn func_of(&self, addr: u32) -> String {
        match self.funcs.iter().rev().find(|(a, _)| *a <= addr) {
            Some((_, name)) => name.clone(),
            None => format!("{addr:#010x}"),
        }
    }

    fn data_region(&self, addr: u32) -> Option<Rid> {
        let i = self.globals.partition_point(|&(s, _, _)| s <= addr).checked_sub(1)?;
        let (s, e, rid) = self.globals[i];
        (addr >= s && addr < e).then_some(rid)
    }

    fn fetch(&self, addr: u32) -> Result<Instr, LintError> {
        if addr < self.prog.text_base || !addr.is_multiple_of(4) {
            return Err(LintError::Asm(format!("control flow leaves text at {addr:#010x}")));
        }
        let idx = ((addr - self.prog.text_base) / 4) as usize;
        match self.code.get(idx) {
            Some(Ok(i)) => Ok(*i),
            Some(Err(e)) => Err(LintError::Asm(format!("undecodable word at {addr:#010x}: {e}"))),
            None => Err(LintError::Asm(format!("control flow leaves text at {addr:#010x}"))),
        }
    }

    // --- effect emission (applied first-writer-wins, recorded into
    // --- every active frame for cross-pass replay)

    fn attempt_taint(&mut self, r: Rid, why: Rc<str>) {
        for f in &mut self.frames {
            if f.keys.insert(EffKey::Taint(r)) {
                f.effects.push(Effect::Taint(r, why.clone()));
            }
        }
        if let std::collections::hash_map::Entry::Vacant(e) = self.content.entry(r) {
            e.insert(why);
            self.epoch += 1;
        }
    }

    fn attempt_escape(&mut self, why: Rc<str>) {
        for f in &mut self.frames {
            if f.keys.insert(EffKey::Escape) {
                f.effects.push(Effect::Escape(why.clone()));
            }
        }
        if self.escaped.is_none() {
            self.escaped = Some(why);
            self.epoch += 1;
        }
    }

    fn attempt_record(&mut self, rule: RuleId, addr: u32, finding: Rc<Finding>) {
        for f in &mut self.frames {
            if f.keys.insert(EffKey::Record(rule, addr)) {
                f.effects.push(Effect::Record(rule, addr, finding.clone()));
            }
        }
        self.findings.entry((rule, addr)).or_insert_with(|| (*finding).clone());
    }

    fn record(&mut self, rule: RuleId, addr: u32, instr: Instr, why: &str, sink: &str) {
        let key = EffKey::Record(rule, addr);
        if self.findings.contains_key(&(rule, addr))
            && self.frames.iter().all(|f| f.keys.contains(&key))
        {
            return;
        }
        let func = self.func_of(addr);
        let finding = Finding {
            rule,
            layer: Layer::Asm,
            diagnostic: Diagnostic::new(
                rule.id(),
                Span::new(func.clone(), 0),
                format!("{sink} at {addr:#010x} (`{instr}`) in `{func}`"),
            ),
            taint: vec![why.to_string(), format!("{sink} at {addr:#010x}")],
        };
        self.attempt_record(rule, addr, Rc::new(finding));
    }

    // --- dependency footprint observations

    fn note_clean(&mut self, r: Rid) {
        for f in &mut self.frames {
            f.clean.insert(r);
        }
    }

    fn note_unescaped(&mut self) {
        if self.all_unescaped {
            return;
        }
        for f in &mut self.frames {
            f.saw_unescaped = true;
        }
        self.all_unescaped = true;
    }

    /// Re-apply a memoized call's recorded footprint and effects, in
    /// original execution order. Under a valid footprint this is
    /// observationally identical to re-running the call: every table
    /// read it performed still yields the same answer, so a fresh run
    /// would attempt exactly these effects — and each application is
    /// guarded first-writer-wins.
    fn replay(&mut self, e: &MemoEntry) {
        for &r in &e.clean {
            self.note_clean(r);
        }
        if e.saw_unescaped {
            self.note_unescaped();
        }
        for eff in &e.effects {
            match eff {
                Effect::Taint(r, why) => self.attempt_taint(*r, why.clone()),
                Effect::Escape(why) => self.attempt_escape(why.clone()),
                Effect::Record(rule, addr, finding) => {
                    self.attempt_record(*rule, *addr, finding.clone())
                }
            }
        }
    }

    /// Classify the address `base + off` for a memory access.
    fn target(&self, base: &AVal, off: i32) -> Target {
        match &base.kind {
            Kind::Sp(o) => Target::Stack(o + off),
            Kind::SpAny => Target::StackAny,
            Kind::Mem(rs) => Target::Regions(rs.clone()),
            Kind::Const(a) => {
                let addr = a.wrapping_add(off as u32);
                match self.data_region(addr) {
                    Some(r) => Target::Regions(self.singletons[r as usize].clone()),
                    None => Target::Untracked,
                }
            }
            Kind::Top => Target::Untracked,
        }
    }

    fn read_stack(&self, st: &MState, o: i32, w: u8) -> AVal {
        let bytes: Vec<Option<&SByte>> = (0..w as i32).map(|k| st.stack.get(&(o + k))).collect();
        let agree = bytes.iter().all(|b| match b {
            Some(b) => b.val.same_lattice(&bytes[0].as_ref().unwrap().val),
            None => false,
        });
        if agree {
            bytes[0].unwrap().val.clone()
        } else {
            let secret = bytes.iter().flatten().find_map(|b| b.val.secret.clone());
            AVal { secret, kind: Kind::Top }
        }
    }

    fn write_stack(&self, st: &mut MState, o: i32, w: u8, val: &AVal, array: bool) {
        let stack = Rc::make_mut(&mut st.stack);
        for k in 0..w {
            stack.insert(o + k as i32, SByte { val: val.clone(), array });
        }
    }

    /// The abstract value loaded from `target`. Queries of the content
    /// table and the escape flag that come back *clean* are dependency
    /// observations: the answer could change in a later pass, so they
    /// go into every active frame's footprint.
    fn load_value(&mut self, st: &MState, target: &Target, w: u8, addr: u32) -> AVal {
        let mut v = match target {
            Target::Stack(o) => self.read_stack(st, *o, w),
            Target::StackAny => {
                let mut v = AVal::default();
                for b in st.stack.values().filter(|b| b.array) {
                    v.secret = v.secret.or_else(|| b.val.secret.clone());
                }
                if let Some(blob) = &st.blob {
                    v = v.join(blob);
                }
                v.kind = Kind::Top;
                v
            }
            Target::Regions(rs) => {
                let mut secret = None;
                let mut cleans: Vec<Rid> = Vec::new();
                for &r in rs.iter() {
                    match self.content.get(&r) {
                        Some(why) => {
                            secret =
                                Some(Rc::from(format!("{why}, loaded from {}", self.describe(r))));
                            break;
                        }
                        None => cleans.push(r),
                    }
                }
                for r in cleans {
                    self.note_clean(r);
                }
                AVal { secret, kind: Kind::Top }
            }
            Target::Untracked => AVal {
                secret: Some(Rc::from(format!("load via untracked address at {addr:#010x}"))),
                kind: Kind::Top,
            },
        };
        if v.secret.is_none() {
            match &self.escaped {
                Some(e) => v.secret = Some(e.clone()),
                None => self.note_unescaped(),
            }
        }
        v
    }

    fn store_value(&mut self, st: &mut MState, target: Target, w: u8, val: &AVal, array: bool) {
        match target {
            Target::Stack(o) => self.write_stack(st, o, w, val, array),
            Target::StackAny => {
                let joined = match &st.blob {
                    Some(b) => b.join(val),
                    None => val.clone(),
                };
                st.blob = Some(joined);
            }
            Target::Regions(rs) => {
                if let Some(why) = &val.secret {
                    let why = why.clone();
                    for &r in rs.iter() {
                        if r != RID_STATE {
                            self.attempt_taint(r, why.clone());
                        }
                    }
                }
            }
            Target::Untracked => {
                if let Some(why) = &val.secret {
                    let why = Rc::from(format!("{why}, escaped via untracked store"));
                    self.attempt_escape(why);
                }
            }
        }
    }

    /// ALU result kind; keeps constants, stack offsets, and region
    /// pointers alive through address arithmetic.
    fn alu_kind(&self, op: AluOp, a: &Kind, b: &Kind) -> Kind {
        use Kind::*;
        if let (Const(x), Const(y)) = (a, b) {
            let v = op.eval(*x, *y);
            // A data-section address that survives constant arithmetic
            // is still a pointer into that symbol; classify it as a
            // region now so per-iteration element addresses join to
            // the region instead of collapsing (as unequal constants)
            // to Top at the loop head.
            if matches!(op, AluOp::Add | AluOp::Sub) {
                if let Some(r) = self.data_region(v) {
                    return Mem(self.singletons[r as usize].clone());
                }
            }
            return Const(v);
        }
        match (op, a, b) {
            (AluOp::Add, Sp(o), Const(c)) | (AluOp::Add, Const(c), Sp(o)) => {
                Sp(o.wrapping_add(*c as i32))
            }
            (AluOp::Sub, Sp(o), Const(c)) => Sp(o.wrapping_sub(*c as i32)),
            (AluOp::Add, Sp(_) | SpAny, _) | (AluOp::Add, _, Sp(_) | SpAny) => SpAny,
            (AluOp::Sub, Sp(_) | SpAny, _) => SpAny,
            (AluOp::Add | AluOp::Sub, Mem(rs), _) | (AluOp::Add, _, Mem(rs)) => Mem(rs.clone()),
            // A constant pointing into the data section, indexed by a
            // variable, is still a pointer into that symbol's range.
            (AluOp::Add, Const(c), _) | (AluOp::Add, _, Const(c)) => match self.data_region(*c) {
                Some(r) => Mem(self.singletons[r as usize].clone()),
                None => Top,
            },
            _ => Top,
        }
    }

    /// Analyze the function entered at `entry` with state `st`.
    /// Returns the join of its return-point states, or `None` when no
    /// path returns.
    fn analyze_function(&mut self, entry: u32, st: MState) -> Result<Option<MState>, LintError> {
        if self.call_stack.contains(&entry) {
            return Err(LintError::Unsupported(format!(
                "recursive call to `{}`",
                self.func_of(entry)
            )));
        }
        let memo_key = (entry, st.key());
        if let Some(e) = self.memo.get(&memo_key) {
            let valid = if self.reuse {
                e.clean.iter().all(|r| !self.content.contains_key(r))
                    && (!e.saw_unescaped || self.escaped.is_none())
            } else {
                e.epoch_at == self.epoch
            };
            if valid {
                self.memo_hits += 1;
                let e = Rc::clone(e);
                self.replay(&e);
                return Ok(e.ret.clone());
            }
        }
        self.call_stack.push(entry);
        self.entry_regs.push(st.regs.clone());
        self.frames.push(Frame::default());
        self.all_unescaped = false;
        let t0 = std::time::Instant::now();
        let epoch_at = self.epoch;
        let result = self.function_fixpoint(entry, st);
        parfait_telemetry::metrics::Metrics::global()
            .histogram_with("analyzer_fn_lint_us", &[("layer", "asm")])
            .record_duration(t0.elapsed());
        self.call_stack.pop();
        self.entry_regs.pop();
        let frame = self.frames.pop().expect("frame pushed above");
        // The popped frame may leave the remaining frames all-noted;
        // recompute the fast flag conservatively.
        self.all_unescaped = !self.frames.is_empty() && self.frames.iter().all(|f| f.saw_unescaped);
        let ret = result?;
        self.memo.insert(
            memo_key,
            Rc::new(MemoEntry {
                ret: ret.clone(),
                effects: frame.effects,
                clean: frame.clean,
                saw_unescaped: frame.saw_unescaped,
                epoch_at,
            }),
        );
        Ok(ret)
    }

    fn function_fixpoint(&mut self, entry: u32, st: MState) -> Result<Option<MState>, LintError> {
        let mut states: HashMap<u32, MState> = HashMap::new();
        states.insert(entry, st);
        // Address-ordered worklist: for the compiler's layout this
        // approximates reverse postorder, which converges in far fewer
        // visits than LIFO order. Per-instruction states double as an
        // early propagation cutoff — a re-entered path stops as soon as
        // its join stops changing.
        let mut work: BTreeSet<u32> = BTreeSet::from([entry]);
        let mut ret: Option<MState> = None;
        while let Some(addr) = work.pop_first() {
            self.fixpoint_iters += 1;
            let Some(st) = states.get(&addr).cloned() else { continue };
            let (succs, returned) = self.step(addr, st)?;
            if let Some(r) = returned {
                match &mut ret {
                    Some(acc) => {
                        join_state(acc, &r);
                    }
                    None => ret = Some(r),
                }
            }
            for (succ, out) in succs {
                match states.get_mut(&succ) {
                    Some(old) => {
                        if join_state(old, &out) {
                            work.insert(succ);
                        }
                    }
                    None => {
                        states.insert(succ, out);
                        work.insert(succ);
                    }
                }
            }
        }
        Ok(ret)
    }

    /// Execute one instruction abstractly. Returns the successor
    /// states within this function and, for return paths, the state
    /// handed back to the caller.
    #[allow(clippy::type_complexity)]
    fn step(
        &mut self,
        addr: u32,
        mut st: MState,
    ) -> Result<(Vec<(u32, MState)>, Option<MState>), LintError> {
        let instr = self.fetch(addr)?;
        let next = addr.wrapping_add(4);
        match instr {
            Instr::Lui { rd, imm } => {
                st.set_reg(rd, AVal::konst((imm as u32).wrapping_shl(12)));
            }
            Instr::Auipc { rd, imm } => {
                st.set_reg(rd, AVal::konst(addr.wrapping_add((imm as u32).wrapping_shl(12))));
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                let a = st.reg(rs1).clone();
                let b = AVal::konst(imm as u32);
                self.check_latency(op, addr, instr, &a, &b);
                let kind = self.alu_kind(op, &a.kind, &b.kind);
                st.set_reg(rd, AVal { secret: a.secret, kind });
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                let a = st.reg(rs1).clone();
                let b = st.reg(rs2).clone();
                self.check_latency(op, addr, instr, &a, &b);
                let kind = self.alu_kind(op, &a.kind, &b.kind);
                st.set_reg(rd, AVal { secret: a.secret.or(b.secret), kind });
            }
            Instr::Load { op, rd, rs1, off } => {
                let base = st.reg(rs1).clone();
                // `CT-MEM` applies because a core's contract exposes
                // the data-bus address; a core with an untraced bus
                // would not make this a sink.
                if latency_model().addr_trace(InstrClass::Load) {
                    if let Some(why) = &base.secret {
                        self.record(
                            RuleId::SecretIndex,
                            addr,
                            instr,
                            why,
                            "load at secret-dependent address",
                        );
                    }
                }
                let w = load_width(op);
                let target = self.target(&base, off);
                let v = self.load_value(&st, &target, w, addr);
                st.set_reg(rd, v);
            }
            Instr::Store { op, rs1, rs2, off } => {
                let base = st.reg(rs1).clone();
                let val = st.reg(rs2).clone();
                if latency_model().addr_trace(InstrClass::Store) {
                    if let Some(why) = &base.secret {
                        self.record(
                            RuleId::SecretIndex,
                            addr,
                            instr,
                            why,
                            "store at secret-dependent address",
                        );
                    }
                }
                let w = store_width(op);
                let target = self.target(&base, off);
                self.store_value(&mut st, target, w, &val, rs1 != Reg::SP);
            }
            Instr::Branch { rs1, rs2, off, .. } => {
                for rs in [rs1, rs2] {
                    if let Some(why) = &st.reg(rs).secret {
                        let why = why.clone();
                        self.record(
                            RuleId::SecretBranch,
                            addr,
                            instr,
                            &why,
                            "branch on secret-derived value",
                        );
                        break;
                    }
                }
                let taken = addr.wrapping_add(off as u32);
                return Ok((vec![(taken, st.clone()), (next, st)], None));
            }
            Instr::Jal { rd, off } => {
                let dest = addr.wrapping_add(off as u32);
                if rd == Reg::ZERO {
                    return Ok((vec![(dest, st)], None));
                }
                if rd == Reg::RA {
                    st.set_reg(Reg::RA, AVal::konst(next));
                    // Stack bytes below `sp` are dead (leftovers of
                    // returned callees); drop them so the callee's
                    // memo key only covers live memory.
                    if let Kind::Sp(s) = st.reg(Reg::SP).kind {
                        prune_below(&mut st, s);
                    }
                    return match self.analyze_function(dest, st)? {
                        Some(mut ret_state) => {
                            if let Kind::Sp(s) = ret_state.reg(Reg::SP).kind {
                                prune_below(&mut ret_state, s);
                            }
                            Ok((vec![(next, ret_state)], None))
                        }
                        None => Ok((vec![], None)),
                    };
                }
                return Err(LintError::Unsupported(format!(
                    "jal with link register {rd:?} at {addr:#010x}"
                )));
            }
            Instr::Jalr { rd, rs1, off } => {
                if rd == Reg::ZERO && rs1 == Reg::RA && off == 0 {
                    self.check_callee_saved(addr, instr, &st);
                    return Ok((vec![], Some(st)));
                }
                return Err(LintError::Unsupported(format!(
                    "indirect jump `{instr}` at {addr:#010x}"
                )));
            }
            Instr::Fence => {}
            // Halt conventions: no successor.
            Instr::Ecall | Instr::Ebreak => return Ok((vec![], None)),
        }
        Ok((vec![(next, st)], None))
    }

    /// `CT-ABI`: at a return point, every register the RISC-V calling
    /// convention makes the *callee* responsible for (`ra`, `sp`,
    /// `s0`–`s11`) must hold its entry value again. The byte-precise
    /// stack model reconstructs spill/restore round-trips exactly, so
    /// a conforming prologue/epilogue compares lattice-equal to the
    /// entry snapshot; a clobber that skips the restore (e.g. a fault
    /// that grabs an s-register as scratch) surfaces as a changed kind
    /// or secrecy. The comparison under-approximates — a register that
    /// re-joins to the entry shape without provably holding the entry
    /// value passes — which is the right polarity for a lint: no false
    /// positives on conforming code.
    fn check_callee_saved(&mut self, addr: u32, instr: Instr, st: &MState) {
        const CALLEE_SAVED: [Reg; 14] = [
            Reg::RA,
            Reg::SP,
            Reg::S0,
            Reg::S1,
            Reg::S2,
            Reg::S3,
            Reg::S4,
            Reg::S5,
            Reg::S6,
            Reg::S7,
            Reg::S8,
            Reg::S9,
            Reg::S10,
            Reg::S11,
        ];
        let Some(entry) = self.entry_regs.last() else {
            return;
        };
        let clobbered: Vec<Reg> = CALLEE_SAVED
            .into_iter()
            .filter(|r| !st.reg(*r).same_lattice(&entry[r.0 as usize]))
            .collect();
        for r in clobbered {
            let why = format!(
                "callee-saved `{}` not restored across `{}`",
                r.abi_name(),
                self.func_of(addr)
            );
            let sink = format!("callee-saved register `{}` clobbered at return", r.abi_name());
            self.record(RuleId::CalleeSaved, addr, instr, &why, &sink);
        }
    }

    /// `CT-LATENCY`: flag a secret operand feeding an op some
    /// supported core's [`parfait_cores::LeakageContract`] declares
    /// operand-dependent. Which operand matters is per class: a
    /// divider's latency tracks the dividend (and `rem` shares the
    /// datapath), a serial shifter's tracks only the *amount* — an
    /// immediate amount (`b` a constant from `OpImm`) can never fire.
    fn check_latency(&mut self, op: AluOp, addr: u32, instr: Instr, a: &AVal, b: &AVal) {
        let class = InstrClass::of_alu(op);
        if !latency_model().variable_latency(class) {
            return;
        }
        let (tainted, sink) = match class {
            InstrClass::Div => (
                a.secret.as_ref().or(b.secret.as_ref()),
                "secret operand to variable-latency division",
            ),
            InstrClass::Shift => (b.secret.as_ref(), "secret shift amount to a serial shifter"),
            _ => {
                (a.secret.as_ref().or(b.secret.as_ref()), "secret operand to a variable-latency op")
            }
        };
        if let Some(why) = tainted {
            let why = why.clone();
            self.record(RuleId::SecretLatency, addr, instr, &why, sink);
        }
    }
}

/// Well-known interned ids (matching [`MRegion`] sort order).
const RID_STATE: Rid = 0;
const RID_CMD: Rid = 1;
const RID_RESP: Rid = 2;

fn load_width(op: LoadOp) -> u8 {
    match op {
        LoadOp::Lb | LoadOp::Lbu => 1,
        LoadOp::Lh | LoadOp::Lhu => 2,
        LoadOp::Lw => 4,
    }
}

fn store_width(op: StoreOp) -> u8 {
    match op {
        StoreOp::Sb => 1,
        StoreOp::Sh => 2,
        StoreOp::Sw => 4,
    }
}

/// Pre-decode the text section, fanning per-function slices over the
/// worker pool. Decoding is pure per word, so the parallel result is
/// trivially identical to the sequential one; function granularity
/// keeps slices cache-friendly and matches the analysis's own unit of
/// work. Small images skip the pool entirely.
fn predecode(prog: &Program, threads: usize) -> Vec<Result<Instr, String>> {
    let decode_range =
        |words: &[u32]| words.iter().map(|&w| decode(w).map_err(|e| format!("{e:?}"))).collect();
    if threads <= 1 || prog.text.len() < 1024 {
        return decode_range(&prog.text);
    }
    // Function starts (word indices), deduped and sorted; the gaps
    // between them are the per-function slices.
    let text_end = prog.text_base + 4 * prog.text.len() as u32;
    let mut cuts: Vec<usize> = prog
        .symbols
        .values()
        .filter(|&&a| a > prog.text_base && a < text_end && a.is_multiple_of(4))
        .map(|&a| ((a - prog.text_base) / 4) as usize)
        .collect();
    cuts.push(0);
    cuts.push(prog.text.len());
    cuts.sort_unstable();
    cuts.dedup();
    let ranges: Vec<(usize, usize)> = cuts.windows(2).map(|w| (w[0], w[1])).collect();
    let parts: Vec<Vec<Result<Instr, String>>> =
        parfait_parallel::parallel_map(threads, ranges, |_w, (s, e)| {
            decode_range(&prog.text[s..e])
        });
    parts.concat()
}

/// The shared driver behind the public entry points: the outer
/// fixpoint over the region content table (stores into globals may
/// feed loads analyzed earlier; content only grows clean → secret, so
/// it terminates). In sparse mode, call summaries persist across
/// passes and only footprint-invalidated calls re-run; in dense mode
/// every pass recomputes the world (the differential oracle).
fn lint_asm_driver(
    prog: &Program,
    entry: &str,
    threads: usize,
    reuse: bool,
) -> Result<Vec<Finding>, LintError> {
    let entry_addr = prog.address_of(entry).ok_or_else(|| LintError::NoEntry(entry.to_string()))?;
    let code = predecode(prog, threads);
    let mut lint = AsmLint::new(prog, code, reuse);
    loop {
        let epoch0 = lint.epoch;
        lint.findings.clear();
        lint.analyze_function(entry_addr, lint.entry_state())?;
        if lint.epoch == epoch0 {
            break;
        }
    }
    let metrics = parfait_telemetry::metrics::Metrics::global();
    metrics
        .counter_with("analyzer_fixpoint_iterations_total", &[("layer", "asm")])
        .add(lint.fixpoint_iters);
    metrics.counter_with("analyzer_memo_hits_total", &[("layer", "asm")]).add(lint.memo_hits);
    let mut findings: Vec<Finding> = lint.findings.into_values().collect();
    findings.sort();
    findings.dedup();
    Ok(findings)
}

/// Run the assembly-layer constant-time analysis on an assembled
/// firmware image, starting from the `entry` symbol with the Parfait
/// handler ABI (`a0` = secret state, `a1` = public command, `a2` =
/// response buffer).
///
/// Returns the sorted findings; [`LintError`] when control flow cannot
/// be recovered (indirect jumps, recursion, undecodable words).
pub fn lint_asm(prog: &Program, entry: &str) -> Result<Vec<Finding>, LintError> {
    lint_asm_driver(prog, entry, 1, true)
}

/// [`lint_asm`] with the pure per-function pre-pass fanned over
/// `threads` workers (0 = [`parfait_parallel::default_threads`]).
/// Findings are byte-identical to [`lint_asm`] and [`lint_asm_dense`]
/// at every thread count.
pub fn lint_asm_threaded(
    prog: &Program,
    entry: &str,
    threads: usize,
) -> Result<Vec<Finding>, LintError> {
    let threads = if threads == 0 { parfait_parallel::default_threads() } else { threads };
    lint_asm_driver(prog, entry, threads, true)
}

/// The dense oracle: every pass of the outer fixpoint recomputes every
/// function (call summaries are reused only within the epoch that
/// recorded them, which is the pre-sparse behavior). Kept for the
/// differential suite that proves the sparse driver byte-identical;
/// production callers want [`lint_asm`].
pub fn lint_asm_dense(prog: &Program, entry: &str) -> Result<Vec<Finding>, LintError> {
    lint_asm_driver(prog, entry, 1, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfait_littlec::codegen::OptLevel;

    fn lint_src(src: &str, opt: OptLevel) -> Vec<Finding> {
        let program = parfait_littlec::frontend(src).unwrap();
        let asm = parfait_littlec::compile(&program, opt).unwrap();
        let prog = parfait_riscv::assemble(&asm).unwrap();
        let sparse = lint_asm(&prog, "handle").unwrap();
        // Every test doubles as a sparse-vs-dense differential check.
        let dense = lint_asm_dense(&prog, "handle").unwrap();
        assert_eq!(sparse, dense, "sparse and dense asm lint disagree");
        sparse
    }

    fn rules(findings: &[Finding]) -> Vec<RuleId> {
        let mut r: Vec<RuleId> = findings.iter().map(|f| f.rule).collect();
        r.sort();
        r.dedup();
        r
    }

    #[test]
    fn masked_select_is_clean_at_both_opt_levels() {
        let src = "void handle(u8* state, u8* cmd, u8* resp) {
            u32 s = state[0];
            u32 m = 0 - (cmd[0] & 1);
            resp[0] = (u8)(s & m);
        }";
        for opt in [OptLevel::O0, OptLevel::O2] {
            let f = lint_src(src, opt);
            assert!(f.is_empty(), "{opt:?}: {f:#?}");
        }
    }

    #[test]
    fn secret_branch_fires_with_function_name() {
        let f = lint_src(
            "void handle(u8* state, u8* cmd, u8* resp) {
                if (state[0]) { resp[0] = 1; }
            }",
            OptLevel::O2,
        );
        assert_eq!(rules(&f), vec![RuleId::SecretBranch]);
        assert_eq!(f[0].diagnostic.span.function, "handle");
        assert_eq!(f[0].layer, Layer::Asm);
    }

    #[test]
    fn secret_index_into_global_table_fires() {
        let f = lint_src(
            "const u8 T[4] = {7, 7, 7, 7};
            void handle(u8* state, u8* cmd, u8* resp) {
                resp[0] = T[state[0] & 3];
            }",
            OptLevel::O2,
        );
        assert_eq!(rules(&f), vec![RuleId::SecretIndex]);
    }

    #[test]
    fn public_index_into_global_table_is_clean() {
        let f = lint_src(
            "const u8 T[4] = {7, 7, 7, 7};
            void handle(u8* state, u8* cmd, u8* resp) {
                u32 i = 0;
                u32 acc = state[0];
                while (i < 4) { acc = acc + T[i]; i = i + 1; }
                resp[0] = (u8)acc;
            }",
            OptLevel::O2,
        );
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn division_by_secret_fires_through_spills() {
        // Enough live values to force register pressure at -O0.
        let f = lint_src(
            "void handle(u8* state, u8* cmd, u8* resp) {
                u32 s = state[0];
                resp[0] = (u8)(100 / (s + 1));
            }",
            OptLevel::O0,
        );
        assert_eq!(rules(&f), vec![RuleId::SecretLatency]);
    }

    #[test]
    fn taint_survives_call_and_stack_roundtrip() {
        let f = lint_src(
            "u32 pick(u8* p) { return p[0]; }
            void handle(u8* state, u8* cmd, u8* resp) {
                u32 buf[2];
                buf[0] = pick(state);
                buf[1] = pick(cmd);
                if (buf[0]) { resp[0] = 1; }
            }",
            OptLevel::O2,
        );
        assert_eq!(rules(&f), vec![RuleId::SecretBranch]);
    }

    #[test]
    fn global_taint_feeds_an_earlier_load_across_passes() {
        // `spill` writes a secret into a global that `use_it` read as
        // clean on the first pass — the cross-pass invalidation must
        // re-analyze `use_it` (its footprint includes the global) and
        // the branch must fire.
        let f = lint_src(
            "static u8 G[4];
            u32 use_it(u8* cmd) { return G[0] + cmd[0]; }
            void spill(u8* state) { G[0] = state[0]; }
            void handle(u8* state, u8* cmd, u8* resp) {
                u32 a = use_it(cmd);
                spill(state);
                u32 b = use_it(cmd);
                if (b) { resp[0] = (u8)a; }
            }",
            OptLevel::O2,
        );
        assert_eq!(rules(&f), vec![RuleId::SecretBranch]);
    }

    #[test]
    fn threaded_predecode_matches_sequential_findings() {
        let src = "const u8 T[4] = {7, 7, 7, 7};
            void handle(u8* state, u8* cmd, u8* resp) {
                resp[0] = T[state[0] & 3];
            }";
        let program = parfait_littlec::frontend(src).unwrap();
        let asm = parfait_littlec::compile(&program, OptLevel::O2).unwrap();
        let prog = parfait_riscv::assemble(&asm).unwrap();
        let seq = lint_asm(&prog, "handle").unwrap();
        for threads in [2, 8] {
            assert_eq!(lint_asm_threaded(&prog, "handle", threads).unwrap(), seq, "{threads}");
        }
    }

    /// Compile, apply an asm-level patch (the adversary's codegen-fault
    /// shape), assemble, lint.
    fn lint_patched(
        src: &str,
        opt: OptLevel,
        patch: impl FnOnce(String) -> String,
    ) -> Vec<Finding> {
        let program = parfait_littlec::frontend(src).unwrap();
        let asm = patch(parfait_littlec::compile(&program, opt).unwrap());
        let prog = parfait_riscv::assemble(&asm).unwrap();
        let sparse = lint_asm(&prog, "handle").unwrap();
        let dense = lint_asm_dense(&prog, "handle").unwrap();
        assert_eq!(sparse, dense, "sparse and dense asm lint disagree");
        sparse
    }

    const ABI_SRC: &str = "void handle(u8* state, u8* cmd, u8* resp) {
        resp[0] = (u8)(state[0] & cmd[0] & 0);
    }";

    #[test]
    fn callee_saved_clobber_fires_at_the_return_point() {
        // The pure codegen fault DESIGN.md §12 called unkillable: grab
        // an s-register as scratch without saving it. Output-identical,
        // timing-identical — only the ABI contract is broken.
        for opt in [OptLevel::O0, OptLevel::O2] {
            let f = lint_patched(ABI_SRC, opt, |asm| {
                asm.replacen("handle:\n", "handle:\n    li s3, 42\n", 1)
            });
            assert_eq!(rules(&f), vec![RuleId::CalleeSaved], "{opt:?}");
            assert!(
                f[0].diagnostic.message.contains("`s3`"),
                "finding should name the register: {f:#?}"
            );
            assert_eq!(f[0].rule.id(), "CT-ABI");
        }
    }

    #[test]
    fn saved_and_restored_s_register_is_clean() {
        // The conforming version of the same clobber: spill, scratch,
        // reload. The byte-precise stack model reconstructs the entry
        // value, so the return-point comparison passes.
        let f = lint_patched(ABI_SRC, OptLevel::O2, |asm| {
            asm.replacen(
                "handle:\n",
                "handle:\n    addi sp, sp, -4\n    sw s3, 0(sp)\n    li s3, 42\n    \
                 lw s3, 0(sp)\n    addi sp, sp, 4\n",
                1,
            )
        });
        assert!(f.is_empty(), "{f:#?}");
    }

    #[test]
    fn clobbered_ra_fires() {
        let f = lint_patched(ABI_SRC, OptLevel::O2, |asm| {
            asm.replacen("handle:\n", "handle:\n    li ra, 0\n", 1)
        });
        assert_eq!(rules(&f), vec![RuleId::CalleeSaved]);
        assert!(f[0].diagnostic.message.contains("`ra`"), "{f:#?}");
    }

    #[test]
    fn missing_entry_is_an_error() {
        let program = parfait_littlec::frontend("u32 f() { return 1; }").unwrap();
        let asm = parfait_littlec::compile(&program, OptLevel::O0).unwrap();
        let prog = parfait_riscv::assemble(&asm).unwrap();
        assert!(matches!(lint_asm(&prog, "handle"), Err(LintError::NoEntry(_))));
    }
}
