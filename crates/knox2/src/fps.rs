//! The functional-physical simulation checker.
//!
//! IPR at the circuit level demands that the real world (the SoC with
//! its secret persistent state) and the ideal world (the emulator's
//! dummy-state SoC with query access to the spec) are observationally
//! equivalent *at the wire level, at every cycle*. The checker drives
//! both circuits with identical inputs — a script mixing well-formed
//! driver commands, adversarial garbage, and idle time — and compares
//! the output wires cycle by cycle. Any difference in data **or
//! timing** is a counterexample: correctness bugs, I/O protocol bugs,
//! compiler-introduced timing leaks, and hardware-level variable-latency
//! leaks all surface here (paper §7.2's bug catalog).
//!
//! In addition the checker validates the fig. 9 refinement relation at
//! quiescent points (the active FRAM slot must equal the ideal spec
//! state) and requires the taint tracker to be silent (no secret data
//! reaching branch conditions, memory addresses, jump targets, or
//! variable-latency functional units).

use std::time::{Duration, Instant};

use parfait_riscv::model::AsmStateMachine;
use parfait_rtl::{Circuit, RingTrace, WireIn};
use parfait_soc::Soc;
use parfait_telemetry::Telemetry;

use crate::emulator::CircuitEmulator;

/// A whole-command byte-level specification machine — the assembly
/// level of abstraction, which serves as the spec for hardware
/// verification (§5.3).
///
/// Specs are `Sync`: the parallel checker shares one spec by reference
/// across emulator snapshots on worker threads.
pub trait ByteSpec: Sync {
    /// One whole-command step.
    fn step(&self, state: &[u8], cmd: &[u8]) -> (Vec<u8>, Vec<u8>);

    /// Drain the (hits, misses) counters of any internal whole-command
    /// memo, so the checker can flush them into the metrics registry.
    /// Specs without a memo report nothing.
    fn take_memo_stats(&self) -> (u64, u64) {
        (0, 0)
    }
}

impl ByteSpec for AsmStateMachine {
    fn step(&self, state: &[u8], cmd: &[u8]) -> (Vec<u8>, Vec<u8>) {
        AsmStateMachine::step(self, state, cmd)
            .unwrap_or_else(|e| panic!("assembly-level spec failed: {e}"))
    }

    fn take_memo_stats(&self) -> (u64, u64) {
        AsmStateMachine::take_memo_stats(self)
    }
}

/// One operation of the adversarial host script.
#[derive(Clone, Debug)]
pub enum HostOp {
    /// A well-formed command: send all bytes, then read the response.
    Command(Vec<u8>),
    /// Raw bytes pushed at the device (possibly a partial or malformed
    /// command); no response is read.
    Garbage(Vec<u8>),
    /// Idle cycles with no host activity.
    Idle(u64),
}

/// Configuration of an FPS run.
#[derive(Clone, Debug)]
pub struct FpsConfig {
    /// Command size (the device consumes input in these units).
    pub command_size: usize,
    /// Response size (bytes produced per completed command).
    pub response_size: usize,
    /// Per-byte handshake timeout in cycles.
    pub timeout: u64,
    /// Size of the encoded application state (for the refinement check).
    pub state_size: usize,
}

impl FpsConfig {
    /// The last-resort per-byte handshake timeout, used only when no
    /// certified cycle bound is available (e.g. the uncached scaling
    /// benchmarks, which run FPS without the pipeline): generous enough
    /// for the slowest operation in the evaluation (a full ECDSA
    /// signature on the multi-cycle PicoRV32) with an order of
    /// magnitude to spare. Pipeline runs derive their timeout from the
    /// `bound` stage's certified WCET instead — see
    /// [`Self::resolve_timeout`].
    pub const BASE_TIMEOUT: u64 = 8_000_000_000;

    /// Parse a `PARFAIT_TIMEOUT` value (cycles; `_` separators
    /// allowed). `None` — the variable is unset — yields
    /// [`Self::BASE_TIMEOUT`]. The grammar and error message live in
    /// [`parfait_telemetry::env`] with the other knobs.
    pub fn parse_timeout(raw: Option<&str>) -> Result<u64, String> {
        Ok(parfait_telemetry::env::parse_timeout(raw)?.unwrap_or(Self::BASE_TIMEOUT))
    }

    /// The per-byte handshake timeout a certified worst-case cycle
    /// bound justifies: the host never waits longer than one full
    /// command computation between handshake steps, so twice the WCET
    /// plus a fixed I/O slack can only fire on a genuinely hung (or
    /// non-terminating, or mis-certified) device.
    pub fn timeout_from_wcet(wcet_cycles: u64) -> u64 {
        wcet_cycles.saturating_mul(2).saturating_add(4096)
    }

    /// Resolve the FPS handshake timeout, in precedence order:
    ///
    /// 1. `PARFAIT_TIMEOUT` — an explicit operator override; a
    ///    malformed value is a hard error (stderr + exit 2, matching
    ///    the bench binaries' `--threads`/`--json` style), because
    ///    exiting loudly beats a multi-hour verification run with a
    ///    silently wrong timeout;
    /// 2. the certified worst-case cycle bound, when the caller has one
    ///    (via [`Self::timeout_from_wcet`]);
    /// 3. [`Self::BASE_TIMEOUT`].
    pub fn resolve_timeout(derived_wcet: Option<u64>) -> u64 {
        let raw = std::env::var_os("PARFAIT_TIMEOUT").map(|v| v.to_string_lossy().into_owned());
        match parfait_telemetry::env::parse_timeout(raw.as_deref()) {
            Ok(Some(n)) => n,
            Ok(None) => derived_wcet.map(Self::timeout_from_wcet).unwrap_or(Self::BASE_TIMEOUT),
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }

    /// [`Self::resolve_timeout`] without a certified bound.
    pub fn default_timeout() -> u64 {
        Self::resolve_timeout(None)
    }
}

/// Where the two worlds diverged, or another failure.
///
/// `PartialEq` supports the differential tests that prove the parallel
/// checker reports byte-identical errors to the sequential oracle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FpsError {
    /// Wire outputs differed at a cycle.
    TraceDivergence {
        /// Cycle index (since the start of the run).
        cycle: u64,
        /// Script operation being executed.
        op_index: usize,
        /// Real-world output wires.
        real: (bool, bool, u8),
        /// Ideal-world output wires.
        ideal: (bool, bool, u8),
        /// Program counter of the real core at the divergence — the
        /// paper's §8.1 debugging aid ("Knox2 can print out
        /// user-requested debugging information such as the program
        /// counter"); look this address up in the assembly listing to
        /// find the non-constant-time code.
        real_pc: u32,
        /// Program counter of the emulator's core at the divergence.
        ideal_pc: u32,
    },
    /// A circuit faulted (illegal instruction, bus error, ...).
    Fault {
        /// Which world faulted.
        world: &'static str,
        /// Description.
        detail: String,
    },
    /// The host timed out (device hung — itself a timing divergence if
    /// only one world hangs, but reported distinctly when both do).
    Timeout {
        /// Operation index.
        op_index: usize,
    },
    /// The refinement relation of fig. 9 failed at a quiescent point.
    RefinementViolation {
        /// Operation index.
        op_index: usize,
        /// Active state read from the real device's FRAM.
        real_state: Vec<u8>,
        /// Ideal-world spec state.
        spec_state: Vec<u8>,
    },
    /// Secret data reached processor control state (taint report).
    Leak {
        /// Human-readable leak events.
        events: Vec<String>,
    },
    /// The wire-level response bytes differ from the spec's response —
    /// the I/O path mis-encodes (paper §7.2: "I/O code bug in system
    /// software").
    ResponseMismatch {
        /// Which completed command (0-based).
        command_index: usize,
        /// Bytes observed on the wire.
        wire: Vec<u8>,
        /// Bytes the specification produced.
        spec: Vec<u8>,
    },
}

impl std::fmt::Display for FpsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FpsError::TraceDivergence { cycle, op_index, real, ideal, real_pc, ideal_pc } => {
                write!(
                    f,
                    "wire traces diverge at cycle {cycle} (op {op_index}): real={real:?} \
                     ideal={ideal:?}; real pc={real_pc:#010x} ideal pc={ideal_pc:#010x} — \
                     check the assembly listing around these addresses"
                )
            }
            FpsError::Fault { world, detail } => write!(f, "{world} circuit fault: {detail}"),
            FpsError::Timeout { op_index } => write!(f, "host timeout at op {op_index}"),
            FpsError::RefinementViolation { op_index, .. } => {
                write!(f, "refinement relation violated after op {op_index}")
            }
            FpsError::Leak { events } => {
                write!(f, "secret data reached control state: {}", events.join("; "))
            }
            FpsError::ResponseMismatch { command_index, wire, spec } => write!(
                f,
                "response {command_index} differs from the spec: wire={wire:02x?} spec={spec:02x?}"
            ),
        }
    }
}

impl std::error::Error for FpsError {}

/// Statistics of a successful FPS run (Table 4's measurements).
#[derive(Clone, Debug, Default)]
pub struct FpsReport {
    /// Simulated cycles (both worlds advance together).
    pub cycles: u64,
    /// Wall-clock time of the check.
    pub wall: Duration,
    /// Aggregate busy time across all workers. Equal to `wall` for the
    /// sequential checker; for the parallel checker `cpu / wall` is the
    /// realized parallel efficiency.
    pub cpu: Duration,
    /// Commands verified.
    pub commands: usize,
    /// Spec queries the emulator made.
    pub spec_queries: u64,
}

impl FpsReport {
    /// Simulated circuit cycles per wall-clock second.
    pub fn cycles_per_second(&self) -> f64 {
        self.cycles as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Observability hooks for an FPS run: a telemetry handle plus the
/// heartbeat cadence. The default observer is disabled and adds no
/// work on the per-cycle hot path.
#[derive(Clone, Debug, Default)]
pub struct FpsObserver {
    /// Destination for spans, counters, gauges, and heartbeats.
    pub telemetry: Telemetry,
    /// Emit an `fps.heartbeat` progress event every this many simulated
    /// cycles (0 disables heartbeats).
    pub heartbeat_cycles: u64,
    /// Matrix-cell lane id carried by every heartbeat (and labeling the
    /// `fps_cycles_per_second` gauge), so a progress view can route
    /// concurrent cells to their own display lanes. 0 when unused.
    pub cell: u64,
}

/// An FPS failure together with the statistics accumulated up to the
/// failure, so a run that times out after millions of cycles still
/// reports how far it got and at what simulation rate.
#[derive(Debug)]
pub struct FpsFailure {
    /// What went wrong.
    pub error: FpsError,
    /// Cycles, wall time, commands, and spec queries up to the failure.
    pub partial: FpsReport,
}

impl std::fmt::Display for FpsFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} (after {} cycles, {} commands, {:.1?})",
            self.error, self.partial.cycles, self.partial.commands, self.partial.wall
        )
    }
}

impl std::error::Error for FpsFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// The lock-stepped pair of circuits. `pub(crate)` so the parallel
/// checker can run the exact same per-op machinery over forked
/// snapshots — observational identity with the oracle is by shared
/// code, not by re-implementation.
pub(crate) struct Dual<'a, 's> {
    pub(crate) real: &'a mut Soc,
    pub(crate) emu: &'a mut CircuitEmulator<'s>,
    /// Absolute cycle index; segment workers start from their base.
    pub(crate) cycle: u64,
    pub(crate) divergence: Option<Divergence>,
    /// Absolute completed-command count (base included).
    pub(crate) commands: usize,
    pub(crate) op_index: usize,
    pub(crate) tel: Telemetry,
    pub(crate) heartbeat_cycles: u64,
    pub(crate) next_heartbeat: u64,
    pub(crate) start: Instant,
    /// Which checker thread this pair runs on (0 = sequential/producer;
    /// heartbeats carry it so trace lanes separate per worker).
    pub(crate) worker: u64,
    /// Matrix-cell id from [`FpsObserver::cell`], carried on heartbeats.
    pub(crate) cell: u64,
    /// `fps_cycles_per_second{cell}` — updated at heartbeat cadence
    /// only, so the metrics registry and the progress view agree on one
    /// number without touching the per-cycle hot path.
    pub(crate) cps_gauge: parfait_telemetry::metrics::Gauge,
    /// Observable wires of both worlds over a sliding window
    /// (`PARFAIT_VCD_WINDOW` cycles), recorded only when a VCD dump was
    /// requested via `PARFAIT_VCD_DIR`.
    pub(crate) vcd: Option<(RingTrace, RingTrace)>,
}

pub(crate) struct Divergence {
    cycle: u64,
    real: (bool, bool, u8),
    ideal: (bool, bool, u8),
    real_pc: u32,
    ideal_pc: u32,
}

/// The VCD capture window: the most recent `PARFAIT_VCD_WINDOW` cycles
/// (default 2^16) are retained, so capture on multi-day runs holds a
/// bounded buffer instead of the whole execution. A malformed value is
/// a hard error (via [`parfait_telemetry::env`]).
pub(crate) fn vcd_window() -> usize {
    parfait_telemetry::env::vcd_window_loud()
}

impl<'a, 's> Dual<'a, 's> {
    /// A fresh pair over the given worlds, counting from the given
    /// bases (all zero for a whole-script sequential run).
    pub(crate) fn new(
        real: &'a mut Soc,
        emu: &'a mut CircuitEmulator<'s>,
        obs: &FpsObserver,
        cycle_base: u64,
        commands_base: usize,
        worker: u64,
        capture_vcd: bool,
    ) -> Self {
        let tel = obs.telemetry.clone();
        let next_heartbeat = if obs.heartbeat_cycles == 0 || !tel.enabled() {
            u64::MAX
        } else {
            cycle_base.saturating_add(obs.heartbeat_cycles)
        };
        let cps_gauge = parfait_telemetry::metrics::Metrics::global()
            .gauge_with("fps_cycles_per_second", &[("cell", &obs.cell.to_string())]);
        Dual {
            real,
            emu,
            cycle: cycle_base,
            divergence: None,
            commands: commands_base,
            op_index: 0,
            tel,
            heartbeat_cycles: obs.heartbeat_cycles,
            next_heartbeat,
            start: Instant::now(),
            worker,
            cell: obs.cell,
            cps_gauge,
            vcd: capture_vcd.then(|| {
                let w = vcd_window();
                (RingTrace::new(w), RingTrace::new(w))
            }),
        }
    }
}

impl Circuit for Dual<'_, '_> {
    fn set_input(&mut self, input: WireIn) {
        self.real.set_input(input);
        self.emu.set_input(input);
    }

    fn get_output(&self) -> parfait_rtl::WireOut {
        self.real.get_output()
    }

    fn tick(&mut self) {
        // Compare the observable wires *before* the edge, so a timing
        // divergence is caught at the first differing cycle.
        let r = self.real.get_output().observable();
        let i = self.emu.get_output().observable();
        if let Some((real_trace, ideal_trace)) = &mut self.vcd {
            real_trace.push(r);
            ideal_trace.push(i);
        }
        if r != i && self.divergence.is_none() {
            self.divergence = Some(Divergence {
                cycle: self.cycle,
                real: r,
                ideal: i,
                real_pc: self.real.core.pc(),
                ideal_pc: self.emu.soc.core.pc(),
            });
        }
        self.real.tick();
        self.emu.tick();
        self.cycle += 1;
        if self.cycle >= self.next_heartbeat {
            self.next_heartbeat = self.cycle.saturating_add(self.heartbeat_cycles.max(1));
            let rate = self.cycle as f64 / self.start.elapsed().as_secs_f64().max(1e-9);
            // The gauge and the heartbeat carry the same number, so the
            // metrics snapshot and the progress view never disagree.
            self.cps_gauge.set(rate);
            self.tel.progress(
                "fps.heartbeat",
                &[
                    ("cycles", self.cycle as f64),
                    ("cycles_per_s", rate),
                    ("commands", self.commands as f64),
                    ("op_index", self.op_index as f64),
                    ("worker", self.worker as f64),
                    ("cell", self.cell as f64),
                    ("real_pc", self.real.core.pc() as f64),
                    ("ideal_pc", self.emu.soc.core.pc() as f64),
                ],
            );
        }
    }

    fn cycles(&self) -> u64 {
        self.cycle
    }
}

/// Run the FPS check.
///
/// * `real` — the SoC with the secret initial state;
/// * `emu` — the emulator around a dummy-state SoC, holding the ideal
///   world's spec state;
/// * `project` — the developer's refinement relation (fig. 9) as a
///   projection from the real circuit to an encoded spec state;
/// * `script` — the adversarial host script.
pub fn check_fps(
    real: &mut Soc,
    emu: &mut CircuitEmulator<'_>,
    cfg: &FpsConfig,
    project: &dyn Fn(&Soc) -> Vec<u8>,
    script: &[HostOp],
) -> Result<FpsReport, FpsError> {
    check_fps_traced(real, emu, cfg, project, script, &FpsObserver::default()).map_err(|f| f.error)
}

/// [`check_fps`] with observability: spans per script op, counters for
/// spec queries and timeouts, periodic heartbeats, FIFO high-water
/// gauges, and — on failure — the partial [`FpsReport`] accumulated up
/// to that point.
///
/// When the `PARFAIT_VCD_DIR` environment variable is set, both worlds'
/// observable wires are recorded and a [`FpsError::TraceDivergence`]
/// failure writes a dual-scope VCD waveform into that directory.
pub fn check_fps_traced(
    real: &mut Soc,
    emu: &mut CircuitEmulator<'_>,
    cfg: &FpsConfig,
    project: &dyn Fn(&Soc) -> Vec<u8>,
    script: &[HostOp],
    obs: &FpsObserver,
) -> Result<FpsReport, FpsFailure> {
    let start = Instant::now();
    let tel = obs.telemetry.clone();
    let run_span = tel.span("fps.run");
    let vcd_dir = std::env::var_os("PARFAIT_VCD_DIR");
    let mut dual = Dual::new(real, emu, obs, 0, 0, 0, vcd_dir.is_some());
    dual.start = start;
    let mut wire_responses: Vec<Vec<u8>> = Vec::new();
    let outcome = run_ops(&mut dual, cfg, project, script, 0, &mut wire_responses)
        .and_then(|()| end_of_script_checks(dual.real, &dual.emu.spec_responses, &wire_responses));
    // The statistics are computed the same way on success and failure,
    // so an aborted run still reports how far it got.
    let report = FpsReport {
        cycles: dual.cycle,
        wall: start.elapsed(),
        cpu: start.elapsed(),
        commands: dual.commands,
        spec_queries: dual.emu.queries,
    };
    tel.count("fps.spec_queries", dual.emu.queries);
    tel.gauge_max("soc.real.rx_fifo_hwm", dual.real.rx_fifo.high_water() as u64);
    tel.gauge_max("soc.real.tx_fifo_hwm", dual.real.tx_fifo.high_water() as u64);
    tel.gauge_max("soc.ideal.rx_fifo_hwm", dual.emu.soc.rx_fifo.high_water() as u64);
    tel.gauge_max("soc.ideal.tx_fifo_hwm", dual.emu.soc.tx_fifo.high_water() as u64);
    tel.count("soc.real.instructions_retired", dual.real.instructions_retired());
    // Cycles accumulate in `dual` during the run (no per-cycle atomics)
    // and flush to the registry once here; the rate gauge gets a final
    // whole-run value so a snapshot after a fast run isn't stale.
    let metrics = parfait_telemetry::metrics::Metrics::global();
    metrics.counter("fps_cycles_total").add(dual.cycle);
    metrics.counter("fps_spec_queries_total").add(dual.emu.queries);
    flush_decode_stats(dual.real, &mut dual.emu.soc);
    flush_spec_memo_stats(dual.emu);
    metrics
        .gauge_with("fps_cycles_per_second", &[("cell", &obs.cell.to_string())])
        .set(report.cycles_per_second());
    drop(run_span);
    match outcome {
        Ok(()) => Ok(report),
        Err(error) => {
            report_failure(&tel, &error, dual.vcd.take());
            Err(FpsFailure { error, partial: report })
        }
    }
}

/// Drain both worlds' decode-cache hit/miss counters into the metrics
/// registry. Only the caller's worlds are flushed (never throwaway
/// forks), so the counts are deterministic for a given run and the
/// perf ratchet can key on them.
pub(crate) fn flush_decode_stats(real: &mut Soc, ideal: &mut Soc) {
    let (rh, rm) = real.take_decode_stats();
    let (ih, im) = ideal.take_decode_stats();
    let metrics = parfait_telemetry::metrics::Metrics::global();
    metrics.counter("decode_cache_hit").add(rh + ih);
    metrics.counter("decode_cache_miss").add(rm + im);
}

/// Drain the spec's whole-command memo counters into the metrics
/// registry (`spec_step_memo_total{outcome}`).
pub(crate) fn flush_spec_memo_stats(emu: &CircuitEmulator<'_>) {
    let (hits, misses) = emu.take_spec_memo_stats();
    let metrics = parfait_telemetry::metrics::Metrics::global();
    metrics.counter_with("spec_step_memo_total", &[("outcome", "hit")]).add(hits);
    metrics.counter_with("spec_step_memo_total", &[("outcome", "miss")]).add(misses);
}

/// Failure-path telemetry, shared by the sequential checker and the
/// parallel segment workers: the divergence progress event, the VCD
/// window dump into `PARFAIT_VCD_DIR`, and the failure counter.
pub(crate) fn report_failure(
    tel: &Telemetry,
    error: &FpsError,
    vcd: Option<(RingTrace, RingTrace)>,
) {
    if let FpsError::TraceDivergence { cycle, op_index, real_pc, ideal_pc, .. } = error {
        tel.progress(
            "fps.divergence",
            &[
                ("cycle", *cycle as f64),
                ("op_index", *op_index as f64),
                ("real_pc", *real_pc as f64),
                ("ideal_pc", *ideal_pc as f64),
            ],
        );
        if let (Some(dir), Some((real_ring, ideal_ring))) =
            (std::env::var_os("PARFAIT_VCD_DIR"), vcd)
        {
            let doc = parfait_rtl::vcd::dual_trace_to_vcd(
                "real",
                &real_ring.to_trace(),
                "ideal",
                &ideal_ring.to_trace(),
            );
            let dir = std::path::Path::new(&dir);
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("parfait: could not create VCD dir {}: {e}", dir.display());
            }
            let path = dir.join(format!("fps-divergence-cycle{cycle}.vcd"));
            if let Err(e) = std::fs::write(&path, doc) {
                eprintln!("parfait: could not write divergence VCD to {}: {e}", path.display());
            }
        }
    }
    tel.count("fps.failures", 1);
}

/// Drive one host operation against a circuit, mirroring the wire-level
/// protocol exactly: command/garbage bytes are interleaved with response
/// draining (the device answers after every `command_size`-th byte, and
/// its TX FIFO is finite, so a host that floods bytes across a command
/// boundary without reading would deadlock it). `pending_bytes` carries
/// the framing position across ops; completed responses are appended to
/// `wire_responses`.
///
/// This is the single source of truth for the I/O schedule: the
/// sequential checker drives the lock-stepped [`Dual`] with it, and the
/// parallel checker's pre-pass drives the real SoC alone with it —
/// which yields the identical schedule, because every host decision
/// depends only on the real world's output wires.
pub(crate) fn drive_op(
    c: &mut dyn Circuit,
    op: &HostOp,
    cfg: &FpsConfig,
    pending_bytes: &mut usize,
    wire_responses: &mut Vec<Vec<u8>>,
) -> Result<(), parfait_soc::host::HostTimeout> {
    match op {
        HostOp::Command(cmd) | HostOp::Garbage(cmd) => {
            for &b in cmd {
                parfait_soc::host::send_byte(c, b, cfg.timeout)?;
                *pending_bytes += 1;
                if *pending_bytes == cfg.command_size {
                    *pending_bytes = 0;
                    let r = parfait_soc::host::recv_bytes(c, cfg.response_size, cfg.timeout)?;
                    wire_responses.push(r);
                }
            }
            Ok(())
        }
        HostOp::Idle(n) => {
            parfait_soc::host::idle(c, *n);
            Ok(())
        }
    }
}

/// Drive a slice of script ops against the lock-stepped pair, returning
/// the first failure. `op_base` is the absolute index of `ops[0]` in the
/// whole script, so errors from a parallel segment report the same
/// indices as the sequential oracle. The slice must start at a quiescent
/// point (framing-aligned, `pending_bytes == 0`), which every segment
/// boundary is by construction.
pub(crate) fn run_ops(
    dual: &mut Dual<'_, '_>,
    cfg: &FpsConfig,
    project: &dyn Fn(&Soc) -> Vec<u8>,
    ops: &[HostOp],
    op_base: usize,
    wire_responses: &mut Vec<Vec<u8>>,
) -> Result<(), FpsError> {
    // The device consumes input in fixed-size commands and answers every
    // completed one; track framing so adversarial partial traffic keeps
    // the script aligned (responses are always drained).
    let mut pending_bytes = 0usize;
    for (i, op) in ops.iter().enumerate() {
        let op_index = op_base + i;
        dual.op_index = op_index;
        let _op_span = dual.tel.span(match op {
            HostOp::Command(_) => "fps.command",
            HostOp::Garbage(_) => "fps.garbage",
            HostOp::Idle(_) => "fps.idle",
        });
        if matches!(op, HostOp::Command(_)) {
            dual.commands += 1;
        }
        let io_result = drive_op(&mut *dual, op, cfg, &mut pending_bytes, wire_responses);
        // Any wire divergence takes precedence over secondary symptoms.
        if let Some(d) = dual.divergence.take() {
            return Err(FpsError::TraceDivergence {
                cycle: d.cycle,
                op_index,
                real: d.real,
                ideal: d.ideal,
                real_pc: d.real_pc,
                ideal_pc: d.ideal_pc,
            });
        }
        if let Some(f) = dual.real.fault() {
            return Err(FpsError::Fault { world: "real", detail: f });
        }
        if let Some(f) = dual.emu.soc.fault() {
            return Err(FpsError::Fault { world: "ideal", detail: f });
        }
        if io_result.is_err() {
            dual.tel.count("fps.timeouts", 1);
            return Err(FpsError::Timeout { op_index });
        }
        // Refinement relation at the quiescent point after a command.
        if pending_bytes == 0 && matches!(op, HostOp::Command(_)) {
            let real_state = project(dual.real);
            if real_state != dual.emu.spec_state {
                return Err(FpsError::RefinementViolation {
                    op_index,
                    real_state,
                    spec_state: dual.emu.spec_state.clone(),
                });
            }
        }
    }
    Ok(())
}

/// The whole-script checks that run only after every op passed:
/// functional binding of the wire responses to the spec's responses, and
/// taint silence of the real core.
pub(crate) fn end_of_script_checks(
    real: &Soc,
    spec_responses: &[Vec<u8>],
    wire_responses: &[Vec<u8>],
) -> Result<(), FpsError> {
    // Functional binding: every wire response must equal the spec's
    // response for the corresponding command.
    for (i, wire) in wire_responses.iter().enumerate() {
        match spec_responses.get(i) {
            Some(spec) if spec == wire => {}
            Some(spec) => {
                return Err(FpsError::ResponseMismatch {
                    command_index: i,
                    wire: wire.clone(),
                    spec: spec.clone(),
                })
            }
            None => {
                return Err(FpsError::ResponseMismatch {
                    command_index: i,
                    wire: wire.clone(),
                    spec: Vec::new(),
                })
            }
        }
    }
    // Taint silence: no secret may have reached control state. Each
    // event is classified in the vocabulary of the core's leakage
    // contract, so the diagnostic names the violated clause rather
    // than just the raw event kind.
    let leaks = real.core.leaks();
    if !leaks.is_empty() {
        let events = leaks
            .iter()
            .take(8)
            .map(|l| {
                format!(
                    "{:?} at pc={:#010x} (cycle {}): {}",
                    l.kind,
                    l.pc,
                    l.cycle,
                    parfait_cores::contract::leak_term(l.kind, l.class),
                )
            })
            .collect();
        return Err(FpsError::Leak { events });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeout_unset_is_the_base_default() {
        assert_eq!(FpsConfig::parse_timeout(None).unwrap(), FpsConfig::BASE_TIMEOUT);
    }

    #[test]
    fn timeout_parses_plain_and_underscored_values() {
        assert_eq!(FpsConfig::parse_timeout(Some("12345")).unwrap(), 12345);
        assert_eq!(FpsConfig::parse_timeout(Some("8_000_000_000")).unwrap(), 8_000_000_000);
        assert_eq!(FpsConfig::parse_timeout(Some(" 42 ")).unwrap(), 42);
    }

    #[test]
    fn timeout_rejects_garbage_zero_and_negative() {
        assert!(FpsConfig::parse_timeout(Some("eight")).is_err());
        assert!(FpsConfig::parse_timeout(Some("0")).is_err());
        assert!(FpsConfig::parse_timeout(Some("-1")).is_err());
        assert!(FpsConfig::parse_timeout(Some("")).is_err());
        // The error names the variable so the fix is obvious.
        let e = FpsConfig::parse_timeout(Some("1e9")).unwrap_err();
        assert!(e.contains("PARFAIT_TIMEOUT"), "{e}");
    }

    #[test]
    fn wcet_derived_timeout_covers_a_full_command_with_margin() {
        assert_eq!(FpsConfig::timeout_from_wcet(1_000_000), 2_004_096);
        // Saturates instead of wrapping on absurd bounds.
        assert_eq!(FpsConfig::timeout_from_wcet(u64::MAX), u64::MAX);
        // A derived bound always beats the last-resort constant for
        // realistic firmware (every certified WCET is far below it).
        assert!(FpsConfig::timeout_from_wcet(100_000_000) < FpsConfig::BASE_TIMEOUT);
    }
}
