//! parfait-knox2 — hardware verification for HSM SoCs (§5).
//!
//! Knox2 proves IPR between the assembly-level `handle` model (the spec
//! for this level) and the complete SoC, by **functional-physical
//! simulation**. This crate reproduces that machinery executably:
//!
//! * [`driver`] — the wire-level driver (§5.2): the I/O protocol a
//!   well-behaved client uses, built from the three circuit-level
//!   primitives `set_input` / `get_output` / `tick`;
//! * [`emulator`] — the circuit emulator template (§5.3): a fresh SoC
//!   instance running on *dummy* persistent state; it watches for the
//!   start of `handle`, reads the (public) command bytes out of its
//!   circuit's RAM, queries the specification, and injects the response
//!   at the commit point of `store_state`;
//! * [`fps`] — the checker: drives the real SoC and the emulator's SoC
//!   with identical wire inputs and demands **cycle-exact equality** of
//!   the output wires. Since the emulator never sees the real secrets,
//!   equality implies both correctness and non-leakage (including
//!   timing). The checker also validates the fig. 9 refinement relation
//!   at quiescent points and reports any taint flow into control state;
//! * [`parallel`] — the parallel checker: a cheap pre-pass over the
//!   real SoC alone cuts the script into snapshot-delimited segments,
//!   and worker threads re-run the full dual-world check per segment,
//!   reporting errors byte-identical to the sequential checker's;
//! * [`sync`] — assembly-circuit synchronization (§5.4): steps the
//!   Riscette ISA machine instruction-by-instruction against the
//!   cycle-level core, checking the developer-supplied state
//!   correspondence (fig. 10) at the sync points of fig. 11. This keeps
//!   each equivalence check small instead of one giant end-of-execution
//!   comparison — and catches microarchitectural bugs (pipeline
//!   hazards) that whole-command comparison would attribute to the
//!   wrong place.

#![forbid(unsafe_code)]

pub mod driver;
pub mod emulator;
pub mod fps;
pub mod parallel;
pub mod script;
pub mod sync;

pub use driver::WireDriver;
pub use emulator::CircuitEmulator;
pub use fps::{
    check_fps, check_fps_traced, ByteSpec, FpsConfig, FpsError, FpsFailure, FpsObserver, FpsReport,
    HostOp,
};
pub use parallel::check_fps_parallel;
pub use script::{adversarial_script, smoke_script};
pub use sync::{
    sync_handle_execution, sync_handle_execution_traced, SyncError, SyncPolicy, SyncStats, SyncWhen,
};
