//! Standard adversarial host scripts.
//!
//! The FPS checker is only as strong as the traces it explores. This
//! module packages the script shapes the verification suites use: a
//! well-behaved session, framing attacks (partial commands completed by
//! garbage), full-size invalid commands, and idle probing. Scripts are
//! deterministic given a seed, so failures reproduce.

use crate::fps::HostOp;

/// A tiny deterministic PRNG (xorshift64*), so scripts reproduce without
/// pulling a dependency into the verification core.
#[derive(Clone, Debug)]
pub struct ScriptRng(u64);

impl ScriptRng {
    /// Seeded constructor; the seed is mixed so that nearby seeds give
    /// unrelated streams (and zero is mapped away).
    pub fn new(seed: u64) -> ScriptRng {
        ScriptRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    /// Next pseudo-random 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn byte(&mut self) -> u8 {
        (self.next_u64() >> 32) as u8
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// Build a mixed adversarial script around a set of well-formed
/// commands: each command is interleaved with garbage (full-size invalid
/// commands, partial frames later completed) and idle gaps.
pub fn adversarial_script(commands: &[Vec<u8>], command_size: usize, seed: u64) -> Vec<HostOp> {
    let mut rng = ScriptRng::new(seed);
    let mut ops = Vec::new();
    for cmd in commands {
        assert_eq!(cmd.len(), command_size, "well-formed commands only");
        match rng.below(4) {
            0 => {
                // Full-size invalid command first.
                let mut bad = vec![0u8; command_size];
                for b in &mut bad {
                    *b = rng.byte();
                }
                bad[0] |= 0x80; // tags >= 0x80 are never valid in our apps
                ops.push(HostOp::Command(bad));
            }
            1 => {
                // Partial frame + completion (framing attack).
                let cut = 1 + rng.below(command_size as u64 - 1) as usize;
                let mut junk = vec![0u8; command_size];
                for b in &mut junk {
                    *b = rng.byte();
                }
                ops.push(HostOp::Garbage(junk[..cut].to_vec()));
                ops.push(HostOp::Garbage(junk[cut..].to_vec()));
            }
            2 => ops.push(HostOp::Idle(1 + rng.below(500))),
            _ => {}
        }
        ops.push(HostOp::Command(cmd.clone()));
    }
    ops.push(HostOp::Idle(100));
    ops
}

/// The minimal smoke script: one command and one invalid command.
pub fn smoke_script(command: Vec<u8>, command_size: usize) -> Vec<HostOp> {
    vec![HostOp::Command(command), HostOp::Command(vec![0xEE; command_size])]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripts_are_deterministic() {
        let cmds = vec![vec![1u8; 5], vec![2u8; 5]];
        let a = adversarial_script(&cmds, 5, 42);
        let b = adversarial_script(&cmds, 5, 42);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = adversarial_script(&cmds, 5, 43);
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn every_wellformed_command_appears() {
        let cmds = vec![vec![1u8; 5], vec![2u8; 5], vec![3u8; 5]];
        let ops = adversarial_script(&cmds, 5, 7);
        let sent: Vec<&Vec<u8>> = ops
            .iter()
            .filter_map(|o| match o {
                HostOp::Command(c) => Some(c),
                _ => None,
            })
            .collect();
        for c in &cmds {
            assert!(sent.contains(&c));
        }
    }

    #[test]
    fn partial_frames_always_complete() {
        // The generator must keep the stream framed: total garbage bytes
        // per attack sum to a whole command.
        for seed in 1..20 {
            let cmds = vec![vec![1u8; 33]];
            let ops = adversarial_script(&cmds, 33, seed);
            let total: usize = ops
                .iter()
                .map(|o| match o {
                    HostOp::Command(c) | HostOp::Garbage(c) => c.len(),
                    HostOp::Idle(_) => 0,
                })
                .sum();
            assert_eq!(total % 33, 0, "seed {seed}");
        }
    }
}
