//! Assembly-circuit synchronization (paper §5.4).
//!
//! While the SoC executes `handle`, the checker steps the Riscette
//! ISA-level machine instruction-by-instruction alongside the
//! cycle-level core. At each sync point it applies the platform mapping
//! — architectural registers correspond index-wise to the core's
//! register file, pointers address the same flat memory, and the "next
//! RISC-V instruction" signal is the core's decode-stage instruction
//! (fig. 10) — and checks the states component-wise. This replaces one
//! huge end-of-execution equivalence query with many small ones
//! (fig. 11), and it catches microarchitectural bugs ("pipeline hazard
//! in CPU implementation", §7.2) at the precise instruction where the
//! ISA and the hardware disagree.

use parfait_riscv::decode::decode;
use parfait_riscv::isa::Instr;
use parfait_riscv::machine::Machine;
use parfait_rtl::Circuit;
use parfait_soc::{Soc, FRAM_BASE, FRAM_SIZE, RAM_BASE, RAM_SIZE, ROM_BASE};
use parfait_telemetry::Telemetry;

/// When to perform a register-file synchronization check.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncWhen {
    /// At every retired instruction (most precise, most checks).
    EveryInstruction,
    /// At control-flow and memory instructions (the fig. 11 policy).
    ControlAndMem,
    /// Never during execution; only the final state is compared
    /// (the monolithic pre-Knox2 strategy, for the ablation bench).
    Never,
}

/// Synchronization policy.
#[derive(Clone, Copy, Debug)]
pub struct SyncPolicy {
    /// When to compare register files.
    pub registers: SyncWhen,
    /// Cap on instructions to execute (safety fuel).
    pub max_instructions: u64,
}

impl Default for SyncPolicy {
    fn default() -> Self {
        SyncPolicy { registers: SyncWhen::ControlAndMem, max_instructions: 200_000_000 }
    }
}

/// Statistics from a synchronized execution.
#[derive(Clone, Debug, Default)]
pub struct SyncStats {
    /// Instructions executed by both machines.
    pub instructions: u64,
    /// SoC cycles consumed.
    pub cycles: u64,
    /// Register-file comparisons performed.
    pub sync_points: u64,
    /// Individual component equalities proven (register compares).
    pub component_checks: u64,
}

/// A synchronization failure, with enough context to debug (the paper's
/// development-cycle story in §8.1).
#[derive(Debug)]
pub enum SyncError {
    /// The core and the ISA machine disagree about the next instruction.
    InstructionMismatch {
        /// Instruction index.
        index: u64,
        /// PC where they diverged.
        pc: u32,
        /// What the hardware retired.
        hardware: u32,
        /// What the ISA model expected to execute.
        isa: u32,
    },
    /// A register differs at a sync point.
    RegisterMismatch {
        /// Instruction index.
        index: u64,
        /// PC of the just-retired instruction.
        pc: u32,
        /// Register number.
        reg: usize,
        /// Hardware value.
        hardware: u32,
        /// ISA value.
        isa: u32,
    },
    /// The ISA machine trapped.
    IsaTrap(String),
    /// The SoC faulted.
    SocFault(String),
    /// Fuel exhausted before `handle` returned.
    OutOfFuel,
}

impl std::fmt::Display for SyncError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncError::InstructionMismatch { index, pc, hardware, isa } => write!(
                f,
                "instruction {index}: at pc={pc:#010x} hardware retired {hardware:#010x} but ISA expects {isa:#010x}"
            ),
            SyncError::RegisterMismatch { index, pc, reg, hardware, isa } => write!(
                f,
                "instruction {index} (pc={pc:#010x}): x{reg} differs, hardware={hardware:#010x} isa={isa:#010x}"
            ),
            SyncError::IsaTrap(e) => write!(f, "ISA machine trapped: {e}"),
            SyncError::SocFault(e) => write!(f, "SoC faulted: {e}"),
            SyncError::OutOfFuel => write!(f, "synchronization fuel exhausted"),
        }
    }
}

impl std::error::Error for SyncError {}

/// Whether this instruction class is a fig. 11 sync point.
fn is_sync_point(i: Instr) -> bool {
    matches!(
        i,
        Instr::Branch { .. }
            | Instr::Jal { .. }
            | Instr::Jalr { .. }
            | Instr::Load { .. }
            | Instr::Store { .. }
    )
}

/// Instruction classes reported by the per-class sync telemetry.
const SYNC_CLASS_NAMES: [&str; 6] = ["branch", "jal", "jalr", "load", "store", "other"];

/// Index of an instruction's class in [`SYNC_CLASS_NAMES`].
fn instr_class(i: Instr) -> usize {
    match i {
        Instr::Branch { .. } => 0,
        Instr::Jal { .. } => 1,
        Instr::Jalr { .. } => 2,
        Instr::Load { .. } => 3,
        Instr::Store { .. } => 4,
        _ => 5,
    }
}

/// Build an ISA machine mirroring the SoC's current architectural state
/// (the fig. 10 register and pointer mapping: registers map index-wise;
/// pointers map to the identical flat addresses).
pub fn snapshot_isa_machine(soc: &Soc) -> Machine {
    let mut m = Machine::new();
    for (i, w) in soc.core.regs().iter().enumerate() {
        m.regs[i] = w.v;
    }
    m.pc = soc.core.instr_in_decode().map(|(_, pc)| pc).unwrap_or_else(|| soc.core.pc());
    // Copy the memories at their mapped addresses.
    m.mem.store_bytes(ROM_BASE, &soc.rom.dump_bytes(0, soc.rom.len_bytes()));
    m.mem.store_bytes(RAM_BASE, &soc.ram.dump_bytes(0, RAM_SIZE as usize));
    m.mem.store_bytes(FRAM_BASE, &soc.fram.dump_bytes(0, FRAM_SIZE as usize));
    m
}

/// Run the SoC until the core is about to execute the instruction at
/// `addr` (it is in the decode stage). Returns the cycles consumed.
pub fn run_until_decode(soc: &mut Soc, addr: u32, max_cycles: u64) -> Result<u64, SyncError> {
    let mut n = 0;
    loop {
        if let Some((_, pc)) = soc.core.instr_in_decode() {
            if pc == addr {
                return Ok(n);
            }
        }
        if n >= max_cycles {
            return Err(SyncError::OutOfFuel);
        }
        soc.tick();
        n += 1;
        if let Some(f) = soc.fault() {
            return Err(SyncError::SocFault(f));
        }
    }
}

/// Synchronize the execution of one `handle` invocation.
///
/// Pre-condition: the SoC's decode stage holds `handle`'s first
/// instruction (use [`run_until_decode`]). The function executes until
/// `handle` returns (the ISA PC comes back to the entry `ra`), stepping
/// the ISA machine at every hardware retirement and checking the state
/// correspondence per `policy`.
pub fn sync_handle_execution(soc: &mut Soc, policy: &SyncPolicy) -> Result<SyncStats, SyncError> {
    sync_handle_execution_traced(soc, policy, &Telemetry::disabled())
}

/// [`sync_handle_execution`] with telemetry: a `sync.handle` span over
/// the invocation, and per-instruction-class counters of sync points
/// realized (`sync.realized.<class>`) versus skipped by the policy
/// (`sync.skipped.<class>`) — the data behind the fig. 11 policy
/// trade-off.
pub fn sync_handle_execution_traced(
    soc: &mut Soc,
    policy: &SyncPolicy,
    tel: &Telemetry,
) -> Result<SyncStats, SyncError> {
    let _span = tel.span("sync.handle");
    // Class accounting stays in plain arrays on the hot path; it is
    // flushed to the telemetry sink once, at the end of the invocation.
    let mut realized = [0u64; SYNC_CLASS_NAMES.len()];
    let mut skipped = [0u64; SYNC_CLASS_NAMES.len()];
    let result = run_sync(soc, policy, &mut realized, &mut skipped);
    if tel.enabled() {
        for (i, name) in SYNC_CLASS_NAMES.iter().enumerate() {
            if realized[i] > 0 {
                tel.count(&format!("sync.realized.{name}"), realized[i]);
            }
            if skipped[i] > 0 {
                tel.count(&format!("sync.skipped.{name}"), skipped[i]);
            }
        }
        if let Ok(stats) = &result {
            tel.count("sync.instructions", stats.instructions);
            tel.count("sync.component_checks", stats.component_checks);
        }
    }
    result
}

fn run_sync(
    soc: &mut Soc,
    policy: &SyncPolicy,
    realized: &mut [u64; SYNC_CLASS_NAMES.len()],
    skipped: &mut [u64; SYNC_CLASS_NAMES.len()],
) -> Result<SyncStats, SyncError> {
    let mut isa = snapshot_isa_machine(soc);
    let return_addr = isa.regs[1]; // ra at handle entry
    let mut stats = SyncStats::default();
    loop {
        if stats.instructions >= policy.max_instructions {
            return Err(SyncError::OutOfFuel);
        }
        soc.tick();
        stats.cycles += 1;
        if let Some(f) = soc.fault() {
            return Err(SyncError::SocFault(f));
        }
        let Some((word, pc)) = soc.core.last_retired() else {
            continue;
        };
        // The ISA machine must be at the same instruction.
        if isa.pc != pc {
            return Err(SyncError::InstructionMismatch {
                index: stats.instructions,
                pc,
                hardware: word,
                isa: isa.mem.load_u32(isa.pc),
            });
        }
        let isa_word = isa.mem.load_u32(isa.pc);
        if isa_word != word {
            return Err(SyncError::InstructionMismatch {
                index: stats.instructions,
                pc,
                hardware: word,
                isa: isa_word,
            });
        }
        isa.step().map_err(|e| SyncError::IsaTrap(e.to_string()))?;
        stats.instructions += 1;
        // Sync point?
        let instr = decode(word).map_err(|e| SyncError::IsaTrap(e.to_string()))?;
        let do_sync = match policy.registers {
            SyncWhen::EveryInstruction => true,
            SyncWhen::ControlAndMem => is_sync_point(instr),
            SyncWhen::Never => false,
        };
        let class = instr_class(instr);
        if do_sync {
            realized[class] += 1;
        } else {
            skipped[class] += 1;
        }
        if do_sync {
            stats.sync_points += 1;
            for (i, w) in soc.core.regs().iter().enumerate() {
                stats.component_checks += 1;
                if w.v != isa.regs[i] {
                    return Err(SyncError::RegisterMismatch {
                        index: stats.instructions,
                        pc,
                        reg: i,
                        hardware: w.v,
                        isa: isa.regs[i],
                    });
                }
            }
        }
        // Done when handle returns.
        if isa.pc == return_addr {
            // Final full-register check regardless of policy.
            for (i, w) in soc.core.regs().iter().enumerate() {
                stats.component_checks += 1;
                if w.v != isa.regs[i] {
                    return Err(SyncError::RegisterMismatch {
                        index: stats.instructions,
                        pc,
                        reg: i,
                        hardware: w.v,
                        isa: isa.regs[i],
                    });
                }
            }
            return Ok(stats);
        }
    }
}
