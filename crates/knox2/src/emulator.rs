//! The circuit emulator template (paper §5.3).
//!
//! "The emulator runs a fresh instance of the circuit, with dummy data.
//! The emulator does not have access to the data in the real circuit, in
//! particular the read-write persistent memory, but the structure of the
//! circuit and the code in the ROM is common knowledge. The emulator
//! watches the internal state of its instance of the circuit: when the
//! circuit reaches the commit point of an operation, the emulator reads
//! input data out of its circuit's state and translates it into a
//! spec-level input, makes a query to the specification, and injects the
//! result back into its circuit's state, so that the (future) output
//! behavior of its circuit instance matches that of the real circuit."
//!
//! The four developer-supplied hooks of the template are realized as:
//! (1a) `handle` entry is detected when the core retires the function's
//! first instruction; (1b) the command bytes are read from the circuit
//! RAM at the address in `a1`; (2a) the commit point is the flip of the
//! journal flag word in FRAM; (2b) the spec response is injected into
//! the circuit RAM at the address saved from `a2`.

use parfait_riscv::isa::Reg;
use parfait_rtl::{Circuit, WireIn, WireOut};
use parfait_soc::Soc;

use crate::fps::ByteSpec;

/// Saved injection context between `handle` entry and the commit point.
#[derive(Clone)]
struct Pending {
    resp_addr: u32,
    resp: Vec<u8>,
}

/// The emulator: a dummy-state SoC plus the injection state machine.
///
/// `Clone` snapshots the whole ideal world (circuit instance, spec
/// state, injection state machine); the specification itself is shared
/// by reference. The parallel FPS checker forks these snapshots onto
/// worker threads.
#[derive(Clone)]
pub struct CircuitEmulator<'s> {
    /// The emulator's own circuit instance (dummy persistent state).
    pub soc: Soc,
    spec: &'s dyn ByteSpec,
    /// The ideal-world spec state (advances on every query).
    pub spec_state: Vec<u8>,
    handle_addr: u32,
    command_size: usize,
    prev_flag: u32,
    pending: Option<Pending>,
    /// Number of spec queries made (== handle invocations observed).
    pub queries: u64,
    /// The spec's response for each query, in order. The FPS checker
    /// compares the wire-level response bytes against these, which binds
    /// the circuit's I/O path to the specification (catching, e.g.,
    /// response-encoding bugs in the system software that both circuit
    /// instances would otherwise share).
    pub spec_responses: Vec<Vec<u8>>,
    /// Seeded template bug (mutation testing, DESIGN.md §12): inject the
    /// spec response rotated by one byte, desynchronizing the ideal
    /// world's wires from the real circuit's.
    desync: bool,
}

impl<'s> CircuitEmulator<'s> {
    /// Create an emulator around a dummy SoC.
    ///
    /// `dummy_soc` must be built with *public* default state (e.g. the
    /// app's encoded initial state — common knowledge), and
    /// `spec_initial` is the ideal world's actual (secret) spec state.
    pub fn new(
        dummy_soc: Soc,
        spec: &'s dyn ByteSpec,
        spec_initial: Vec<u8>,
        command_size: usize,
    ) -> Self {
        let handle_addr =
            dummy_soc.firmware().address_of("handle").expect("firmware must define `handle`");
        let prev_flag = dummy_soc.fram_word(0);
        CircuitEmulator {
            soc: dummy_soc,
            spec,
            spec_state: spec_initial,
            handle_addr,
            command_size,
            prev_flag,
            pending: None,
            queries: 0,
            spec_responses: Vec::new(),
            desync: false,
        }
    }

    /// Seed the desync bug: every injected response is rotated left by
    /// one byte. The harness uses this to prove the FPS check is not
    /// vacuous — a broken emulator template must make it fail.
    /// Drain the spec's whole-command memo counters (see
    /// [`ByteSpec::take_memo_stats`]); the checker flushes them into
    /// the metrics registry at the end of a run.
    pub fn take_spec_memo_stats(&self) -> (u64, u64) {
        self.spec.take_memo_stats()
    }

    pub fn seed_desync(&mut self) {
        self.desync = true;
    }

    /// Advance the emulator's circuit one cycle, performing the
    /// watch/query/inject protocol.
    pub fn tick(&mut self) {
        self.soc.tick();
        // (1) handle entry: the first instruction of handle retired.
        if let Some((_, pc)) = self.soc.core.last_retired() {
            if pc == self.handle_addr {
                let cmd_addr = self.soc.core.regs()[Reg::A1.0 as usize].v;
                let resp_addr = self.soc.core.regs()[Reg::A2.0 as usize].v;
                let cmd = self.soc.ram_bytes(cmd_addr, self.command_size);
                // Query the specification (ideal-world state advances).
                let (new_state, resp) = self.spec.step(&self.spec_state, &cmd);
                self.spec_state = new_state;
                self.queries += 1;
                self.spec_responses.push(resp.clone());
                self.pending = Some(Pending { resp_addr, resp });
            }
        }
        // (2) commit point: the journal flag flipped. (Read as a word:
        // this poll happens every cycle and must not allocate.)
        let flag = self.soc.fram_word(0);
        if flag != self.prev_flag {
            self.prev_flag = flag;
            if let Some(mut p) = self.pending.take() {
                if self.desync && !p.resp.is_empty() {
                    p.resp.rotate_left(1);
                }
                // Inject the spec response over the dummy-computed one.
                self.soc.ram_store(p.resp_addr, &p.resp, false);
            }
        }
    }
}

impl Circuit for CircuitEmulator<'_> {
    fn set_input(&mut self, input: WireIn) {
        self.soc.set_input(input);
    }

    fn get_output(&self) -> WireOut {
        self.soc.get_output()
    }

    fn tick(&mut self) {
        CircuitEmulator::tick(self);
    }

    fn cycles(&self) -> u64 {
        self.soc.cycles()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfait_cores::IbexCore;
    use parfait_riscv::asm::{assemble_with, Layout};
    use parfait_soc::{host, Firmware, RAM_BASE, ROM_BASE};

    /// A minimal fig. 1 firmware in raw assembly, following the buffer
    /// ABI the emulator template watches: at `handle` entry, a0/a1/a2
    /// point at the state/command/response buffers in RAM. State is one
    /// byte, journaled in FRAM (flag@0, slots@4/@8); commands and
    /// responses are one byte; handle computes state+cmd.
    const MINI: &str = "
        _start:
            li sp, 0x2003ff00
        main_loop:
            li s0, 0x10000000
            # read_command -> cmd buffer
        rx_wait:
            lw t0, 0(s0)
            beqz t0, rx_wait
            lw t1, 4(s0)
            li s4, 0x20000110
            sb t1, 0(s4)
            # load_state (journaled) -> state buffer
            li s2, 0x30000000
            lw t0, 0(s2)
            li s3, 0x30000004
            beqz t0, ls_done
            li s3, 0x30000008
        ls_done:
            lbu t2, 0(s3)
            li s5, 0x20000100
            sb t2, 0(s5)
            # handle(state, cmd, resp)
            li a0, 0x20000100
            li a1, 0x20000110
            li a2, 0x20000120
            call handle
            # store_state: write inactive slot, flip the flag
            li t5, 0x20000100
            lbu t4, 0(t5)
            li t1, 0x30000008
            lw t0, 0(s2)
            beqz t0, ss_pick
            li t1, 0x30000004
        ss_pick:
            sb t4, 0(t1)
            lw t0, 0(s2)
            li t3, 1
            sub t0, t3, t0
            sw t0, 0(s2)
            # write_response from the resp buffer
            li t5, 0x20000120
            lbu t4, 0(t5)
        tx_wait:
            lw t0, 8(s0)
            beqz t0, tx_wait
            sw t4, 12(s0)
            j main_loop
        handle:
            lbu t0, 0(a0)
            lbu t1, 0(a1)
            add t0, t0, t1
            andi t0, t0, 0xff
            sb t0, 0(a0)
            sb t0, 0(a2)
            ret
    ";

    struct MiniSpec;

    impl crate::fps::ByteSpec for MiniSpec {
        fn step(&self, state: &[u8], cmd: &[u8]) -> (Vec<u8>, Vec<u8>) {
            let s = state[0].wrapping_add(cmd[0]);
            (vec![s], vec![s])
        }
    }

    fn firmware() -> Firmware {
        let p = assemble_with(MINI, Layout { text_base: ROM_BASE, data_base: RAM_BASE }).unwrap();
        Firmware::from_program(&p)
    }

    fn fram(state: u8) -> Vec<u8> {
        vec![0, 0, 0, 0, state, 0, 0, 0, state, 0, 0, 0]
    }

    #[test]
    fn emulator_injects_spec_responses() {
        // Dummy circuit state 0; ideal spec state 40 (the secret).
        let dummy = Soc::new(Box::new(IbexCore::new(0)), firmware(), &fram(0));
        let spec = MiniSpec;
        let mut emu = CircuitEmulator::new(dummy, &spec, vec![40], 1);
        host::send_byte(&mut emu, 2, 100_000).unwrap();
        let b = host::recv_byte(&mut emu, 100_000).unwrap();
        // The emulator's circuit computed 0+2 on dummy data, but the
        // injected spec response is 40+2.
        assert_eq!(b, 42);
        assert_eq!(emu.queries, 1);
        assert_eq!(emu.spec_state, vec![42]);
        assert_eq!(emu.spec_responses, vec![vec![42]]);
        // Next command continues from the advanced spec state.
        host::send_byte(&mut emu, 1, 100_000).unwrap();
        assert_eq!(host::recv_byte(&mut emu, 100_000).unwrap(), 43);
    }

    #[test]
    fn emulator_circuit_matches_real_circuit_exactly() {
        // The real device with secret 40 and the emulator with dummy 0
        // must produce identical wire traces — the FPS property at the
        // smallest possible scale.
        let mut real = Soc::new(Box::new(IbexCore::new(0)), firmware(), &fram(40));
        real.fram.set_taint(0, 4, false); // public journal flag
        let dummy = Soc::new(Box::new(IbexCore::new(0)), firmware(), &fram(0));
        let spec = MiniSpec;
        let mut emu = CircuitEmulator::new(dummy, &spec, vec![40], 1);
        for byte in [2u8, 1, 0xFF] {
            host::send_byte(&mut real, byte, 100_000).unwrap();
            host::send_byte(&mut emu, byte, 100_000).unwrap();
            let a = host::recv_byte(&mut real, 100_000).unwrap();
            let b = host::recv_byte(&mut emu, 100_000).unwrap();
            assert_eq!(a, b, "cmd {byte}");
        }
    }
}
