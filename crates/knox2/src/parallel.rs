//! Parallel FPS checking: a producer/verifier pipeline.
//!
//! The sequential checker lock-steps *two* circuit instances (the real
//! SoC and the emulator's dummy SoC) on one thread. This module splits
//! that work across two threads without changing what is checked — and,
//! unlike a fork-and-recheck scheme, without re-simulating anything:
//!
//! 1. The **producer** drives only the real SoC through the host script
//!    — the host schedule depends only on the real world's output wires
//!    (the [`Dual`][crate::fps::Dual]'s `get_output` is the real
//!    world's), so this replays the exact wire schedule of the
//!    sequential checker. Per cycle it records the effective input and
//!    the pre-tick observable output, both run-length encoded; per op it
//!    records the end cycle, any host timeout, the (sticky) real-world
//!    fault, and the refinement projection at quiescent command ends.
//!    The trace is cut into segments at quiescent op boundaries, each
//!    carrying a real-SoC snapshot of its start for failure-path pc
//!    recovery.
//! 2. The **verifier** (the calling thread) consumes segments in order,
//!    replaying the recorded inputs onto the caller's emulator and
//!    comparing the emulator's pre-tick observable wires against the
//!    recorded real-world wires — the same pre-edge comparison the
//!    sequential [`Dual`][crate::fps::Dual] makes. Replay *is* the
//!    ideal-world advance: the emulator passes through exactly the
//!    states it has in the sequential run (input-driven, so this holds
//!    even past a divergence), and it is never snapshotted or re-run.
//!    At each op end the verifier applies the sequential checker's
//!    error precedence — divergence, real fault, ideal fault, timeout,
//!    refinement — over the recorded facts and the live emulator.
//!
//! Each simulated cycle is simulated exactly once per world, so the
//! pipeline does the sequential checker's total work split across two
//! threads, bounded by the slower world instead of the sum. Snapshots
//! are per segment, real-world only, and only ever *used* on the
//! failure path (to recover the real pc at a divergence cycle by
//! replaying the segment's inputs from its snapshot).
//!
//! Soundness: every comparison the sequential checker makes is made
//! here against the same values. The recorded output trace is the real
//! world's pre-tick observable sequence under the identical schedule;
//! the emulator's sequence is produced live by the identical inputs;
//! the per-op facts (timeouts, faults, projections) are recorded at the
//! same points the sequential checker reads them. The merge of the two
//! streams preserves the sequential error precedence per op, so the
//! first reported failure is byte-identical to the oracle's.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use parfait_rtl::{Circuit, RingTrace, WireIn, WireOut};
use parfait_soc::Soc;

use crate::emulator::CircuitEmulator;
use crate::fps::{
    check_fps_traced, drive_op, end_of_script_checks, flush_decode_stats, flush_spec_memo_stats,
    report_failure, vcd_window, FpsConfig, FpsError, FpsFailure, FpsObserver, FpsReport, HostOp,
};

/// A run-length encoded per-cycle trace (inputs, or observable output
/// triples).
///
/// The host protocol holds each input for many consecutive cycles
/// (offering a byte, waiting for `tx_valid`, idling) and the observable
/// outputs sit at the idle pattern for the length of a computation, so
/// both encoded traces are tiny compared to the cycle counts they
/// cover.
#[derive(Clone, Debug)]
pub(crate) struct RleTrace<T> {
    runs: Vec<(T, u32)>,
}

impl<T> Default for RleTrace<T> {
    fn default() -> Self {
        RleTrace { runs: Vec::new() }
    }
}

impl<T: Copy + PartialEq> RleTrace<T> {
    fn push(&mut self, v: T) {
        match self.runs.last_mut() {
            Some((last, n)) if *last == v && *n < u32::MAX => *n += 1,
            _ => self.runs.push((v, 1)),
        }
    }

    /// The per-cycle values, decoded.
    fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.runs.iter().flat_map(|&(v, n)| std::iter::repeat_n(v, n as usize))
    }

    #[cfg(test)]
    fn len_cycles(&self) -> u64 {
        self.runs.iter().map(|&(_, n)| n as u64).sum()
    }
}

/// The per-cycle input schedule of a segment.
pub(crate) type InputTrace = RleTrace<WireIn>;

/// One cycle's observable wires: `(rx_ready, tx_valid, tx_data)`.
type Obs = (bool, bool, u8);

/// The real world's pre-tick observable wires, per cycle.
type ObsTrace = RleTrace<Obs>;

impl RleTrace<WireIn> {
    /// Apply the first `cycles` ticks of the schedule to a circuit. The
    /// input is re-asserted before every tick because the SoC
    /// self-clears latched handshake wires; this matches the effective
    /// per-cycle input of the original run exactly (the host drivers
    /// also re-assert before every tick, or hold the all-false idle
    /// input which self-clearing cannot change).
    fn replay_prefix(&self, c: &mut dyn Circuit, cycles: u64) {
        for w in self.iter().take(usize::try_from(cycles).unwrap_or(usize::MAX)) {
            c.set_input(w);
            c.tick();
        }
    }

    /// Apply the whole schedule.
    #[cfg(test)]
    fn replay(&self, c: &mut dyn Circuit) {
        self.replay_prefix(c, u64::MAX);
    }
}

/// A [`Circuit`] wrapper that records the effective input and the
/// pre-tick observable output of every cycle, and counts ticks (for
/// absolute cycle numbering of segments).
struct RecordingCircuit<'a> {
    soc: &'a mut Soc,
    input: WireIn,
    inputs: InputTrace,
    outputs: ObsTrace,
    ticks: u64,
}

impl Circuit for RecordingCircuit<'_> {
    fn set_input(&mut self, input: WireIn) {
        self.input = input;
        self.soc.set_input(input);
    }

    fn get_output(&self) -> WireOut {
        self.soc.get_output()
    }

    fn tick(&mut self) {
        self.inputs.push(self.input);
        self.outputs.push(self.soc.get_output().observable());
        self.soc.tick();
        self.ticks += 1;
    }

    fn cycles(&self) -> u64 {
        self.soc.cycles()
    }
}

/// What the producer recorded about one script op.
struct OpRec {
    /// Absolute cycle count when the op's driving finished (on a host
    /// timeout: where the host gave up — the sequential checker's cycle
    /// count at the same point).
    end_cycle: u64,
    /// The host I/O timed out during this op.
    timed_out: bool,
    /// `real.fault()` after the op (sticky, so only the producer's
    /// terminal op ever records `Some`).
    real_fault: Option<String>,
    /// `project(real)` at the quiescent point after a completed,
    /// framing-aligned command; `None` otherwise.
    projection: Option<Vec<u8>>,
}

/// One slice of the recorded run, with everything the verifier needs to
/// replay the emulator over it and reproduce the sequential checker's
/// verdicts.
struct Segment {
    index: usize,
    /// Absolute index of the first op covered.
    op_start: usize,
    /// The real SoC at the segment's start — held for the failure path
    /// only (real-pc recovery at a divergence cycle).
    real_snap: Soc,
    /// Cycles elapsed before the segment (absolute numbering base).
    cycle_base: u64,
    /// Commands completed before the segment.
    commands_base: usize,
    /// The per-cycle inputs the producer applied during the segment.
    inputs: InputTrace,
    /// The real world's pre-tick observable outputs during the segment.
    outputs: ObsTrace,
    /// One record per op in `op_start..op_start + ops.len()`.
    ops: Vec<OpRec>,
}

/// What the producer learned from driving the whole script.
struct ProducerOut {
    wire_responses: Vec<Vec<u8>>,
    cycles: u64,
    commands: usize,
    busy: Duration,
}

/// A failure with the statistics the sequential checker would have
/// accumulated at the same point.
struct SegFailure {
    error: FpsError,
    cycles: u64,
    commands: usize,
    queries: u64,
    vcd: Option<(RingTrace, RingTrace)>,
}

/// Minimum cycles per segment before the producer cuts at the next
/// quiescent boundary (`PARFAIT_SEGMENT_CYCLES`, default 100k). A
/// segment costs one real-SoC snapshot (~1 MiB for the reference SoC)
/// and bounds the failure-path pc-recovery replay. A malformed value is
/// a hard error (via [`parfait_telemetry::env`]).
fn segment_cycles() -> u64 {
    parfait_telemetry::env::segment_cycles_loud()
}

/// Recover the real core's pre-tick pc at an absolute `cycle` inside
/// `seg` by replaying the segment's recorded inputs from its snapshot.
/// Failure path only; cost is bounded by the segment length.
fn recover_real_pc(seg: &Segment, cycle: u64) -> u32 {
    let mut soc = seg.real_snap.clone();
    seg.inputs.replay_prefix(&mut soc, cycle - seg.cycle_base);
    soc.core.pc()
}

/// [`check_fps_traced`][crate::fps::check_fps_traced] as a two-thread
/// producer/verifier pipeline (0 = [`parfait_parallel::default_threads`]).
///
/// Observationally identical to the sequential checker: it returns the
/// same `Ok` report (modulo `wall`/`cpu` timings) and, on failure, the
/// byte-identical first [`FpsError`] with the same partial statistics.
/// On success `real` and `emu` are left in the same final states the
/// sequential checker leaves them in. `threads <= 1` simply delegates
/// to the sequential checker; more than two threads gain nothing (the
/// pipeline has exactly two lanes — each simulated cycle is simulated
/// once per world).
pub fn check_fps_parallel(
    real: &mut Soc,
    emu: &mut CircuitEmulator<'_>,
    cfg: &FpsConfig,
    project: &(dyn Fn(&Soc) -> Vec<u8> + Sync),
    script: &[HostOp],
    obs: &FpsObserver,
    threads: usize,
) -> Result<FpsReport, FpsFailure> {
    let threads = if threads == 0 { parfait_parallel::default_threads() } else { threads };
    if threads <= 1 {
        return check_fps_traced(real, emu, cfg, project, script, obs);
    }
    let start = Instant::now();
    let tel = obs.telemetry.clone();
    let run_span = tel.span("fps.run");
    let capture_vcd = std::env::var_os("PARFAIT_VCD_DIR").is_some();
    let min_seg_cycles = segment_cycles();
    let metrics = parfait_telemetry::metrics::Metrics::global();
    // Snapshot-fork cost: one real-SoC clone per segment (the ideal
    // world is never forked in the pipeline design).
    let real_fork_us = metrics.histogram_with("fps_snapshot_fork_us", &[("world", "real")]);

    // The producer runs on a pool worker; the verifier runs right here
    // on the calling thread. One segment-sized channel buffer of
    // lookahead keeps both lanes busy while bounding in-flight
    // snapshots.
    let (producer_out, verify_busy, verdict) = parfait_parallel::scope(threads, |pool| {
        let (seg_tx, seg_rx) = mpsc::sync_channel::<Segment>(2);
        let (prod_tx, prod_rx) = mpsc::channel::<ProducerOut>();

        let prod_tel = tel.clone();
        let real = &mut *real;
        pool.spawn(move |_worker| {
            let busy_start = Instant::now();
            let _span = prod_tel.span("fps.scan");
            let mut rec = RecordingCircuit {
                soc: real,
                input: WireIn::default(),
                inputs: InputTrace::default(),
                outputs: ObsTrace::default(),
                ticks: 0,
            };
            let mut pending_bytes = 0usize;
            let mut wire_responses: Vec<Vec<u8>> = Vec::new();
            let mut commands = 0usize;
            let mut index = 0usize;
            let mut seg_start_op = 0usize;
            let mut seg_cycle_base = 0u64;
            let mut seg_commands_base = 0usize;
            let mut seg_snap = rec.soc.clone();
            let mut ops: Vec<OpRec> = Vec::new();
            for (op_i, op) in script.iter().enumerate() {
                if matches!(op, HostOp::Command(_)) {
                    commands += 1;
                }
                let io = drive_op(&mut rec, op, cfg, &mut pending_bytes, &mut wire_responses);
                // The producer stops where the sequential checker could
                // not have continued driving: a hung or faulted real
                // world. The verifier re-derives the precise error
                // (which may be an earlier divergence in the same
                // segment rather than the fault itself).
                let terminal = io.is_err() || rec.soc.fault().is_some();
                ops.push(OpRec {
                    end_cycle: rec.ticks,
                    timed_out: io.is_err(),
                    real_fault: rec.soc.fault(),
                    projection: (pending_bytes == 0 && matches!(op, HostOp::Command(_)))
                        .then(|| project(rec.soc)),
                });
                let boundary = pending_bytes == 0
                    && rec.ticks.saturating_sub(seg_cycle_base) >= min_seg_cycles;
                let last = op_i + 1 == script.len();
                if terminal || boundary || last {
                    let fork_t = Instant::now();
                    let next_snap = rec.soc.clone();
                    real_fork_us.record_duration(fork_t.elapsed());
                    let seg = Segment {
                        index,
                        op_start: seg_start_op,
                        real_snap: std::mem::replace(&mut seg_snap, next_snap),
                        cycle_base: seg_cycle_base,
                        commands_base: seg_commands_base,
                        inputs: std::mem::take(&mut rec.inputs),
                        outputs: std::mem::take(&mut rec.outputs),
                        ops: std::mem::take(&mut ops),
                    };
                    prod_tel.progress(
                        "fps.segment",
                        &[
                            ("segment", seg.index as f64),
                            ("op_start", seg.op_start as f64),
                            ("ops", seg.ops.len() as f64),
                            ("cycle_base", seg.cycle_base as f64),
                            ("cycles", (rec.ticks - seg.cycle_base) as f64),
                        ],
                    );
                    index += 1;
                    seg_start_op = op_i + 1;
                    seg_cycle_base = rec.ticks;
                    seg_commands_base = commands;
                    if seg_tx.send(seg).is_err() || terminal {
                        break;
                    }
                }
            }
            let _ = prod_tx.send(ProducerOut {
                wire_responses,
                cycles: rec.ticks,
                commands,
                busy: busy_start.elapsed(),
            });
        });

        // The verifier: replay the recorded inputs onto the caller's
        // emulator, compare pre-tick observables, and re-derive the
        // sequential per-op verdicts.
        let busy_start = Instant::now();
        let _span = tel.span("fps.verify");
        let segments_checked = metrics.counter("fps_segments_checked_total");
        let cycles_total = metrics.counter("fps_cycles_total");
        let cps_gauge =
            metrics.gauge_with("fps_cycles_per_second", &[("cell", &obs.cell.to_string())]);
        let mut vcd = capture_vcd.then(|| {
            let w = vcd_window();
            (RingTrace::new(w), RingTrace::new(w))
        });
        let mut next_heartbeat = if obs.heartbeat_cycles == 0 || !tel.enabled() {
            u64::MAX
        } else {
            obs.heartbeat_cycles
        };
        let mut cycle = 0u64;
        let mut commands;
        let mut verdict: Result<(), SegFailure> = Ok(());
        'segments: for seg in seg_rx.iter() {
            let _seg_span = tel.span("fps.verify_segment");
            segments_checked.inc();
            debug_assert_eq!(cycle, seg.cycle_base, "segments must arrive contiguously");
            commands = seg.commands_base;
            let mut inputs = seg.inputs.iter();
            let mut outputs = seg.outputs.iter();
            for (i, rec) in seg.ops.iter().enumerate() {
                let op_index = seg.op_start + i;
                let op = &script[op_index];
                let _op_span = tel.span(match op {
                    HostOp::Command(_) => "fps.command",
                    HostOp::Garbage(_) => "fps.garbage",
                    HostOp::Idle(_) => "fps.idle",
                });
                if matches!(op, HostOp::Command(_)) {
                    commands += 1;
                }
                // Lock-step replay over the op's recorded cycle range:
                // the same pre-edge comparison as `Dual::tick`, first
                // difference retained.
                let mut first_div: Option<(u64, Obs, Obs, u32)> = None;
                while cycle < rec.end_cycle {
                    let r = outputs.next().expect("one recorded output per cycle");
                    let ideal = emu.get_output().observable();
                    if let Some((real_trace, ideal_trace)) = &mut vcd {
                        real_trace.push(r);
                        ideal_trace.push(ideal);
                    }
                    if r != ideal && first_div.is_none() {
                        first_div = Some((cycle, r, ideal, emu.soc.core.pc()));
                    }
                    let w = inputs.next().expect("one recorded input per cycle");
                    emu.set_input(w);
                    emu.tick();
                    cycle += 1;
                    if cycle >= next_heartbeat {
                        next_heartbeat = cycle.saturating_add(obs.heartbeat_cycles.max(1));
                        let rate = cycle as f64 / busy_start.elapsed().as_secs_f64().max(1e-9);
                        cps_gauge.set(rate);
                        tel.progress(
                            "fps.heartbeat",
                            &[
                                ("cycles", cycle as f64),
                                ("cycles_per_s", rate),
                                ("commands", commands as f64),
                                ("op_index", op_index as f64),
                                ("worker", 1.0),
                                ("cell", obs.cell as f64),
                                ("ideal_pc", emu.soc.core.pc() as f64),
                            ],
                        );
                    }
                }
                // The sequential checker's per-op error precedence.
                let error = if let Some((div_cycle, r, ideal, ideal_pc)) = first_div {
                    Some(FpsError::TraceDivergence {
                        cycle: div_cycle,
                        op_index,
                        real: r,
                        ideal,
                        real_pc: recover_real_pc(&seg, div_cycle),
                        ideal_pc,
                    })
                } else if let Some(detail) = rec.real_fault.clone() {
                    Some(FpsError::Fault { world: "real", detail })
                } else if let Some(detail) = emu.soc.fault() {
                    Some(FpsError::Fault { world: "ideal", detail })
                } else if rec.timed_out {
                    tel.count("fps.timeouts", 1);
                    Some(FpsError::Timeout { op_index })
                } else if let Some(proj) = &rec.projection {
                    (proj != &emu.spec_state).then(|| FpsError::RefinementViolation {
                        op_index,
                        real_state: proj.clone(),
                        spec_state: emu.spec_state.clone(),
                    })
                } else {
                    None
                };
                if let Some(error) = error {
                    verdict = Err(SegFailure {
                        error,
                        cycles: cycle,
                        commands,
                        queries: emu.queries,
                        vcd: vcd.take(),
                    });
                    break 'segments;
                }
            }
        }
        // Closing the channel aborts the producer at its next segment
        // cut (it finishes the current segment, then stops).
        drop(seg_rx);
        cycles_total.add(cycle);
        (prod_rx.recv().ok(), busy_start.elapsed(), verdict)
    });

    // The scope's borrows have ended: the producer drove the caller's
    // `real` and the verifier replayed the caller's `emu`, so on
    // success both hold the sequential checker's final states.
    let producer_out = producer_out.expect("FPS producer terminated without a result");
    let wall = start.elapsed();
    let cpu = producer_out.busy + verify_busy;
    tel.count("fps.spec_queries", emu.queries);
    tel.gauge_max("soc.real.rx_fifo_hwm", real.rx_fifo.high_water() as u64);
    tel.gauge_max("soc.real.tx_fifo_hwm", real.tx_fifo.high_water() as u64);
    tel.gauge_max("soc.ideal.rx_fifo_hwm", emu.soc.rx_fifo.high_water() as u64);
    tel.gauge_max("soc.ideal.tx_fifo_hwm", emu.soc.tx_fifo.high_water() as u64);
    tel.count("soc.real.instructions_retired", real.instructions_retired());
    tel.gauge("fps.threads", threads as u64);
    // Registry totals: verified (dual-compared) cycles land in
    // `fps_cycles_total` as the verifier progresses; the producer's
    // single-world drive is its own counter so cycles_total stays
    // comparable to the sequential checker's.
    metrics.counter("fps_prepass_cycles_total").add(producer_out.cycles);
    metrics.counter("fps_spec_queries_total").add(emu.queries);
    flush_decode_stats(real, &mut emu.soc);
    flush_spec_memo_stats(emu);
    metrics
        .gauge_with("fps_cycles_per_second", &[("cell", &obs.cell.to_string())])
        .set(producer_out.cycles as f64 / wall.as_secs_f64().max(1e-9));
    drop(run_span);

    match verdict {
        Err(f) => {
            report_failure(&tel, &f.error, f.vcd);
            Err(FpsFailure {
                error: f.error,
                partial: FpsReport {
                    cycles: f.cycles,
                    wall,
                    cpu,
                    commands: f.commands,
                    spec_queries: f.queries,
                },
            })
        }
        Ok(()) => {
            let report = FpsReport {
                cycles: producer_out.cycles,
                wall,
                cpu,
                commands: producer_out.commands,
                spec_queries: emu.queries,
            };
            match end_of_script_checks(real, &emu.spec_responses, &producer_out.wire_responses) {
                Ok(()) => Ok(report),
                Err(error) => {
                    report_failure(&tel, &error, None);
                    Err(FpsFailure { error, partial: report })
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_run_length_encode() {
        let a = WireIn { rx_valid: true, rx_data: 7, tx_ready: false };
        let b = WireIn::default();
        let mut t = InputTrace::default();
        for _ in 0..1000 {
            t.push(a);
        }
        for _ in 0..500 {
            t.push(b);
        }
        t.push(a);
        assert_eq!(t.runs.len(), 3);
        assert_eq!(t.len_cycles(), 1501);
        // Decoding yields the original per-cycle sequence.
        let decoded: Vec<WireIn> = t.iter().collect();
        assert_eq!(decoded.len(), 1501);
        assert_eq!(decoded[0], a);
        assert_eq!(decoded[999], a);
        assert_eq!(decoded[1000], b);
        assert_eq!(decoded[1500], a);
    }

    #[test]
    fn replay_reproduces_the_recorded_schedule() {
        /// A circuit that remembers the input it saw at every tick.
        #[derive(Default)]
        struct Probe {
            input: WireIn,
            seen: Vec<WireIn>,
        }
        impl Circuit for Probe {
            fn set_input(&mut self, input: WireIn) {
                self.input = input;
            }
            fn get_output(&self) -> WireOut {
                WireOut::default()
            }
            fn tick(&mut self) {
                self.seen.push(self.input);
            }
            fn cycles(&self) -> u64 {
                self.seen.len() as u64
            }
        }
        let schedule = [
            WireIn { rx_valid: true, rx_data: 1, tx_ready: false },
            WireIn { rx_valid: true, rx_data: 1, tx_ready: false },
            WireIn::default(),
            WireIn { rx_valid: false, rx_data: 0, tx_ready: true },
        ];
        let mut trace = InputTrace::default();
        let mut original = Probe::default();
        for w in schedule {
            original.set_input(w);
            trace.push(w);
            original.tick();
        }
        let mut replayed = Probe::default();
        trace.replay(&mut replayed);
        assert_eq!(original.seen, replayed.seen);
    }

    #[test]
    fn segment_cycles_has_a_positive_default() {
        assert!(segment_cycles() > 0);
    }
}
