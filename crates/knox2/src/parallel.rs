//! Parallel FPS checking: snapshot-fork segment verification.
//!
//! The sequential checker spends almost all of its time lock-stepping
//! *two* circuit instances (the real SoC and the emulator's dummy SoC).
//! This module splits that work across threads without changing what is
//! checked:
//!
//! 1. A cheap sequential **pre-pass** (the *producer*) drives only the
//!    real SoC through the host script — the host schedule depends only
//!    on the real world's output wires, so this replays the exact wire
//!    schedule of the sequential checker at roughly half its cost. At
//!    quiescent op boundaries (command framing aligned) it snapshots the
//!    real SoC (`Clone`) and cuts the script into segments, recording
//!    the per-cycle input schedule of each segment as a run-length
//!    encoded [`InputTrace`].
//! 2. An **α-chain** replays each segment's recorded inputs onto the
//!    caller's emulator, snapshotting it *before* each replay. Replay is
//!    input-driven, so the emulator passes through exactly the states it
//!    has in the sequential run — including after a divergence, where
//!    its own outputs would no longer agree with the schedule.
//! 3. **Segment workers** re-run the expensive dual-world check — the
//!    exact same [`run_ops`] the sequential checker uses — over each
//!    (real snapshot, emulator snapshot, ops) triple, in parallel.
//! 4. The **merge** picks the failure from the earliest segment, which
//!    is the sequential checker's first failure: segments partition the
//!    script, each worker checks only its own op range with shared code
//!    and identical absolute cycle/op/command numbering, so the reported
//!    error is byte-identical to the sequential oracle's.
//!
//! Soundness rests on two facts. First, segments are cut only at
//! quiescent points (no partial command in flight), so a worker's
//! `pending_bytes = 0` assumption holds by construction. Second, every
//! world a worker sees is a bit-exact snapshot of the corresponding
//! sequential state: the real snapshots come from replaying the
//! identical schedule, and the emulator snapshots come from replaying
//! the identical inputs. Nothing about the property being checked is
//! weakened — the same comparisons run over the same states.

use std::sync::mpsc;
use std::time::{Duration, Instant};

use parfait_rtl::{Circuit, RingTrace, WireIn, WireOut};
use parfait_soc::Soc;

use crate::emulator::CircuitEmulator;
use crate::fps::{
    check_fps_traced, drive_op, end_of_script_checks, report_failure, run_ops, Dual, FpsConfig,
    FpsError, FpsFailure, FpsObserver, FpsReport, HostOp,
};

/// A run-length encoded per-cycle input schedule.
///
/// The host protocol holds each input for many consecutive cycles
/// (offering a byte, waiting for `tx_valid`, idling), so the encoded
/// trace is tiny compared to the cycle count it covers.
#[derive(Clone, Debug, Default)]
pub(crate) struct InputTrace {
    runs: Vec<(WireIn, u32)>,
}

impl InputTrace {
    fn push(&mut self, w: WireIn) {
        match self.runs.last_mut() {
            Some((last, n)) if *last == w && *n < u32::MAX => *n += 1,
            _ => self.runs.push((w, 1)),
        }
    }

    /// Apply the schedule to a circuit. The input is re-asserted before
    /// every tick because the SoC self-clears latched handshake wires;
    /// this matches the effective per-cycle input of the original run
    /// exactly (the host drivers also re-assert before every tick, or
    /// hold the all-false idle input which self-clearing cannot change).
    fn replay(&self, c: &mut dyn Circuit) {
        for &(w, n) in &self.runs {
            for _ in 0..n {
                c.set_input(w);
                c.tick();
            }
        }
    }

    #[cfg(test)]
    fn len_cycles(&self) -> u64 {
        self.runs.iter().map(|&(_, n)| n as u64).sum()
    }
}

/// A [`Circuit`] wrapper that records the effective input of every
/// cycle (for the α-chain replay) and counts ticks (for absolute cycle
/// numbering of segments).
struct RecordingCircuit<'a> {
    soc: &'a mut Soc,
    input: WireIn,
    inputs: InputTrace,
    ticks: u64,
}

impl Circuit for RecordingCircuit<'_> {
    fn set_input(&mut self, input: WireIn) {
        self.input = input;
        self.soc.set_input(input);
    }

    fn get_output(&self) -> WireOut {
        self.soc.get_output()
    }

    fn tick(&mut self) {
        self.inputs.push(self.input);
        self.soc.tick();
        self.ticks += 1;
    }

    fn cycles(&self) -> u64 {
        self.soc.cycles()
    }
}

/// One verifiable slice of the script, with everything a worker needs
/// to reproduce the sequential checker's behavior over it.
struct Segment {
    index: usize,
    /// Absolute op indices covered (half-open).
    op_start: usize,
    op_end: usize,
    /// The real SoC at the segment's start.
    real_snap: Soc,
    /// Cycles elapsed before the segment (absolute numbering base).
    cycle_base: u64,
    /// Commands completed before the segment.
    commands_base: usize,
    /// The per-cycle inputs the producer applied during the segment.
    inputs: InputTrace,
}

/// A segment paired with the emulator snapshot at its start.
struct WorkItem<'s> {
    seg: Segment,
    emu: CircuitEmulator<'s>,
}

/// What the producer learned from its pre-pass.
struct ProducerOut {
    wire_responses: Vec<Vec<u8>>,
    cycles: u64,
    commands: usize,
    busy: Duration,
}

/// A worker's verdict on one segment.
struct SegDone {
    index: usize,
    busy: Duration,
    failure: Option<SegFailure>,
}

/// A failure with the statistics the sequential checker would have
/// accumulated at the same point (the emulator snapshot carries
/// cumulative counters, so these are absolute, not per-segment).
struct SegFailure {
    error: FpsError,
    cycles: u64,
    commands: usize,
    queries: u64,
    vcd: Option<(RingTrace, RingTrace)>,
}

/// Minimum cycles per segment before the producer cuts at the next
/// quiescent boundary (`PARFAIT_SEGMENT_CYCLES`, default 100k). Smaller
/// segments expose more parallelism; each segment costs one SoC and one
/// emulator snapshot (~1 MiB for the reference SoC). A malformed value
/// is a hard error (via [`parfait_telemetry::env`]).
fn segment_cycles() -> u64 {
    parfait_telemetry::env::segment_cycles_loud()
}

/// [`check_fps_traced`][crate::fps::check_fps_traced] distributed over
/// `threads` threads (0 = [`parfait_parallel::default_threads`]).
///
/// Observationally identical to the sequential checker: it returns the
/// same `Ok` report (modulo `wall`/`cpu` timings) and, on failure, the
/// byte-identical first [`FpsError`] with the same partial statistics.
/// On success `real` and `emu` are left in the same final states the
/// sequential checker leaves them in. `threads <= 1` simply delegates
/// to the sequential checker.
pub fn check_fps_parallel(
    real: &mut Soc,
    emu: &mut CircuitEmulator<'_>,
    cfg: &FpsConfig,
    project: &(dyn Fn(&Soc) -> Vec<u8> + Sync),
    script: &[HostOp],
    obs: &FpsObserver,
    threads: usize,
) -> Result<FpsReport, FpsFailure> {
    let threads = if threads == 0 { parfait_parallel::default_threads() } else { threads };
    if threads <= 1 {
        return check_fps_traced(real, emu, cfg, project, script, obs);
    }
    let start = Instant::now();
    let tel = obs.telemetry.clone();
    let run_span = tel.span("fps.run");
    let capture_vcd = std::env::var_os("PARFAIT_VCD_DIR").is_some();
    let min_seg_cycles = segment_cycles();
    // Snapshot-fork cost, per world: cloning a whole SoC (producer) or
    // emulator (α-chain) is the price of each unit of parallelism.
    let metrics = parfait_telemetry::metrics::Metrics::global();
    let real_fork_us = metrics.histogram_with("fps_snapshot_fork_us", &[("world", "real")]);
    let ideal_fork_us = metrics.histogram_with("fps_snapshot_fork_us", &[("world", "ideal")]);

    let (producer_out, alpha_busy, dones) = parfait_parallel::scope(threads, |pool| {
        // Producer -> α: bounded, so in-flight real-SoC snapshots stay
        // proportional to the thread count, not the script length.
        let (seg_tx, seg_rx) = mpsc::sync_channel::<Segment>(threads * 2);
        // α -> main: work items carrying both snapshots.
        let (item_tx, item_rx) = mpsc::channel::<WorkItem<'_>>();
        let (res_tx, res_rx) = mpsc::channel::<SegDone>();
        let (prod_tx, prod_rx) = mpsc::channel::<ProducerOut>();
        let (alpha_tx, alpha_rx) = mpsc::channel::<Duration>();

        // The pre-pass: drive the real world alone, record inputs, cut
        // and snapshot segments.
        let prod_tel = tel.clone();
        let real = &mut *real;
        pool.spawn(move |_worker| {
            let busy_start = Instant::now();
            let _span = prod_tel.span("fps.scan");
            let mut rec = RecordingCircuit {
                soc: real,
                input: WireIn::default(),
                inputs: InputTrace::default(),
                ticks: 0,
            };
            let mut pending_bytes = 0usize;
            let mut wire_responses: Vec<Vec<u8>> = Vec::new();
            let mut commands = 0usize;
            let mut index = 0usize;
            let mut seg_start_op = 0usize;
            let mut seg_cycle_base = 0u64;
            let mut seg_commands_base = 0usize;
            let mut seg_snap = rec.soc.clone();
            for (op_i, op) in script.iter().enumerate() {
                if matches!(op, HostOp::Command(_)) {
                    commands += 1;
                }
                let io = drive_op(&mut rec, op, cfg, &mut pending_bytes, &mut wire_responses);
                // The pre-pass stops where the sequential checker could
                // not have continued driving: a hung or faulted real
                // world. The worker for this terminal segment re-runs
                // it with the full dual-world checks and reports the
                // precise error (which may be an earlier divergence in
                // the same segment rather than the fault itself).
                let terminal = io.is_err() || rec.soc.fault().is_some();
                let boundary = pending_bytes == 0
                    && rec.ticks.saturating_sub(seg_cycle_base) >= min_seg_cycles;
                let last = op_i + 1 == script.len();
                if terminal || boundary || last {
                    let fork_t = Instant::now();
                    let next_snap = rec.soc.clone();
                    real_fork_us.record_duration(fork_t.elapsed());
                    let seg = Segment {
                        index,
                        op_start: seg_start_op,
                        op_end: op_i + 1,
                        real_snap: std::mem::replace(&mut seg_snap, next_snap),
                        cycle_base: seg_cycle_base,
                        commands_base: seg_commands_base,
                        inputs: std::mem::take(&mut rec.inputs),
                    };
                    prod_tel.progress(
                        "fps.segment",
                        &[
                            ("segment", seg.index as f64),
                            ("op_start", seg.op_start as f64),
                            ("ops", (seg.op_end - seg.op_start) as f64),
                            ("cycle_base", seg.cycle_base as f64),
                            ("cycles", (rec.ticks - seg.cycle_base) as f64),
                        ],
                    );
                    index += 1;
                    seg_start_op = op_i + 1;
                    seg_cycle_base = rec.ticks;
                    seg_commands_base = commands;
                    if seg_tx.send(seg).is_err() || terminal {
                        break;
                    }
                }
            }
            let _ = prod_tx.send(ProducerOut {
                wire_responses,
                cycles: rec.ticks,
                commands,
                busy: busy_start.elapsed(),
            });
        });

        // The α-chain: snapshot the emulator before each segment, then
        // advance it by replaying the recorded inputs.
        let alpha_tel = tel.clone();
        let emu = &mut *emu;
        pool.spawn(move |_worker| {
            let busy_start = Instant::now();
            let _span = alpha_tel.span("fps.alpha");
            for seg in seg_rx.iter() {
                let inputs = seg.inputs.clone();
                let fork_t = Instant::now();
                let emu_snap = emu.clone();
                ideal_fork_us.record_duration(fork_t.elapsed());
                if item_tx.send(WorkItem { seg, emu: emu_snap }).is_err() {
                    break;
                }
                inputs.replay(emu);
            }
            let _ = alpha_tx.send(busy_start.elapsed());
        });

        // Main thread: fan work items out to the pool, keeping the
        // number of outstanding (snapshot-holding) jobs bounded.
        let mut dones: Vec<SegDone> = Vec::new();
        let mut spawned = 0usize;
        for item in item_rx.iter() {
            while spawned - dones.len() >= threads * 2 {
                match res_rx.recv() {
                    Ok(d) => dones.push(d),
                    Err(_) => break,
                }
            }
            let res_tx = res_tx.clone();
            pool.spawn(move |_worker| {
                let _ = res_tx.send(verify_segment(item, cfg, project, script, obs, capture_vcd));
            });
            spawned += 1;
        }
        drop(res_tx);
        while dones.len() < spawned {
            match res_rx.recv() {
                Ok(d) => dones.push(d),
                Err(_) => break,
            }
        }
        (prod_rx.recv().ok(), alpha_rx.recv().ok(), dones)
    });

    // All jobs are done and the scope's borrows have ended; the caller's
    // `real` and `emu` now hold the same final states a sequential run
    // produces (the producer drove `real`, the α-chain replayed `emu`).
    let producer_out = producer_out.expect("FPS producer terminated without a result");
    let wall = start.elapsed();
    let cpu = producer_out.busy
        + alpha_busy.unwrap_or_default()
        + dones.iter().map(|d| d.busy).sum::<Duration>();
    tel.count("fps.spec_queries", emu.queries);
    tel.gauge_max("soc.real.rx_fifo_hwm", real.rx_fifo.high_water() as u64);
    tel.gauge_max("soc.real.tx_fifo_hwm", real.tx_fifo.high_water() as u64);
    tel.gauge_max("soc.ideal.rx_fifo_hwm", emu.soc.rx_fifo.high_water() as u64);
    tel.gauge_max("soc.ideal.tx_fifo_hwm", emu.soc.tx_fifo.high_water() as u64);
    tel.count("soc.real.instructions_retired", real.instructions_retired());
    tel.gauge("fps.threads", threads as u64);
    // Registry totals: checked cycles land per segment (see
    // `verify_segment`); the producer's single-world pre-pass is its
    // own counter so cycles_total stays comparable to the sequential
    // checker's.
    metrics.counter("fps_prepass_cycles_total").add(producer_out.cycles);
    metrics.counter("fps_spec_queries_total").add(emu.queries);
    metrics
        .gauge_with("fps_cycles_per_second", &[("cell", &obs.cell.to_string())])
        .set(producer_out.cycles as f64 / wall.as_secs_f64().max(1e-9));
    drop(run_span);

    // The first failing segment holds the sequential checker's first
    // error: op ranges are disjoint and each worker only reports errors
    // from its own range.
    let first_failure = dones
        .into_iter()
        .filter(|d| d.failure.is_some())
        .min_by_key(|d| d.index)
        .and_then(|d| d.failure);
    if let Some(f) = first_failure {
        report_failure(&tel, &f.error, f.vcd);
        return Err(FpsFailure {
            error: f.error,
            partial: FpsReport {
                cycles: f.cycles,
                wall,
                cpu,
                commands: f.commands,
                spec_queries: f.queries,
            },
        });
    }
    let report = FpsReport {
        cycles: producer_out.cycles,
        wall,
        cpu,
        commands: producer_out.commands,
        spec_queries: emu.queries,
    };
    match end_of_script_checks(real, &emu.spec_responses, &producer_out.wire_responses) {
        Ok(()) => Ok(report),
        Err(error) => {
            report_failure(&tel, &error, None);
            Err(FpsFailure { error, partial: report })
        }
    }
}

/// Re-run the full dual-world check over one segment's snapshots. This
/// is the exact sequential per-op machinery ([`run_ops`]) with absolute
/// bases, so any error carries sequential-identical coordinates.
fn verify_segment(
    item: WorkItem<'_>,
    cfg: &FpsConfig,
    project: &(dyn Fn(&Soc) -> Vec<u8> + Sync),
    script: &[HostOp],
    obs: &FpsObserver,
    capture_vcd: bool,
) -> SegDone {
    let busy_start = Instant::now();
    let WorkItem { seg, mut emu } = item;
    let mut real = seg.real_snap;
    let _span = obs.telemetry.span("fps.segment_verify");
    let mut dual = Dual::new(
        &mut real,
        &mut emu,
        obs,
        seg.cycle_base,
        seg.commands_base,
        // Worker lane for heartbeats: 0 = sequential/producer, 1 = α.
        2 + seg.index as u64,
        capture_vcd,
    );
    // The worker's own response collection is discarded: the producer's
    // full-script collection (same schedule) feeds the end-of-script
    // checks.
    let mut wire_responses = Vec::new();
    let outcome = run_ops(
        &mut dual,
        cfg,
        project,
        &script[seg.op_start..seg.op_end],
        seg.op_start,
        &mut wire_responses,
    );
    let metrics = parfait_telemetry::metrics::Metrics::global();
    metrics.counter("fps_segments_checked_total").inc();
    metrics.counter("fps_cycles_total").add(dual.cycle.saturating_sub(seg.cycle_base));
    let failure = match outcome {
        Ok(()) => None,
        Err(error) => {
            let cycles = dual.cycle;
            let commands = dual.commands;
            let vcd = dual.vcd.take();
            drop(dual);
            Some(SegFailure { error, cycles, commands, queries: emu.queries, vcd })
        }
    };
    SegDone { index: seg.index, busy: busy_start.elapsed(), failure }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn input_trace_run_length_encodes() {
        let a = WireIn { rx_valid: true, rx_data: 7, tx_ready: false };
        let b = WireIn::default();
        let mut t = InputTrace::default();
        for _ in 0..1000 {
            t.push(a);
        }
        for _ in 0..500 {
            t.push(b);
        }
        t.push(a);
        assert_eq!(t.runs.len(), 3);
        assert_eq!(t.len_cycles(), 1501);
    }

    #[test]
    fn replay_reproduces_the_recorded_schedule() {
        /// A circuit that remembers the input it saw at every tick.
        #[derive(Default)]
        struct Probe {
            input: WireIn,
            seen: Vec<WireIn>,
        }
        impl Circuit for Probe {
            fn set_input(&mut self, input: WireIn) {
                self.input = input;
            }
            fn get_output(&self) -> WireOut {
                WireOut::default()
            }
            fn tick(&mut self) {
                self.seen.push(self.input);
            }
            fn cycles(&self) -> u64 {
                self.seen.len() as u64
            }
        }
        let schedule = [
            WireIn { rx_valid: true, rx_data: 1, tx_ready: false },
            WireIn { rx_valid: true, rx_data: 1, tx_ready: false },
            WireIn::default(),
            WireIn { rx_valid: false, rx_data: 0, tx_ready: true },
        ];
        let mut trace = InputTrace::default();
        let mut original = Probe::default();
        for w in schedule {
            original.set_input(w);
            trace.push(w);
            original.tick();
        }
        let mut replayed = Probe::default();
        trace.replay(&mut replayed);
        assert_eq!(original.seen, replayed.seen);
    }

    #[test]
    fn segment_cycles_has_a_positive_default() {
        assert!(segment_cycles() > 0);
    }
}
