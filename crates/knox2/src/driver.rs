//! The wire-level driver (paper §5.2).

use parfait_rtl::Circuit;
use parfait_soc::host;

/// The I/O protocol of the HSM platforms: send the fixed-size command
/// buffer byte-by-byte over the ready/valid port, then read the
/// fixed-size response. This is the driver `d` between the assembly and
/// circuit levels of abstraction; composed with the app codec it forms
/// the top-level driver of the IPR theorem.
#[derive(Clone, Copy, Debug)]
pub struct WireDriver {
    /// Command buffer size.
    pub command_size: usize,
    /// Response buffer size.
    pub response_size: usize,
    /// Per-byte handshake timeout (cycles).
    pub timeout: u64,
}

impl WireDriver {
    /// A driver for the given app sizes with a generous timeout.
    pub fn new(command_size: usize, response_size: usize) -> WireDriver {
        WireDriver { command_size, response_size, timeout: 2_000_000_000 }
    }

    /// Run one command against a circuit: returns the response bytes.
    pub fn run(&self, c: &mut dyn Circuit, cmd: &[u8]) -> Result<Vec<u8>, host::HostTimeout> {
        assert_eq!(cmd.len(), self.command_size, "command size");
        host::send_bytes(c, cmd, self.timeout)?;
        host::recv_bytes(c, self.response_size, self.timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfait_rtl::{Circuit, WireIn, WireOut};

    /// A loopback device: echoes each command byte + 1 as the response.
    struct Loopback {
        rx: Vec<u8>,
        tx: Vec<u8>,
        cycles: u64,
        cmd_size: usize,
        input: WireIn,
    }

    impl Circuit for Loopback {
        fn set_input(&mut self, input: WireIn) {
            self.input = input;
        }
        fn get_output(&self) -> WireOut {
            WireOut {
                rx_ready: true,
                tx_valid: !self.tx.is_empty(),
                tx_data: self.tx.first().copied().unwrap_or(0),
                tx_taint: false,
            }
        }
        fn tick(&mut self) {
            self.cycles += 1;
            if self.input.rx_valid {
                self.rx.push(self.input.rx_data);
                self.input.rx_valid = false;
                if self.rx.len() == self.cmd_size {
                    self.tx = self.rx.drain(..).map(|b| b.wrapping_add(1)).collect();
                }
            }
            if self.input.tx_ready && !self.tx.is_empty() {
                self.tx.remove(0);
                self.input.tx_ready = false;
            }
        }
        fn cycles(&self) -> u64 {
            self.cycles
        }
    }

    #[test]
    fn driver_runs_one_command() {
        let mut dev =
            Loopback { rx: vec![], tx: vec![], cycles: 0, cmd_size: 4, input: WireIn::default() };
        let d = WireDriver::new(4, 4);
        let resp = d.run(&mut dev, &[10, 20, 30, 40]).unwrap();
        assert_eq!(resp, vec![11, 21, 31, 41]);
        // And again — the driver leaves the device quiescent.
        let resp = d.run(&mut dev, &[1, 2, 3, 4]).unwrap();
        assert_eq!(resp, vec![2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "command size")]
    fn driver_rejects_wrong_size() {
        let mut dev =
            Loopback { rx: vec![], tx: vec![], cycles: 0, cmd_size: 4, input: WireIn::default() };
        let d = WireDriver::new(4, 4);
        let _ = d.run(&mut dev, &[1, 2, 3]);
    }
}
