//! parfait-starling — software verification for HSM applications (§4).
//!
//! Starling relates the application specification (a
//! [`parfait::StateMachine`]) to the byte-level `handle` implementation
//! by **IPR by lockstep**. Where the paper encodes the lockstep property
//! as the F\* pre/postcondition of `handle` (fig. 7) and discharges it
//! with Z3, this crate discharges the same obligations executably:
//!
//! 1. codec inversion (`decode ∘ encode = id`),
//! 2. the two lockstep-simulation cases of fig. 6, checked over a mix of
//!    reachable spec states, encoded valid commands, and adversarially
//!    mutated/garbage inputs,
//! 3. translation validation of the compiler pipeline (interp → IR →
//!    asm at every optimization level), standing in for the KaRaMeL and
//!    CompCert correctness theorems (*IPR by equivalence*),
//! 4. an end-to-end `check_ipr` between the spec and the compiled
//!    assembly with the lockstep-derived driver and emulator.
//!
//! The [`machines`] module provides the whole-command state-machine
//! adapters for the littlec levels (Table 1's middle rows).

#![forbid(unsafe_code)]

pub mod machines;
pub mod verify;

pub use verify::{verify_app, verify_app_traced, StarlingConfig, StarlingError, StarlingReport};
