//! Whole-command state-machine adapters for the littlec pipeline levels.

use parfait::StateMachine;
use parfait_littlec::ast::Program;
use parfait_littlec::interp::Interp;
use parfait_littlec::ir::IrProgram;
use parfait_littlec::ireval::IrEval;
use parfait_riscv::model::AsmStateMachine;

/// The "App Impl \[Low\*\]" level: `handle` under the reference
/// interpreter, as a whole-command machine over byte buffers.
pub struct InterpMachine<'p> {
    interp: Interp<'p>,
    response_size: usize,
}

impl<'p> InterpMachine<'p> {
    /// Wrap a type-checked program containing `handle`.
    pub fn new(program: &'p Program, response_size: usize) -> Self {
        InterpMachine { interp: Interp::new(program), response_size }
    }
}

impl StateMachine for InterpMachine<'_> {
    type State = Vec<u8>;
    type Command = Vec<u8>;
    type Response = Vec<u8>;

    fn init(&self) -> Vec<u8> {
        Vec::new() // callers must start from an encoded spec state
    }

    fn step(&self, state: &Vec<u8>, cmd: &Vec<u8>) -> (Vec<u8>, Vec<u8>) {
        self.interp
            .step(state, cmd, self.response_size)
            .unwrap_or_else(|e| panic!("interp-level handle failed: {e}"))
    }
}

/// The "App Impl \[C\]" level: `handle` over the lowered IR.
pub struct IrMachine<'p> {
    eval: IrEval<'p>,
    response_size: usize,
}

impl<'p> IrMachine<'p> {
    /// Wrap a lowered IR program containing `handle`.
    pub fn new(ir: &'p IrProgram, response_size: usize) -> Self {
        IrMachine { eval: IrEval::new(ir), response_size }
    }
}

impl StateMachine for IrMachine<'_> {
    type State = Vec<u8>;
    type Command = Vec<u8>;
    type Response = Vec<u8>;

    fn init(&self) -> Vec<u8> {
        Vec::new()
    }

    fn step(&self, state: &Vec<u8>, cmd: &Vec<u8>) -> (Vec<u8>, Vec<u8>) {
        self.eval
            .step(state, cmd, self.response_size)
            .unwrap_or_else(|e| panic!("IR-level handle failed: {e}"))
    }
}

/// The "App Impl \[Asm\]" level: compiled `handle` under the Riscette
/// machine (fig. 8).
pub struct AsmMachine {
    model: AsmStateMachine,
}

impl AsmMachine {
    /// Wrap a whole-command assembly model.
    pub fn new(model: AsmStateMachine) -> Self {
        AsmMachine { model }
    }

    /// The underlying model.
    pub fn model(&self) -> &AsmStateMachine {
        &self.model
    }
}

impl StateMachine for AsmMachine {
    type State = Vec<u8>;
    type Command = Vec<u8>;
    type Response = Vec<u8>;

    fn init(&self) -> Vec<u8> {
        Vec::new()
    }

    fn step(&self, state: &Vec<u8>, cmd: &Vec<u8>) -> (Vec<u8>, Vec<u8>) {
        self.model.step(state, cmd).unwrap_or_else(|e| panic!("asm-level handle failed: {e}"))
    }
}
