//! The Starling verification driver.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use parfait::lockstep::{
    check_codec_inverse, check_lockstep_simulation, Codec, LockstepDriver, LockstepEmulator,
};
use parfait::world::{check_ipr, Op};
use parfait::StateMachine;
use parfait_littlec::codegen::OptLevel;
use parfait_littlec::ir::lower;
use parfait_littlec::validate::asm_machine;
use parfait_telemetry::Telemetry;

use crate::machines::{AsmMachine, InterpMachine, IrMachine};

/// Configuration for a Starling verification run.
pub struct StarlingConfig {
    /// Buffer sizes of the application.
    pub state_size: usize,
    /// Command buffer size.
    pub command_size: usize,
    /// Response buffer size.
    pub response_size: usize,
    /// How many adversarial (mutated/garbage) inputs to generate.
    pub adversarial_inputs: usize,
    /// RNG seed for reproducibility.
    pub seed: u64,
    /// Optimization levels to validate the compiler pipeline at.
    pub opt_levels: Vec<OptLevel>,
}

impl Default for StarlingConfig {
    fn default() -> Self {
        StarlingConfig {
            state_size: 0,
            command_size: 0,
            response_size: 0,
            adversarial_inputs: 16,
            seed: 0x5747_4C31, // "STGL1"
            opt_levels: vec![OptLevel::O0, OptLevel::O1, OptLevel::O2],
        }
    }
}

/// Summary of a successful verification run (effort numbers for
/// Table 3).
#[derive(Clone, Debug, Default)]
pub struct StarlingReport {
    /// Lockstep (state, input) pairs checked.
    pub lockstep_cases: usize,
    /// Translation-validation executions across levels.
    pub validation_cases: usize,
    /// IPR world-equivalence operations checked.
    pub ipr_operations: usize,
}

/// A Starling verification failure.
#[derive(Debug)]
pub enum StarlingError {
    /// Front-end or compiler error.
    Build(String),
    /// A lockstep obligation failed.
    Lockstep(parfait::lockstep::LockstepViolation),
    /// The compiler pipeline levels disagree.
    Translation(String),
    /// The two worlds diverged.
    Ipr(String),
}

impl std::fmt::Display for StarlingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StarlingError::Build(e) => write!(f, "build failed: {e}"),
            StarlingError::Lockstep(v) => write!(f, "{v}"),
            StarlingError::Translation(e) => write!(f, "translation validation failed: {e}"),
            StarlingError::Ipr(e) => write!(f, "IPR check failed: {e}"),
        }
    }
}

impl std::error::Error for StarlingError {}

/// Verify an application: spec ≈ littlec `handle` (lockstep), littlec
/// levels pairwise equivalent (translation validation), and spec ≈ asm
/// end-to-end (world equivalence).
///
/// * `spec`, `codec` — the app developer's specification and encodings;
/// * `app_source` — littlec source providing `handle`;
/// * `spec_states` — reachable spec states to check from;
/// * `spec_commands` — spec commands whose encodings seed the input set;
/// * `spec_responses` — sample responses for codec inversion.
pub fn verify_app<C>(
    codec: &C,
    spec: &C::Spec,
    app_source: &str,
    config: &StarlingConfig,
    spec_states: &[<C::Spec as StateMachine>::State],
    spec_commands: &[<C::Spec as StateMachine>::Command],
    spec_responses: &[<C::Spec as StateMachine>::Response],
) -> Result<StarlingReport, StarlingError>
where
    C: Codec<CI = Vec<u8>, RI = Vec<u8>, SI = Vec<u8>>,
    <C::Spec as StateMachine>::Command: Clone + PartialEq + std::fmt::Debug,
    <C::Spec as StateMachine>::State: Clone,
{
    verify_app_traced(
        codec,
        spec,
        app_source,
        config,
        spec_states,
        spec_commands,
        spec_responses,
        &Telemetry::disabled(),
    )
}

/// [`verify_app`] with telemetry: one span per proof obligation
/// (`starling.codec_inverse`, `starling.lockstep`,
/// `starling.translation`, `starling.ipr`), littlec per-pass compile
/// spans nested underneath, and counters for the Table 3 effort
/// numbers.
#[allow(clippy::too_many_arguments)]
pub fn verify_app_traced<C>(
    codec: &C,
    spec: &C::Spec,
    app_source: &str,
    config: &StarlingConfig,
    spec_states: &[<C::Spec as StateMachine>::State],
    spec_commands: &[<C::Spec as StateMachine>::Command],
    spec_responses: &[<C::Spec as StateMachine>::Response],
    tel: &Telemetry,
) -> Result<StarlingReport, StarlingError>
where
    C: Codec<CI = Vec<u8>, RI = Vec<u8>, SI = Vec<u8>>,
    <C::Spec as StateMachine>::Command: Clone + PartialEq + std::fmt::Debug,
    <C::Spec as StateMachine>::State: Clone,
{
    let _run_span = tel.span("starling.verify");
    let mut report = StarlingReport::default();
    // Obligation 1: codec inversion.
    {
        let _span = tel.span("starling.codec_inverse");
        check_codec_inverse(codec, spec_commands, spec_responses)
            .map_err(StarlingError::Lockstep)?;
    }

    // Build the input set: encoded valid commands + adversarial inputs.
    let mut inputs: Vec<Vec<u8>> = spec_commands.iter().map(|c| codec.encode_command(c)).collect();
    let mut rng = StdRng::seed_from_u64(config.seed);
    for _ in 0..config.adversarial_inputs {
        let mut buf = vec![0u8; config.command_size];
        rng.fill(&mut buf[..]);
        inputs.push(buf);
    }
    // Mutations of valid commands (bit flips), which often hit the
    // decode boundary cases.
    for c in spec_commands {
        let mut enc = codec.encode_command(c);
        let i = rng.random_range(0..enc.len());
        enc[i] ^= 1u8 << rng.random_range(0..8u8);
        inputs.push(enc);
    }

    // Build the littlec levels.
    let program = parfait_littlec::frontend_traced(app_source, tel)
        .map_err(|e| StarlingError::Build(e.to_string()))?;
    let interp = InterpMachine::new(&program, config.response_size);
    let ir = lower(&program).map_err(|e| StarlingError::Build(e.to_string()))?;
    let irm = IrMachine::new(&ir, config.response_size);

    // Obligation 2: lockstep simulation at the interp (Low*) level.
    {
        let _span = tel.span("starling.lockstep");
        check_lockstep_simulation(codec, spec, &interp, spec_states, &inputs)
            .map_err(StarlingError::Lockstep)?;
    }
    report.lockstep_cases = spec_states.len() * inputs.len();
    tel.count("starling.lockstep_cases", report.lockstep_cases as u64);

    // Obligation 3: translation validation across the pipeline.
    let translation_span = tel.span("starling.translation");
    for opt in &config.opt_levels {
        let asm = asm_machine(
            &program,
            *opt,
            config.state_size,
            config.command_size,
            config.response_size,
        )
        .map_err(|e| StarlingError::Build(e.to_string()))?;
        let asmm = AsmMachine::new(asm);
        for st in spec_states {
            let si = codec.encode_state(st);
            for input in &inputs {
                let a = interp.step(&si, input);
                let b = irm.step(&si, input);
                if a != b {
                    return Err(StarlingError::Translation(format!(
                        "interp vs IR diverge on input {input:02x?}"
                    )));
                }
                let c = asmm.step(&si, input);
                if a != c {
                    return Err(StarlingError::Translation(format!(
                        "IR vs asm ({opt}) diverge on input {input:02x?}"
                    )));
                }
                report.validation_cases += 2;
            }
        }
    }
    drop(translation_span);
    tel.count("starling.validation_cases", report.validation_cases as u64);

    let _ipr_span = tel.span("starling.ipr");
    // Obligation 4: end-to-end IPR between spec and the O2 assembly with
    // the lockstep-derived driver/emulator, over a mixed adversarial
    // trace.
    let asm = asm_machine(
        &program,
        OptLevel::O2,
        config.state_size,
        config.command_size,
        config.response_size,
    )
    .map_err(|e| StarlingError::Build(e.to_string()))?;
    let asmm = AsmWithInit { inner: AsmMachine::new(asm), init: codec.encode_state(&spec.init()) };
    let spec_with_init = SpecRef(spec);
    let driver = LockstepDriver(codec);
    let mut emu = LockstepEmulator(codec);
    let mut ops: Vec<Op<<C::Spec as StateMachine>::Command, Vec<u8>>> = Vec::new();
    for (i, c) in spec_commands.iter().enumerate() {
        ops.push(Op::Spec(c.clone()));
        if let Some(adv) = inputs.get(spec_commands.len() + i) {
            ops.push(Op::Impl(adv.clone()));
        }
    }
    for adv in inputs.iter().skip(spec_commands.len()) {
        ops.push(Op::Impl(adv.clone()));
    }
    report.ipr_operations = ops.len();
    tel.count("starling.ipr_operations", report.ipr_operations as u64);
    check_ipr(&spec_with_init, &asmm, &driver, &mut emu, &ops)
        .map_err(|ce| StarlingError::Ipr(ce.to_string()))?;
    Ok(report)
}

/// Adapter fixing the asm machine's initial state to the encoded spec
/// initial state.
struct AsmWithInit {
    inner: AsmMachine,
    init: Vec<u8>,
}

impl StateMachine for AsmWithInit {
    type State = Vec<u8>;
    type Command = Vec<u8>;
    type Response = Vec<u8>;

    fn init(&self) -> Vec<u8> {
        self.init.clone()
    }

    fn step(&self, s: &Vec<u8>, c: &Vec<u8>) -> (Vec<u8>, Vec<u8>) {
        self.inner.step(s, c)
    }
}

/// A by-reference spec wrapper (the generic checker takes machines by
/// value reference).
struct SpecRef<'a, M>(&'a M);

impl<M: StateMachine> StateMachine for SpecRef<'_, M> {
    type State = M::State;
    type Command = M::Command;
    type Response = M::Response;

    fn init(&self) -> M::State {
        self.0.init()
    }

    fn step(&self, s: &M::State, c: &M::Command) -> (M::State, M::Response) {
        self.0.step(s, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfait::machine::examples::CounterCmd;
    use parfait::machine::FnMachine;

    /// A littlec counter `handle`: state 4 bytes LE; commands as in the
    /// theory-crate examples but sized: [tag, le32] = 5 bytes; response
    /// 4 bytes.
    const COUNTER_LC: &str = "
        void handle(u8* state, u8* cmd, u8* resp) {
            u32* s = (u32*)state;
            u32* r = (u32*)resp;
            u32 arg = cmd[1] | (cmd[2] << 8) | (cmd[3] << 16) | (cmd[4] << 24);
            if (cmd[0] == 1) {
                s[0] = s[0] + arg;
                r[0] = 0;
                return;
            }
            if (cmd[0] == 2) {
                if (arg == 0) {
                    r[0] = s[0];
                    return;
                }
            }
            r[0] = 0xffffffff;
        }
    ";

    struct CounterCodec;

    impl Codec for CounterCodec {
        type Spec = FnMachine<u32, CounterCmd, u32>;
        type CI = Vec<u8>;
        type RI = Vec<u8>;
        type SI = Vec<u8>;

        fn encode_command(&self, c: &CounterCmd) -> Vec<u8> {
            match c {
                CounterCmd::Add(n) => {
                    let mut b = vec![1];
                    b.extend_from_slice(&n.to_le_bytes());
                    b
                }
                CounterCmd::Get => vec![2, 0, 0, 0, 0],
            }
        }
        fn decode_command(&self, c: &Vec<u8>) -> Option<CounterCmd> {
            if c.len() != 5 {
                return None;
            }
            let arg = u32::from_le_bytes([c[1], c[2], c[3], c[4]]);
            match c[0] {
                1 => Some(CounterCmd::Add(arg)),
                2 if arg == 0 => Some(CounterCmd::Get),
                _ => None,
            }
        }
        fn encode_response(&self, r: Option<&u32>) -> Vec<u8> {
            match r {
                Some(v) => v.to_le_bytes().to_vec(),
                None => vec![0xFF; 4],
            }
        }
        fn decode_response(&self, r: &Vec<u8>) -> u32 {
            u32::from_le_bytes([r[0], r[1], r[2], r[3]])
        }
        fn encode_state(&self, s: &u32) -> Vec<u8> {
            s.to_le_bytes().to_vec()
        }
    }

    fn counter_spec() -> FnMachine<u32, CounterCmd, u32> {
        parfait::machine::examples::counter_spec()
    }

    fn config() -> StarlingConfig {
        StarlingConfig {
            state_size: 4,
            command_size: 5,
            response_size: 4,
            ..StarlingConfig::default()
        }
    }

    #[test]
    fn verifies_correct_counter() {
        let report = verify_app(
            &CounterCodec,
            &counter_spec(),
            COUNTER_LC,
            &config(),
            &[0, 1, 41, u32::MAX],
            &[CounterCmd::Add(0), CounterCmd::Add(7), CounterCmd::Get],
            &[0, 7, u32::MAX],
        )
        .unwrap();
        assert!(report.lockstep_cases > 0);
        assert!(report.validation_cases > 0);
        assert!(report.ipr_operations > 0);
    }

    #[test]
    fn catches_state_leak_on_invalid_input() {
        // Bug: the error path leaks the counter value (the paper's
        // "software-level leakage" bug class, §7.2).
        let leaky = COUNTER_LC.replace("r[0] = 0xffffffff;", "r[0] = s[0];");
        let err = verify_app(
            &CounterCodec,
            &counter_spec(),
            &leaky,
            &config(),
            &[41],
            &[CounterCmd::Add(1)],
            &[0],
        )
        .unwrap_err();
        assert!(matches!(err, StarlingError::Lockstep(_)), "{err}");
    }

    #[test]
    fn catches_logic_bug() {
        // Bug: Add is off by one (the "software logic bug" class).
        let buggy = COUNTER_LC.replace("s[0] = s[0] + arg;", "s[0] = s[0] + arg + 1;");
        let err = verify_app(
            &CounterCodec,
            &counter_spec(),
            &buggy,
            &config(),
            &[0, 5],
            &[CounterCmd::Add(3), CounterCmd::Get],
            &[0],
        )
        .unwrap_err();
        assert!(matches!(err, StarlingError::Lockstep(_)), "{err}");
    }

    #[test]
    fn catches_state_mutation_on_invalid_input() {
        // Bug: invalid commands clobber the state.
        let buggy = COUNTER_LC.replace("r[0] = 0xffffffff;", "s[0] = 0; r[0] = 0xffffffff;");
        let err = verify_app(
            &CounterCodec,
            &counter_spec(),
            &buggy,
            &config(),
            &[9],
            &[CounterCmd::Get],
            &[0],
        )
        .unwrap_err();
        assert!(matches!(err, StarlingError::Lockstep(_)), "{err}");
    }
}
