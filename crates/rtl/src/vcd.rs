//! Value Change Dump (VCD) export of wire traces.
//!
//! When a Knox2 run diverges, dumping both worlds' traces as VCD lets
//! the developer inspect the exact cycle in any waveform viewer
//! (GTKWave etc.) — the visual counterpart of the paper's §8.1
//! debugging workflow.

use std::fmt::Write as _;

use crate::circuit::Trace;

/// Render a trace as a VCD document with the three observable signals:
/// `rx_ready`, `tx_valid`, and `tx_data[7:0]`. `name` labels the module
/// scope (e.g. `"real"` or `"ideal"`).
pub fn trace_to_vcd(name: &str, trace: &Trace) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "$date reproduction run $end");
    let _ = writeln!(out, "$version parfait-rtl $end");
    let _ = writeln!(out, "$timescale 1ns $end");
    let _ = writeln!(out, "$scope module {name} $end");
    let _ = writeln!(out, "$var wire 1 r rx_ready $end");
    let _ = writeln!(out, "$var wire 1 v tx_valid $end");
    let _ = writeln!(out, "$var wire 8 d tx_data [7:0] $end");
    let _ = writeln!(out, "$upscope $end");
    let _ = writeln!(out, "$enddefinitions $end");
    let mut prev: Option<(bool, bool, u8)> = None;
    for (cycle, &(rx_ready, tx_valid, tx_data)) in trace.events.iter().enumerate() {
        let changed = match prev {
            None => (true, true, true),
            Some((pr, pv, pd)) => (pr != rx_ready, pv != tx_valid, pd != tx_data),
        };
        if changed.0 || changed.1 || changed.2 {
            let _ = writeln!(out, "#{cycle}");
            if changed.0 {
                let _ = writeln!(out, "{}r", rx_ready as u8);
            }
            if changed.1 {
                let _ = writeln!(out, "{}v", tx_valid as u8);
            }
            if changed.2 {
                let _ = writeln!(out, "b{tx_data:08b} d");
            }
        }
        prev = Some((rx_ready, tx_valid, tx_data));
    }
    let _ = writeln!(out, "#{}", trace.events.len());
    out
}

/// Record a trace while running a closure over a circuit.
pub fn record<C: crate::circuit::Circuit>(
    circuit: &mut C,
    cycles: u64,
) -> Trace {
    let mut t = Trace::default();
    for _ in 0..cycles {
        t.sample(circuit);
        circuit.tick();
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vcd_structure_and_changes() {
        let trace = Trace {
            events: vec![
                (true, false, 0),
                (true, false, 0), // no change: no timestamp emitted
                (true, true, 0x5A),
                (true, false, 0),
            ],
        };
        let vcd = trace_to_vcd("real", &trace);
        assert!(vcd.contains("$scope module real $end"));
        assert!(vcd.contains("$var wire 8 d tx_data"));
        // Initial values at #0.
        assert!(vcd.contains("#0\n1r\n0v\nb00000000 d"));
        // The change at cycle 2.
        assert!(vcd.contains("#2\n1v\nb01011010 d"));
        // No #1 section (nothing changed).
        assert!(!vcd.contains("#1\n"));
        // Final timestamp closes the dump.
        assert!(vcd.ends_with("#4\n"));
    }

    #[test]
    fn empty_trace_is_valid() {
        let vcd = trace_to_vcd("x", &Trace::default());
        assert!(vcd.contains("$enddefinitions"));
        assert!(vcd.ends_with("#0\n"));
    }
}
