//! Value Change Dump (VCD) export of wire traces.
//!
//! When a Knox2 run diverges, dumping both worlds' traces as VCD lets
//! the developer inspect the exact cycle in any waveform viewer
//! (GTKWave etc.) — the visual counterpart of the paper's §8.1
//! debugging workflow.

use std::fmt::Write as _;

use crate::circuit::Trace;

/// Render a trace as a VCD document with the three observable signals:
/// `rx_ready`, `tx_valid`, and `tx_data[7:0]`. `name` labels the module
/// scope (e.g. `"real"` or `"ideal"`).
pub fn trace_to_vcd(name: &str, trace: &Trace) -> String {
    let mut out = String::new();
    write_header(&mut out);
    write_scope_vars(&mut out, name, ['r', 'v', 'd']);
    let _ = writeln!(out, "$enddefinitions $end");
    write_changes(&mut out, &[(trace, ['r', 'v', 'd'])], trace.events.len());
    out
}

/// Render two traces of the same run — conventionally the real SoC and
/// the ideal (emulated) world — as sibling scopes in one VCD document,
/// so a waveform viewer shows them stacked and the divergence cycle is
/// visible at a glance.
pub fn dual_trace_to_vcd(name_a: &str, trace_a: &Trace, name_b: &str, trace_b: &Trace) -> String {
    let mut out = String::new();
    write_header(&mut out);
    // Distinct id chars per scope: lower-case for the first world,
    // upper-case for the second.
    write_scope_vars(&mut out, name_a, ['r', 'v', 'd']);
    write_scope_vars(&mut out, name_b, ['R', 'V', 'D']);
    let _ = writeln!(out, "$enddefinitions $end");
    let len = trace_a.events.len().max(trace_b.events.len());
    write_changes(&mut out, &[(trace_a, ['r', 'v', 'd']), (trace_b, ['R', 'V', 'D'])], len);
    out
}

fn write_header(out: &mut String) {
    let _ = writeln!(out, "$date reproduction run $end");
    let _ = writeln!(out, "$version parfait-rtl $end");
    let _ = writeln!(out, "$timescale 1ns $end");
}

fn write_scope_vars(out: &mut String, name: &str, ids: [char; 3]) {
    let _ = writeln!(out, "$scope module {name} $end");
    let _ = writeln!(out, "$var wire 1 {} rx_ready $end", ids[0]);
    let _ = writeln!(out, "$var wire 1 {} tx_valid $end", ids[1]);
    let _ = writeln!(out, "$var wire 8 {} tx_data [7:0] $end", ids[2]);
    let _ = writeln!(out, "$upscope $end");
}

/// Emit change-only value sections (`#cycle` plus changed signals) for
/// any number of traces sharing the timeline, closing at `#len`.
fn write_changes(out: &mut String, traces: &[(&Trace, [char; 3])], len: usize) {
    let mut prev: Vec<Option<(bool, bool, u8)>> = vec![None; traces.len()];
    for cycle in 0..len {
        let mut section = String::new();
        for (slot, (trace, ids)) in traces.iter().enumerate() {
            let Some(&(rx_ready, tx_valid, tx_data)) = trace.events.get(cycle) else {
                continue;
            };
            let changed = match prev[slot] {
                None => (true, true, true),
                Some((pr, pv, pd)) => (pr != rx_ready, pv != tx_valid, pd != tx_data),
            };
            if changed.0 {
                let _ = writeln!(section, "{}{}", rx_ready as u8, ids[0]);
            }
            if changed.1 {
                let _ = writeln!(section, "{}{}", tx_valid as u8, ids[1]);
            }
            if changed.2 {
                let _ = writeln!(section, "b{tx_data:08b} {}", ids[2]);
            }
            prev[slot] = Some((rx_ready, tx_valid, tx_data));
        }
        if !section.is_empty() {
            let _ = writeln!(out, "#{cycle}");
            out.push_str(&section);
        }
    }
    let _ = writeln!(out, "#{len}");
}

/// Record a trace while running a closure over a circuit.
pub fn record<C: crate::circuit::Circuit>(circuit: &mut C, cycles: u64) -> Trace {
    let mut t = Trace::default();
    for _ in 0..cycles {
        t.sample(circuit);
        circuit.tick();
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vcd_structure_and_changes() {
        let trace = Trace {
            events: vec![
                (true, false, 0),
                (true, false, 0), // no change: no timestamp emitted
                (true, true, 0x5A),
                (true, false, 0),
            ],
        };
        let vcd = trace_to_vcd("real", &trace);
        assert!(vcd.contains("$scope module real $end"));
        assert!(vcd.contains("$var wire 8 d tx_data"));
        // Initial values at #0.
        assert!(vcd.contains("#0\n1r\n0v\nb00000000 d"));
        // The change at cycle 2.
        assert!(vcd.contains("#2\n1v\nb01011010 d"));
        // No #1 section (nothing changed).
        assert!(!vcd.contains("#1\n"));
        // Final timestamp closes the dump.
        assert!(vcd.ends_with("#4\n"));
    }

    #[test]
    fn empty_trace_is_valid() {
        let vcd = trace_to_vcd("x", &Trace::default());
        assert!(vcd.contains("$enddefinitions"));
        assert!(vcd.ends_with("#0\n"));
    }

    #[test]
    fn dual_trace_sibling_scopes() {
        let real = Trace { events: vec![(true, false, 0), (true, true, 0xAA)] };
        let ideal = Trace { events: vec![(true, false, 0), (true, false, 0)] };
        let vcd = dual_trace_to_vcd("real", &real, "ideal", &ideal);
        assert!(vcd.contains("$scope module real $end"));
        assert!(vcd.contains("$scope module ideal $end"));
        // Both worlds' initial values share the #0 section; the ids are
        // disjoint between scopes.
        assert!(vcd.contains("#0\n1r\n0v\nb00000000 d\n1R\n0V\nb00000000 D\n"));
        // Only the real world changes at cycle 1.
        assert!(vcd.contains("#1\n1v\nb10101010 d\n#2\n"));
        assert!(!vcd.contains("1V\nb10101010 D"));
        assert!(vcd.ends_with("#2\n"));
    }

    #[test]
    fn dual_trace_handles_unequal_lengths() {
        let a = Trace { events: vec![(true, false, 1), (true, false, 2), (true, false, 3)] };
        let b = Trace { events: vec![(false, false, 1)] };
        let vcd = dual_trace_to_vcd("real", &a, "ideal", &b);
        assert!(vcd.ends_with("#3\n"), "closes at the longer trace");
        assert!(vcd.contains("b00000011 d"), "real's cycle-2 data present");
    }
}
