//! The circuit-level state-machine interface and wire traces.

use crate::value::W;

/// Input wires of an HSM SoC, as seen by the adversary/driver
/// (a byte-parallel abstraction of the paper's 4-wire UART with flow
/// control).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireIn {
    /// Host asserts: a byte is offered on `rx_data`.
    pub rx_valid: bool,
    /// The offered byte.
    pub rx_data: u8,
    /// Host asserts: it can accept a byte on `tx_data`.
    pub tx_ready: bool,
}

/// Output wires of an HSM SoC.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireOut {
    /// Device asserts: it can accept the offered byte this cycle.
    pub rx_ready: bool,
    /// Device asserts: a byte is offered on `tx_data`.
    pub tx_valid: bool,
    /// The offered byte.
    pub tx_data: u8,
    /// Taint of the offered byte (diagnostic; not a real wire).
    pub tx_taint: bool,
}

impl WireOut {
    /// The observable (wire-level) portion, ignoring taint metadata.
    pub fn observable(&self) -> (bool, bool, u8) {
        (self.rx_ready, self.tx_valid, if self.tx_valid { self.tx_data } else { 0 })
    }
}

/// A cycle-precise circuit: the bottom level of abstraction (Table 1).
///
/// The three methods correspond exactly to the three commands of the
/// circuit-level state machine in §3: `set_input(...)`, `get_output()`,
/// and `tick()`.
pub trait Circuit {
    /// Drive the input wires for the upcoming cycle.
    fn set_input(&mut self, input: WireIn);

    /// Sample the output wires.
    fn get_output(&self) -> WireOut;

    /// Advance one clock cycle.
    fn tick(&mut self);

    /// Number of cycles elapsed since construction/reset.
    fn cycles(&self) -> u64;
}

/// One sampled cycle of observable wire outputs.
pub type TraceEvent = (bool, bool, u8);

/// A wire-level trace: the adversary's complete view of an execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// Observable outputs, one per cycle.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Record the current outputs of `c`.
    pub fn sample(&mut self, c: &dyn Circuit) {
        self.events.push(c.get_output().observable());
    }

    /// First cycle at which the two traces differ, if any.
    pub fn first_divergence(&self, other: &Trace) -> Option<usize> {
        let n = self.events.len().min(other.events.len());
        for i in 0..n {
            if self.events[i] != other.events[i] {
                return Some(i);
            }
        }
        if self.events.len() != other.events.len() {
            Some(n)
        } else {
            None
        }
    }
}

/// A bounded wire-level trace: keeps only the most recent `capacity`
/// cycles, overwriting the oldest. Long FPS runs record into this
/// instead of an unbounded [`Trace`], so a week-long check with VCD
/// capture enabled holds a fixed window of history rather than the
/// whole execution.
#[derive(Clone, Debug)]
pub struct RingTrace {
    buf: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the next write (== oldest element once full).
    head: usize,
    /// Total events ever pushed.
    total: u64,
}

impl RingTrace {
    /// An empty ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> RingTrace {
        let capacity = capacity.max(1);
        RingTrace { buf: Vec::with_capacity(capacity.min(1 << 16)), capacity, head: 0, total: 0 }
    }

    /// Record one cycle, evicting the oldest if full.
    pub fn push(&mut self, e: TraceEvent) {
        if self.buf.len() < self.capacity {
            self.buf.push(e);
        } else {
            self.buf[self.head] = e;
            self.head = (self.head + 1) % self.capacity;
        }
        self.total += 1;
    }

    /// Total events ever pushed (≥ the retained count).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Cycle index of the oldest retained event.
    pub fn first_cycle(&self) -> u64 {
        self.total - self.buf.len() as u64
    }

    /// The retained window, oldest first, as a [`Trace`].
    pub fn to_trace(&self) -> Trace {
        let mut events = Vec::with_capacity(self.buf.len());
        events.extend_from_slice(&self.buf[self.head..]);
        events.extend_from_slice(&self.buf[..self.head]);
        Trace { events }
    }
}

/// Helper: an untainted byte as a word.
pub fn byte(b: u8) -> W {
    W::pub32(b as u32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_divergence() {
        let a = Trace { events: vec![(true, false, 0), (true, true, 5)] };
        let b = Trace { events: vec![(true, false, 0), (true, true, 6)] };
        assert_eq!(a.first_divergence(&b), Some(1));
        assert_eq!(a.first_divergence(&a), None);
        let c = Trace { events: vec![(true, false, 0)] };
        assert_eq!(a.first_divergence(&c), Some(1));
    }

    #[test]
    fn ring_trace_keeps_a_sliding_window() {
        let mut r = RingTrace::new(4);
        for i in 0..10u8 {
            r.push((false, true, i));
        }
        assert_eq!(r.total(), 10);
        assert_eq!(r.first_cycle(), 6);
        let t = r.to_trace();
        assert_eq!(
            t.events,
            vec![(false, true, 6), (false, true, 7), (false, true, 8), (false, true, 9)]
        );
    }

    #[test]
    fn ring_trace_below_capacity_is_complete() {
        let mut r = RingTrace::new(8);
        r.push((true, false, 0));
        r.push((true, true, 1));
        assert_eq!(r.first_cycle(), 0);
        assert_eq!(r.to_trace().events, vec![(true, false, 0), (true, true, 1)]);
    }

    #[test]
    fn observable_masks_invalid_data() {
        let w = WireOut { rx_ready: true, tx_valid: false, tx_data: 42, tx_taint: false };
        assert_eq!(w.observable(), (true, false, 0));
    }
}
