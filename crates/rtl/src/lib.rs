//! parfait-rtl — a cycle-accurate hardware modeling kit with
//! information-flow (taint) tracking.
//!
//! In the paper, the SoC is written in Verilog and converted by Yosys
//! into a step model that Knox2 executes symbolically, with secret data
//! represented as symbolic variables. This crate is the executable
//! stand-in: hardware is modeled as Rust structs with an explicit
//! [`Circuit`] cycle-step interface (`set_input` / `get_output` /
//! `tick`, exactly the three commands of the circuit-level state machine
//! in §3), and every stored word carries a **taint bit** standing in for
//! "symbolic secret". Where Knox2's solver would prove that no secret
//! influences wire-level behaviour, our checker observes that no tainted
//! value reaches an output wire's *presence* (handshake timing) or the
//! processor's control state — and backs it with two-run trace
//! equivalence (see `parfait-knox2`).

#![forbid(unsafe_code)]

pub mod circuit;
pub mod fifo;
pub mod mem;
pub mod value;
pub mod vcd;

pub use circuit::{Circuit, RingTrace, Trace, TraceEvent, WireIn, WireOut};
pub use fifo::Fifo;
pub use mem::TaintMem;
pub use value::W;
