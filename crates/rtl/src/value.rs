//! Tainted 32-bit words.

use std::ops;

/// A 32-bit hardware word carrying a taint bit.
///
/// Taint marks data derived from HSM secrets (the persistent state).
/// Taint propagates through every data operation; it stands in for the
/// symbolic variables Knox2 would track. A word-granularity bit is a
/// sound over-approximation of bit-level flows.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct W {
    /// The value.
    pub v: u32,
    /// Whether the value (possibly) depends on secret data.
    pub t: bool,
}

impl W {
    /// An untainted (public) word.
    pub fn pub32(v: u32) -> W {
        W { v, t: false }
    }

    /// A tainted (secret-derived) word.
    pub fn secret(v: u32) -> W {
        W { v, t: true }
    }

    /// Apply a binary operation, joining taints.
    pub fn bin(self, other: W, f: impl Fn(u32, u32) -> u32) -> W {
        W { v: f(self.v, other.v), t: self.t || other.t }
    }

    /// Apply a unary operation, preserving taint.
    pub fn map(self, f: impl Fn(u32) -> u32) -> W {
        W { v: f(self.v), t: self.t }
    }
}

impl ops::BitAnd for W {
    type Output = W;
    fn bitand(self, rhs: W) -> W {
        self.bin(rhs, |a, b| a & b)
    }
}

impl ops::BitOr for W {
    type Output = W;
    fn bitor(self, rhs: W) -> W {
        self.bin(rhs, |a, b| a | b)
    }
}

impl ops::BitXor for W {
    type Output = W;
    fn bitxor(self, rhs: W) -> W {
        self.bin(rhs, |a, b| a ^ b)
    }
}

impl ops::Add for W {
    type Output = W;
    fn add(self, rhs: W) -> W {
        self.bin(rhs, u32::wrapping_add)
    }
}

impl ops::Sub for W {
    type Output = W;
    fn sub(self, rhs: W) -> W {
        self.bin(rhs, u32::wrapping_sub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taint_propagates() {
        let a = W::secret(1);
        let b = W::pub32(2);
        assert!((a + b).t);
        assert!(!(b + b).t);
        assert_eq!((a + b).v, 3);
        assert!((a ^ a).t, "taint is syntactic, not semantic");
    }

    #[test]
    fn map_keeps_taint() {
        assert!(W::secret(4).map(|x| x << 1).t);
        assert_eq!(W::pub32(4).map(|x| x << 1).v, 8);
    }
}
