//! Word-addressed memories with taint tracking.

use crate::value::W;

/// A word-addressed memory of tainted 32-bit words (models RAM, FRAM, or
/// an initialized ROM block).
#[derive(Clone)]
pub struct TaintMem {
    words: Vec<W>,
    /// Whether writes are permitted (false for ROM).
    pub writable: bool,
}

impl TaintMem {
    /// A zeroed writable memory with space for `bytes` bytes.
    pub fn new(bytes: usize) -> TaintMem {
        TaintMem { words: vec![W::default(); bytes.div_ceil(4)], writable: true }
    }

    /// A read-only memory initialized from a byte image (untainted).
    pub fn rom(image: &[u8], bytes: usize) -> TaintMem {
        let mut m = TaintMem::new(bytes.max(image.len()));
        m.load_bytes(0, image, false);
        m.writable = false;
        m
    }

    /// Size in bytes.
    pub fn len_bytes(&self) -> usize {
        self.words.len() * 4
    }

    /// Bulk-load a byte image at a word-aligned offset with given taint.
    pub fn load_bytes(&mut self, offset: usize, bytes: &[u8], taint: bool) {
        assert_eq!(offset % 4, 0, "word-aligned offsets only");
        for (i, chunk) in bytes.chunks(4).enumerate() {
            let mut buf = [0u8; 4];
            buf[..chunk.len()].copy_from_slice(chunk);
            // Partial trailing chunk keeps existing upper bytes.
            let idx = offset / 4 + i;
            if chunk.len() < 4 {
                let old = self.words[idx].v.to_le_bytes();
                buf[chunk.len()..].copy_from_slice(&old[chunk.len()..]);
            }
            self.words[idx] = W { v: u32::from_le_bytes(buf), t: taint };
        }
    }

    /// Dump `len` bytes starting at a word-aligned offset (values only).
    pub fn dump_bytes(&self, offset: usize, len: usize) -> Vec<u8> {
        assert_eq!(offset % 4, 0);
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            let w = self.words[(offset + i) / 4];
            out.push((w.v >> (8 * ((offset + i) % 4))) as u8);
        }
        out
    }

    /// Read the word containing byte offset `off` (must be in range).
    pub fn read_word(&self, off: u32) -> W {
        self.words[(off / 4) as usize]
    }

    /// Write a word with a byte-lane mask (bit i of `mask` enables byte i).
    pub fn write_word(&mut self, off: u32, val: W, mask: u8) {
        if !self.writable {
            return;
        }
        let idx = (off / 4) as usize;
        let old = self.words[idx];
        if mask == 0xF {
            self.words[idx] = val;
            return;
        }
        let mut v = old.v;
        for lane in 0..4 {
            if mask & (1 << lane) != 0 {
                let sh = 8 * lane;
                v = (v & !(0xFF << sh)) | (val.v & (0xFF << sh));
            }
        }
        // A partial write mixes old and new data: join taints.
        self.words[idx] = W { v, t: old.t || val.t };
    }

    /// Whether any word in the given byte range is tainted.
    pub fn any_tainted(&self, offset: usize, len: usize) -> bool {
        self.words[offset / 4..(offset + len).div_ceil(4)].iter().any(|w| w.t)
    }

    /// Set the taint of a byte range (word granularity).
    pub fn set_taint(&mut self, offset: usize, len: usize, taint: bool) {
        for w in &mut self.words[offset / 4..(offset + len).div_ceil(4)] {
            w.t = taint;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_dump_roundtrip() {
        let mut m = TaintMem::new(64);
        m.load_bytes(8, &[1, 2, 3, 4, 5], false);
        assert_eq!(m.dump_bytes(8, 5), vec![1, 2, 3, 4, 5]);
        assert_eq!(m.dump_bytes(12, 4), vec![5, 0, 0, 0]);
    }

    #[test]
    fn byte_lane_writes() {
        let mut m = TaintMem::new(16);
        m.write_word(0, W::pub32(0xAABBCCDD), 0xF);
        m.write_word(0, W::pub32(0x0000_0011), 0x1);
        assert_eq!(m.read_word(0).v, 0xAABBCC11);
        m.write_word(0, W::pub32(0x2200_0000), 0x8);
        assert_eq!(m.read_word(0).v, 0x22BBCC11);
    }

    #[test]
    fn rom_ignores_writes() {
        let mut m = TaintMem::rom(&[1, 2, 3, 4], 16);
        m.write_word(0, W::pub32(0xFFFF_FFFF), 0xF);
        assert_eq!(m.read_word(0).v, 0x04030201);
    }

    #[test]
    fn taint_on_partial_write_joins() {
        let mut m = TaintMem::new(16);
        m.write_word(0, W::secret(0xFFFF_FFFF), 0xF);
        m.write_word(0, W::pub32(0x11), 0x1);
        assert!(m.read_word(0).t, "old secret bytes remain in the word");
        m.write_word(0, W::pub32(0), 0xF);
        assert!(!m.read_word(0).t);
    }

    #[test]
    fn taint_ranges() {
        let mut m = TaintMem::new(64);
        m.set_taint(16, 8, true);
        assert!(m.any_tainted(16, 8));
        assert!(!m.any_tainted(0, 16));
        assert!(m.any_tainted(20, 4));
        m.set_taint(16, 8, false);
        assert!(!m.any_tainted(0, 64));
    }
}
