//! A small synchronous FIFO with taint-carrying entries.

use std::collections::VecDeque;

use crate::value::W;

/// A bounded FIFO of tainted bytes (stored as words).
#[derive(Clone)]
pub struct Fifo {
    q: VecDeque<W>,
    cap: usize,
    hwm: usize,
}

impl Fifo {
    /// An empty FIFO with capacity `cap`.
    pub fn new(cap: usize) -> Fifo {
        Fifo { q: VecDeque::with_capacity(cap), cap, hwm: 0 }
    }

    /// Whether a push would be accepted.
    pub fn can_push(&self) -> bool {
        self.q.len() < self.cap
    }

    /// Whether a pop would succeed.
    pub fn can_pop(&self) -> bool {
        !self.q.is_empty()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Whether the FIFO is empty.
    pub fn is_empty(&self) -> bool {
        self.q.is_empty()
    }

    /// Push; returns false when full.
    pub fn push(&mut self, w: W) -> bool {
        if self.can_push() {
            self.q.push_back(w);
            self.hwm = self.hwm.max(self.q.len());
            true
        } else {
            false
        }
    }

    /// Highest occupancy ever reached (for sizing/telemetry).
    pub fn high_water(&self) -> usize {
        self.hwm
    }

    /// Pop the oldest entry.
    pub fn pop(&mut self) -> Option<W> {
        self.q.pop_front()
    }

    /// Peek at the oldest entry without removing it.
    pub fn peek(&self) -> Option<W> {
        self.q.front().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity() {
        let mut f = Fifo::new(2);
        assert!(f.push(W::pub32(1)));
        assert!(f.push(W::pub32(2)));
        assert!(!f.push(W::pub32(3)), "full");
        assert_eq!(f.pop().unwrap().v, 1);
        assert_eq!(f.peek().unwrap().v, 2);
        assert_eq!(f.pop().unwrap().v, 2);
        assert!(f.pop().is_none());
    }

    #[test]
    fn high_water_persists_across_drain() {
        let mut f = Fifo::new(4);
        assert_eq!(f.high_water(), 0);
        f.push(W::pub32(1));
        f.push(W::pub32(2));
        f.push(W::pub32(3));
        f.pop();
        f.pop();
        f.pop();
        assert!(f.is_empty());
        assert_eq!(f.high_water(), 3, "mark survives the drain");
        f.push(W::pub32(4));
        assert_eq!(f.high_water(), 3, "refilling below the mark keeps it");
    }
}
