//! Property-based tests for the hardware kit: taint soundness and
//! memory correctness under random operation sequences.

use proptest::prelude::*;

use parfait_rtl::{Fifo, TaintMem, W};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// TaintMem byte-lane writes match a simple byte-array reference
    /// model, and taint never disappears while tainted bytes remain.
    #[test]
    fn taintmem_matches_reference(ops in prop::collection::vec(
        (0u32..16, any::<u32>(), 0u8..16, any::<bool>()), 1..64)) {
        let mut mem = TaintMem::new(64);
        let mut reference = [0u8; 64];
        for (word, val, mask, taint) in ops {
            let w = W { v: val, t: taint };
            mem.write_word(word * 4, w, mask);
            for lane in 0..4 {
                if mask & (1 << lane) != 0 {
                    reference[(word * 4 + lane) as usize] = (val >> (8 * lane)) as u8;
                }
            }
        }
        prop_assert_eq!(mem.dump_bytes(0, 64), reference.to_vec());
    }

    /// Taint is monotone under partial writes: writing a tainted value
    /// taints the word; fully overwriting with untainted clears it.
    #[test]
    fn taint_life_cycle(word in 0u32..8, val: u32) {
        let mut mem = TaintMem::new(32);
        mem.write_word(word * 4, W::secret(val), 0x3);
        prop_assert!(mem.read_word(word * 4).t);
        // Partial untainted write keeps the taint (secret bytes remain).
        mem.write_word(word * 4, W::pub32(0), 0x1);
        prop_assert!(mem.read_word(word * 4).t);
        // Full untainted overwrite clears it.
        mem.write_word(word * 4, W::pub32(0), 0xF);
        prop_assert!(!mem.read_word(word * 4).t);
    }

    /// FIFO preserves order and taint, and never exceeds capacity.
    #[test]
    fn fifo_order_taint(items in prop::collection::vec((any::<u32>(), any::<bool>()), 0..40)) {
        let mut f = Fifo::new(16);
        let mut model: Vec<(u32, bool)> = Vec::new();
        for (v, t) in items {
            if f.push(W { v, t }) {
                model.push((v, t));
            }
            prop_assert!(f.len() <= 16);
        }
        for (v, t) in model {
            let w = f.pop().expect("model says non-empty");
            prop_assert_eq!((w.v, w.t), (v, t));
        }
        prop_assert!(f.is_empty());
    }

    /// Taint join in the word algebra is an upper bound.
    #[test]
    fn word_ops_taint_join(a: u32, b: u32, ta: bool, tb: bool) {
        let x = W { v: a, t: ta };
        let y = W { v: b, t: tb };
        for r in [x + y, x - y, x & y, x | y, x ^ y] {
            prop_assert_eq!(r.t, ta || tb);
        }
    }
}
