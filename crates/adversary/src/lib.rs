//! parfait-adversary — cross-level mutation testing for the proof
//! pipeline.
//!
//! The pipeline's seven stages each claim to catch a family of bugs:
//! Starling lockstep catches functional divergence from the spec,
//! translation validation catches miscompilation, the constant-time
//! lint catches secret-dependent control flow (and, via CT-ABI,
//! callee-saved clobbers), the contract battery catches a core
//! breaking its declared leakage contract, the bound analysis catches
//! stack-discipline and loop-bound faults, and FPS catches everything
//! else below the assembly contract — encoder bugs, SoC peripheral
//! bugs, and defects in the verifier's own emulator template. Those claims are tested nowhere:
//! every checker in the repo is only ever run on *correct* inputs.
//!
//! This crate closes that loop. [`catalog`] enumerates classified
//! faults seeded at six implementation levels — crypto source, codegen
//! output, ROM instruction encoding, core datapath, SoC peripherals,
//! and the emulator itself — and [`runner`] drives each mutant through
//! the full staged pipeline, recording which stage kills it. The
//! resulting `(level × stage)` detection matrix is ratcheted in
//! `mutation_baseline.json` ([`baseline`]): a mutant surviving, or
//! dying at a different stage than recorded, fails CI.
//!
//! Mutants are content-addressed like any other app: a tampered app
//! folds its fingerprint into the below-source stage cache keys, so
//! mutant certificates never alias the clean ones, while the untouched
//! software stages of tamper-only mutants still share the clean
//! certificates (see `tests/pipeline_cache.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod catalog;
pub mod fixtures;
pub mod runner;

pub use baseline::{diff, Baseline, Diff, Violation};
pub use catalog::{catalog, controls, Level, Mutation};
pub use runner::{
    reports_to_json, run_catalog, run_mutant, Matrix, MutantReport, MUTANT_FPS_TIMEOUT,
};
