//! Drive mutants through the seven-stage pipeline and record which
//! stage kills each one.
//!
//! A mutant "run" is the same staged verification a production app
//! gets — speccheck, lockstep, equivalence, ctcheck, then the core's
//! contract battery, then the static resource-bound analysis, then
//! FPS — except
//! the FPS cycle budget is bounded: a mutation that wedges the firmware
//! (a lost return address, a clobbered stack pointer) must fail the run
//! in seconds, not simulate the production 8-billion-cycle budget to a
//! timeout. The bound matches the repo's integration-test budget and
//! sits two orders of magnitude above any fixture's honest run, so it
//! never masks a slow-but-correct mutant.
//!
//! Kill attribution parses the `[stage]` prefix that
//! [`parfait_pipeline::Pipeline`] wraps every stage error in; the
//! bounded FPS path reproduces the same prefix, so one parser covers
//! both.

use std::time::{Duration, Instant};

use parfait_knox2::FpsObserver;
use parfait_parallel::parallel_map;
use parfait_pipeline::{Pipeline, StageKind};
use parfait_telemetry::json::Json;

use crate::catalog::{Level, Mutation};

/// FPS cycle budget per mutant (see module docs).
pub const MUTANT_FPS_TIMEOUT: u64 = 5_000_000;

/// The outcome of one mutant run.
pub struct MutantReport {
    /// The mutation class.
    pub class: String,
    /// The level the fault was seeded at.
    pub level: Level,
    /// The stage that killed it, or `None` for a survivor.
    pub killed_by: Option<StageKind>,
    /// The killing stage's error message (empty for survivors).
    pub detail: String,
    /// Wall time for the whole run.
    pub wall: Duration,
}

impl MutantReport {
    /// `"killed:<stage>"` or `"survived"`.
    pub fn verdict(&self) -> String {
        match self.killed_by {
            Some(stage) => format!("killed:{stage}"),
            None => "survived".to_string(),
        }
    }
}

/// Attribute a pipeline error to its stage via the `[stage] ` prefix.
fn parse_kill(err: &str) -> (Option<StageKind>, String) {
    if let Some(rest) = err.strip_prefix('[') {
        if let Some((stage, detail)) = rest.split_once("] ") {
            if let Some(kind) = StageKind::from_name(stage) {
                return (Some(kind), detail.to_string());
            }
        }
    }
    // An unattributed error (build failure, compose error) is *not* a
    // stage kill; surface it verbatim so the harness fails loudly.
    (None, err.to_string())
}

/// Run one mutant through all seven stages, in the execution order
/// `verify_cell` uses: the contract battery runs before FPS, so a core
/// whose observables break its declared contract dies there with a
/// named instruction class instead of as an opaque FPS divergence, and
/// the static bound analysis runs before FPS so a firmware whose
/// resource envelope is unprovable never reaches the simulator.
/// `threads` is the FPS segment-worker budget for this mutant.
pub fn run_mutant(pipeline: &Pipeline, m: &Mutation, threads: usize) -> MutantReport {
    let t0 = Instant::now();
    let app = (m.build)();
    let obs = FpsObserver { telemetry: pipeline.tel.clone(), heartbeat_cycles: 0, cell: 0 };
    let outcome = pipeline
        .software_stages(&app, m.opt)
        .and_then(|_| pipeline.contract_stage(&app, m.cpu).map(|_| ()))
        .and_then(|_| pipeline.bound_stage(&app, m.cpu, m.opt).map(|_| ()))
        .and_then(|_| {
            pipeline
                .run_fps(&app, m.cpu, m.opt, &obs, threads, MUTANT_FPS_TIMEOUT)
                .map(|_| ())
                .map_err(|e| format!("[fps] {e}"))
        });
    let (killed_by, detail) = match outcome {
        Ok(()) => (None, String::new()),
        Err(e) => parse_kill(&e),
    };
    MutantReport {
        class: m.class.to_string(),
        level: m.level,
        killed_by,
        detail,
        wall: t0.elapsed(),
    }
}

/// Run a set of mutations, fanning mutants out over the thread budget.
///
/// Each mutant runs its FPS single-segment (mutants die in a few
/// thousand cycles; the parallelism that pays is across mutants, not
/// within one). The shared certificate cache is consulted per stage, so
/// tamper-only mutants reuse the clean software certificates.
pub fn run_catalog(pipeline: &Pipeline, muts: &[Mutation], threads: usize) -> Vec<MutantReport> {
    let indices: Vec<usize> = (0..muts.len()).collect();
    parallel_map(threads.max(1), indices, move |_, i| run_mutant(pipeline, &muts[i], 1))
}

/// The `(level × stage)` detection matrix: how many mutants of each
/// level each stage killed (plus a survivor column).
pub struct Matrix {
    /// One row per level present in the run, in stack order.
    pub rows: Vec<(Level, [usize; 7], usize)>,
}

impl Matrix {
    /// Tally reports into a matrix.
    pub fn tally(reports: &[MutantReport]) -> Matrix {
        let mut rows: Vec<(Level, [usize; 7], usize)> = Vec::new();
        for level in Level::ALL {
            let mut cells = [0usize; 7];
            let mut survived = 0usize;
            for r in reports.iter().filter(|r| r.level == level) {
                match r.killed_by {
                    Some(stage) => {
                        let col = StageKind::ALL.iter().position(|k| *k == stage).unwrap();
                        cells[col] += 1;
                    }
                    None => survived += 1,
                }
            }
            if cells.iter().sum::<usize>() + survived > 0 {
                rows.push((level, cells, survived));
            }
        }
        Matrix { rows }
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "level     speccheck  lockstep  equivalence  ctcheck  bound  fps  contract  survived\n",
        );
        for (level, cells, survived) in &self.rows {
            out.push_str(&format!(
                "{:<9} {:>9}  {:>8}  {:>11}  {:>7}  {:>5}  {:>3}  {:>8}  {:>8}\n",
                level.as_str(),
                cells[0],
                cells[1],
                cells[2],
                cells[3],
                cells[4],
                cells[5],
                cells[6],
                survived
            ));
        }
        out
    }
}

/// Serialize a run (reports + matrix) for `--json` and the benchmark.
pub fn reports_to_json(reports: &[MutantReport], threads: usize) -> Json {
    let matrix = Matrix::tally(reports);
    Json::obj([
        ("schema", Json::str("parfait-mutatest-v1")),
        ("threads", Json::Int(threads as i64)),
        ("mutants", Json::Int(reports.len() as i64)),
        ("survivors", Json::Int(reports.iter().filter(|r| r.killed_by.is_none()).count() as i64)),
        (
            "results",
            Json::Arr(
                reports
                    .iter()
                    .map(|r| {
                        Json::obj([
                            ("class", Json::str(&r.class)),
                            ("level", Json::str(r.level.as_str())),
                            ("verdict", Json::str(r.verdict())),
                            ("detail", Json::str(&r.detail)),
                            ("wall_ms", Json::Int(r.wall.as_millis() as i64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "matrix",
            Json::Obj(
                matrix
                    .rows
                    .iter()
                    .map(|(level, cells, survived)| {
                        let mut row: Vec<(String, Json)> = StageKind::ALL
                            .iter()
                            .zip(cells)
                            .map(|(k, c)| (k.as_str().to_string(), Json::Int(*c as i64)))
                            .collect();
                        row.push(("survived".to_string(), Json::Int(*survived as i64)));
                        (level.as_str().to_string(), Json::Obj(row))
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kill_parsing_attributes_stage_prefixes() {
        let (k, d) = parse_kill("[lockstep] starling: response mismatch");
        assert_eq!(k, Some(StageKind::Lockstep));
        assert_eq!(d, "starling: response mismatch");
        let (k, d) = parse_kill("[fps] trace divergence at cycle 9");
        assert_eq!(k, Some(StageKind::Fps));
        assert_eq!(d, "trace divergence at cycle 9");
        // Unknown stage and plain errors stay unattributed.
        assert_eq!(parse_kill("[warp] x").0, None);
        assert_eq!(parse_kill("compile error: ...").0, None);
    }

    #[test]
    fn matrix_tallies_by_level_and_stage() {
        let reports = vec![
            MutantReport {
                class: "a".into(),
                level: Level::Crypto,
                killed_by: Some(StageKind::Lockstep),
                detail: String::new(),
                wall: Duration::ZERO,
            },
            MutantReport {
                class: "b".into(),
                level: Level::Crypto,
                killed_by: None,
                detail: String::new(),
                wall: Duration::ZERO,
            },
            MutantReport {
                class: "c".into(),
                level: Level::Soc,
                killed_by: Some(StageKind::Fps),
                detail: String::new(),
                wall: Duration::ZERO,
            },
        ];
        let m = Matrix::tally(&reports);
        assert_eq!(m.rows.len(), 2);
        assert_eq!(m.rows[0], (Level::Crypto, [0, 1, 0, 0, 0, 0, 0], 1));
        assert_eq!(m.rows[1], (Level::Soc, [0, 0, 0, 0, 0, 1, 0], 0));
        let json = reports_to_json(&reports, 2);
        assert_eq!(json.get("survivors").and_then(Json::as_i64), Some(1));
        assert_eq!(
            json.get("matrix")
                .and_then(|m| m.get("crypto"))
                .and_then(|r| r.get("lockstep"))
                .and_then(Json::as_i64),
            Some(1)
        );
        assert!(m.render().contains("crypto"));
    }
}
