//! The ratcheted mutation baseline.
//!
//! `mutation_baseline.json` records, for every catalog class, which
//! stage killed it on the last accepted run — and that every control
//! survived. CI re-runs the (sampled) catalog and diffs against the
//! baseline:
//!
//! * a **survivor** that the baseline says should die fails the build —
//!   a checker stopped catching a bug class it used to catch;
//! * a **stage shift** (killed, but by a *later* or different stage
//!   than recorded) fails the build — detection regressed to a weaker
//!   point in the pipeline, or changed without review;
//! * a catalog class **missing from the baseline** fails the build with
//!   a pointer at `--update` — new mutations must be enrolled
//!   deliberately;
//! * a baseline class missing from the catalog is reported as stale
//!   (ratchet it out with `--update`) but does not fail a `--quick`
//!   run, which by design samples a subset.

use std::collections::BTreeMap;
use std::path::Path;

use parfait_telemetry::json::{parse, Json};

use crate::runner::MutantReport;

/// Baseline file schema tag.
pub const SCHEMA: &str = "parfait-mutation-baseline-v1";

/// The recorded verdicts: class → `"killed:<stage>"` / `"survived"`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Baseline {
    /// Expected verdict per mutation class (including controls, which
    /// expect `"survived"`).
    pub expected: BTreeMap<String, String>,
}

impl Baseline {
    /// Build a baseline from a full run's reports.
    pub fn from_reports(reports: &[MutantReport]) -> Baseline {
        Baseline { expected: reports.iter().map(|r| (r.class.clone(), r.verdict())).collect() }
    }

    /// Serialize with a stable key order.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str(SCHEMA)),
            (
                "expected",
                Json::Obj(self.expected.iter().map(|(k, v)| (k.clone(), Json::str(v))).collect()),
            ),
        ])
    }

    /// Parse baseline text; `Err` explains what is malformed.
    pub fn from_text(text: &str) -> Result<Baseline, String> {
        let v = parse(text).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
        let schema = v.get("schema").and_then(Json::as_str).unwrap_or_default();
        if schema != SCHEMA {
            return Err(format!(
                "baseline schema {schema:?} (expected {SCHEMA:?}) — regenerate with --update"
            ));
        }
        let obj = v
            .get("expected")
            .and_then(Json::as_object)
            .ok_or("baseline has no `expected` object")?;
        let mut expected = BTreeMap::new();
        for (k, val) in obj {
            let verdict = val.as_str().ok_or_else(|| format!("expected[{k:?}] is not a string"))?;
            expected.insert(k.clone(), verdict.to_string());
        }
        Ok(Baseline { expected })
    }

    /// Load from disk.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Baseline::from_text(&text)
    }

    /// Write to disk (compact JSON + newline).
    pub fn store(&self, path: &Path) -> Result<(), String> {
        let mut text = self.to_json().to_string();
        text.push('\n');
        std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))
    }
}

/// One baseline violation.
#[derive(Clone, Debug, PartialEq)]
pub enum Violation {
    /// A mutant survived the whole pipeline.
    Survivor {
        /// The mutation class.
        class: String,
        /// What the baseline expected.
        expected: String,
    },
    /// Killed, but not by the recorded stage.
    StageShift {
        /// The mutation class.
        class: String,
        /// What the baseline expected.
        expected: String,
        /// What this run produced.
        got: String,
    },
    /// A catalog class the baseline has never seen.
    Unenrolled {
        /// The mutation class.
        class: String,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::Survivor { class, expected } => write!(
                f,
                "{class}: SURVIVED the full pipeline (baseline: {expected}) — a checker \
                 stopped catching this bug class"
            ),
            Violation::StageShift { class, expected, got } => write!(
                f,
                "{class}: {got} but baseline records {expected} — detection moved; review \
                 and re-ratchet with --update if intended"
            ),
            Violation::Unenrolled { class } => {
                write!(f, "{class}: not in the baseline — enroll new mutations with --update")
            }
        }
    }
}

/// The diff between a run and the baseline.
pub struct Diff {
    /// Violations that must fail the build.
    pub violations: Vec<Violation>,
    /// Baseline classes the run did not exercise (informational: either
    /// a sampled `--quick` run, or stale entries to ratchet out).
    pub unexercised: Vec<String>,
}

/// Diff a run against the baseline. A control surviving is expected
/// (`"survived"` recorded); a control being *killed* shows up as a
/// stage shift, which is exactly right — the fixture broke.
pub fn diff(baseline: &Baseline, reports: &[MutantReport]) -> Diff {
    let mut violations = Vec::new();
    for r in reports {
        let got = r.verdict();
        match baseline.expected.get(&r.class) {
            None => violations.push(Violation::Unenrolled { class: r.class.clone() }),
            Some(expected) if *expected == got => {}
            Some(expected) => {
                if r.killed_by.is_none() {
                    violations.push(Violation::Survivor {
                        class: r.class.clone(),
                        expected: expected.clone(),
                    });
                } else {
                    violations.push(Violation::StageShift {
                        class: r.class.clone(),
                        expected: expected.clone(),
                        got,
                    });
                }
            }
        }
    }
    let ran: std::collections::BTreeSet<&str> = reports.iter().map(|r| r.class.as_str()).collect();
    let unexercised =
        baseline.expected.keys().filter(|k| !ran.contains(k.as_str())).cloned().collect();
    Diff { violations, unexercised }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Level;
    use parfait_pipeline::StageKind;
    use std::time::Duration;

    fn report(class: &str, killed_by: Option<StageKind>) -> MutantReport {
        MutantReport {
            class: class.into(),
            level: Level::Crypto,
            killed_by,
            detail: String::new(),
            wall: Duration::ZERO,
        }
    }

    #[test]
    fn baseline_roundtrips_through_json() {
        let reports = [report("a", Some(StageKind::Lockstep)), report("clean-x", None)];
        let b = Baseline::from_reports(&reports);
        assert_eq!(b.expected["a"], "killed:lockstep");
        assert_eq!(b.expected["clean-x"], "survived");
        let back = Baseline::from_text(&b.to_json().to_string()).unwrap();
        assert_eq!(back, b);
        assert!(Baseline::from_text("{\"schema\":\"v0\"}").is_err());
        assert!(Baseline::from_text("not json").is_err());
    }

    #[test]
    fn diff_flags_survivors_shifts_and_unenrolled() {
        let baseline = Baseline::from_reports(&[
            report("a", Some(StageKind::Lockstep)),
            report("b", Some(StageKind::Fps)),
            report("stale", Some(StageKind::Fps)),
        ]);
        let run = [
            report("a", None),                         // survivor
            report("b", Some(StageKind::Equivalence)), // stage shift
            report("new", Some(StageKind::Fps)),       // unenrolled
        ];
        let d = diff(&baseline, &run);
        assert_eq!(d.violations.len(), 3);
        assert!(matches!(&d.violations[0], Violation::Survivor { class, .. } if class == "a"));
        assert!(matches!(&d.violations[1], Violation::StageShift { class, got, .. }
                if class == "b" && got == "killed:equivalence"));
        assert!(matches!(&d.violations[2], Violation::Unenrolled { class } if class == "new"));
        assert_eq!(d.unexercised, vec!["stale".to_string()]);
        for v in &d.violations {
            assert!(!v.to_string().is_empty());
        }
    }

    #[test]
    fn clean_diff_is_quiet() {
        let reports = [report("a", Some(StageKind::Lockstep)), report("clean-x", None)];
        let baseline = Baseline::from_reports(&reports);
        let d = diff(&baseline, &reports);
        assert!(d.violations.is_empty());
        assert!(d.unexercised.is_empty());
    }
}
