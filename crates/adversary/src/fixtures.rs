//! The mutation subjects: three small HSM applications, each with a
//! Rust specification, chosen so every fault class in the catalog has a
//! subject where the fault both *matters* and is cheap to exercise.
//!
//! * [`token_app`] — the 8-byte token counter also used by the repo's
//!   differential tests. Its FPS runs take only thousands of cycles, so
//!   it hosts every below-source tamper (codegen, ISA, core, SoC,
//!   emulator). The workload command is a parameter because different
//!   tampers need different behavior to manifest: a dropped journal
//!   write only shows on a state-*changing* command, a variable-latency
//!   multiplier only on the `prove` command that multiplies the secret.
//! * [`fieldmul_app`] — a P-256 field-arithmetic oracle over the real
//!   `p256.lc` Montgomery code, specified against `parfait_crypto`'s
//!   Montgomery implementation. Hosts the dropped-carry reduction bug.
//! * [`prfmask_app`] — an HMAC-SHA-256 PRF with the ECDSA app's
//!   masked-output idiom (paper §7.1), specified against
//!   `parfait_crypto::hmac_sha256`. Hosts the skipped-nonce-mask bug
//!   and its branchy (leaky but functionally equivalent) variant.

use parfait::lockstep::Codec;
use parfait::StateMachine;
use parfait_crypto::{bignum, hmac_sha256, p256};
use parfait_hsms::firmware::{p256_constants, P256_LC, SHA256_LC};
use parfait_hsms::platform::AppSizes;
use parfait_littlec::codegen::OptLevel;
use parfait_pipeline::{app_from_codec, AppPipeline};
use parfait_starling::StarlingConfig;

// --- token fixture -----------------------------------------------------

/// Token state size: secret(4 LE) | counter(4 LE).
pub const TOKEN_STATE: usize = 8;
/// Token command size: tag | arg(4 LE).
pub const TOKEN_CMD: usize = 5;
/// Token response size.
pub const TOKEN_RESP: usize = 5;

/// The token HSM's `prove` multiplier (Knuth's multiplicative hash).
pub const TOKEN_MULT: u32 = 2654435761;

/// The token HSM implementation (same app as `tests/common`):
///   tag 1: set secret := arg           → resp [1, 0...]
///   tag 2: counter += arg              → resp [2, counter]
///   tag 3: prove: resp [3, (secret*TOKEN_MULT + counter) ^ arg]
pub const TOKEN_LC: &str = "
    u32 ld32(u8* p) {
        return p[0] | (p[1] << 8) | (p[2] << 16) | (p[3] << 24);
    }
    void st32(u8* p, u32 v) {
        p[0] = (u8)v;
        p[1] = (u8)(v >> 8);
        p[2] = (u8)(v >> 16);
        p[3] = (u8)(v >> 24);
    }
    void handle(u8* state, u8* cmd, u8* resp) {
        for (u32 i = 0; i < 5; i = i + 1) { resp[i] = 0; }
        u32 arg = ld32(cmd + 1);
        u32 tag = cmd[0];
        if (tag == 1) {
            st32(state, arg);
            resp[0] = 1;
            return;
        }
        if (tag == 2) {
            u32 c = ld32(state + 4) + arg;
            st32(state + 4, c);
            resp[0] = 2;
            st32(resp + 1, c);
            return;
        }
        if (tag == 3) {
            u32 secret = ld32(state);
            u32 c = ld32(state + 4);
            resp[0] = 3;
            st32(resp + 1, (secret * 2654435761 + c) ^ arg);
            return;
        }
        resp[0] = 0xff;
    }
";

/// Encode a token command.
pub fn token_cmd(tag: u8, arg: u32) -> Vec<u8> {
    let mut c = vec![tag];
    c.extend_from_slice(&arg.to_le_bytes());
    c
}

/// The token spec over (secret, counter).
#[derive(Clone)]
pub struct TokenSpec;

impl StateMachine for TokenSpec {
    type State = (u32, u32);
    type Command = Vec<u8>;
    type Response = Vec<u8>;

    fn init(&self) -> (u32, u32) {
        (0, 0)
    }

    fn step(&self, s: &(u32, u32), c: &Vec<u8>) -> ((u32, u32), Vec<u8>) {
        let mut resp = vec![0u8; TOKEN_RESP];
        if c.len() != TOKEN_CMD {
            resp[0] = 0xFF;
            return (*s, resp);
        }
        let arg = u32::from_le_bytes([c[1], c[2], c[3], c[4]]);
        match c[0] {
            1 => {
                resp[0] = 1;
                ((arg, s.1), resp)
            }
            2 => {
                let c2 = s.1.wrapping_add(arg);
                resp[0] = 2;
                resp[1..5].copy_from_slice(&c2.to_le_bytes());
                ((s.0, c2), resp)
            }
            3 => {
                resp[0] = 3;
                let v = s.0.wrapping_mul(TOKEN_MULT).wrapping_add(s.1) ^ arg;
                resp[1..5].copy_from_slice(&v.to_le_bytes());
                (*s, resp)
            }
            _ => {
                resp[0] = 0xFF;
                (*s, resp)
            }
        }
    }
}

/// Byte-transparent token codec.
pub struct TokenCodec;

impl Codec for TokenCodec {
    type Spec = TokenSpec;
    type CI = Vec<u8>;
    type RI = Vec<u8>;
    type SI = Vec<u8>;

    fn encode_command(&self, c: &Vec<u8>) -> Vec<u8> {
        c.clone()
    }
    fn decode_command(&self, c: &Vec<u8>) -> Option<Vec<u8>> {
        (c.len() == TOKEN_CMD && matches!(c[0], 1..=3)).then(|| c.clone())
    }
    fn encode_response(&self, r: Option<&Vec<u8>>) -> Vec<u8> {
        match r {
            Some(v) => v.clone(),
            None => {
                let mut e = vec![0u8; TOKEN_RESP];
                e[0] = 0xFF;
                e
            }
        }
    }
    fn decode_response(&self, r: &Vec<u8>) -> Vec<u8> {
        r.clone()
    }
    fn encode_state(&self, s: &(u32, u32)) -> Vec<u8> {
        let mut out = Vec::with_capacity(TOKEN_STATE);
        out.extend_from_slice(&s.0.to_le_bytes());
        out.extend_from_slice(&s.1.to_le_bytes());
        out
    }
}

/// The token app with a caller-chosen FPS workload command. All token
/// mutants share the slug (and thus the clean software-stage cache
/// entries); tamper fingerprints and the workload separate the rest.
pub fn token_app(workload: Vec<u8>) -> AppPipeline {
    app_from_codec(
        "adversary token HSM",
        "adv-token",
        TOKEN_LC.to_string(),
        AppSizes { state: TOKEN_STATE, command: TOKEN_CMD, response: TOKEN_RESP },
        TokenCodec,
        TokenSpec,
        (0xDEAD_BEEF, 7),
        workload,
        vec![(0, 0), (0xDEAD_BEEF, 7)],
        vec![token_cmd(1, 5), token_cmd(2, 10), token_cmd(3, 5)],
        vec![vec![1, 0, 0, 0, 0]],
        StarlingConfig {
            state_size: TOKEN_STATE,
            command_size: TOKEN_CMD,
            response_size: TOKEN_RESP,
            adversarial_inputs: 4,
            ..StarlingConfig::default()
        },
    )
}

// --- fieldmul fixture --------------------------------------------------

/// fieldmul state size: one P-256 field element, big-endian.
pub const FIELD_STATE: usize = 32;
/// fieldmul command size: tag | operand(32 BE).
pub const FIELD_CMD: usize = 33;
/// fieldmul response size: tag | result(32 BE).
pub const FIELD_RESP: usize = 33;

/// The fieldmul `handle`: a field-arithmetic oracle over the secret
/// element `a` held in the state. Tag 1 answers `a*b mod p`, tag 2
/// answers `a+b mod p`. The operand is validated as a canonical field
/// element in the firmware *and* the codec, so the spec and the
/// implementation agree on the accepted domain.
pub const FIELD_HANDLE_LC: &str = "
    void handle(u8* state, u8* cmd, u8* resp) {
        for (u32 i = 0; i < 33; i = i + 1) { resp[i] = 0; }
        u32 tag = cmd[0];
        u32 b[8];
        bn_from_be(b, cmd + 1);
        u32 in_range = bn_lt(b, P256_P);
        if (in_range == 0) {
            resp[0] = 0xff;
            return;
        }
        u32 a[8];
        bn_from_be(a, state);
        if (tag == 1) {
            u32 am[8];
            fe_to_mont(am, a);
            u32 r[8];
            fe_mul(r, am, b);
            resp[0] = 1;
            bn_to_be(resp + 1, r);
            return;
        }
        if (tag == 2) {
            u32 r[8];
            fe_add(r, a, b);
            resp[0] = 2;
            bn_to_be(resp + 1, r);
            return;
        }
        resp[0] = 0xff;
    }
";

/// The complete fieldmul littlec program (P-256 constants + the real
/// `p256.lc` + the oracle handle).
pub fn fieldmul_source() -> String {
    let mut s = p256_constants();
    s.push_str(P256_LC);
    s.push_str(FIELD_HANDLE_LC);
    s
}

/// Encode a fieldmul command.
pub fn field_cmd(tag: u8, b: &bignum::U256) -> Vec<u8> {
    let mut c = vec![tag];
    c.extend_from_slice(&bignum::to_be_bytes(b));
    c
}

/// The fieldmul spec: the state is the secret element (big-endian
/// bytes); responses come from `parfait_crypto`'s Montgomery field.
#[derive(Clone)]
pub struct FieldSpec;

impl StateMachine for FieldSpec {
    type State = [u8; 32];
    type Command = Vec<u8>;
    type Response = Vec<u8>;

    fn init(&self) -> [u8; 32] {
        [0; 32]
    }

    fn step(&self, s: &[u8; 32], c: &Vec<u8>) -> ([u8; 32], Vec<u8>) {
        let mut resp = vec![0u8; FIELD_RESP];
        resp[0] = 0xFF;
        if c.len() != FIELD_CMD {
            return (*s, resp);
        }
        let f = p256::field();
        let b = bignum::from_be_bytes(&c[1..33]);
        if !bignum::lt(&b, &f.m) {
            return (*s, resp);
        }
        let a = bignum::from_be_bytes(s);
        let r = match c[0] {
            // a*R * b * R^-1 = a*b mod p.
            1 => f.mul(&f.to_mont(&a), &b),
            2 => f.add(&a, &b),
            _ => return (*s, resp),
        };
        resp[0] = c[0];
        resp[1..33].copy_from_slice(&bignum::to_be_bytes(&r));
        (*s, resp)
    }
}

/// Byte-transparent fieldmul codec; commands with an out-of-range
/// operand or unknown tag are rejected (mirroring the firmware check).
pub struct FieldCodec;

impl Codec for FieldCodec {
    type Spec = FieldSpec;
    type CI = Vec<u8>;
    type RI = Vec<u8>;
    type SI = Vec<u8>;

    fn encode_command(&self, c: &Vec<u8>) -> Vec<u8> {
        c.clone()
    }
    fn decode_command(&self, c: &Vec<u8>) -> Option<Vec<u8>> {
        if c.len() != FIELD_CMD || !matches!(c[0], 1..=2) {
            return None;
        }
        let b = bignum::from_be_bytes(&c[1..33]);
        bignum::lt(&b, &p256::field().m).then(|| c.clone())
    }
    fn encode_response(&self, r: Option<&Vec<u8>>) -> Vec<u8> {
        match r {
            Some(v) => v.clone(),
            None => {
                let mut e = vec![0u8; FIELD_RESP];
                e[0] = 0xFF;
                e
            }
        }
    }
    fn decode_response(&self, r: &Vec<u8>) -> Vec<u8> {
        r.clone()
    }
    fn encode_state(&self, s: &[u8; 32]) -> Vec<u8> {
        s.to_vec()
    }
}

/// A fieldmul app over the given source (clean or mutated).
pub fn fieldmul_app(source: String) -> AppPipeline {
    let f = p256::field();
    // Dense operands: p-2 and p-3 keep every carry chain in the
    // Montgomery reduction live, so a dropped carry cannot hide.
    let two = {
        let mut t = [0u32; 8];
        t[0] = 2;
        t
    };
    let three = {
        let mut t = [0u32; 8];
        t[0] = 3;
        t
    };
    let p_minus_2 = bignum::sub(&f.m, &two).0;
    let p_minus_3 = bignum::sub(&f.m, &three).0;
    let secret = bignum::to_be_bytes(&p_minus_2);
    app_from_codec(
        "adversary P-256 field oracle",
        "adv-fieldmul",
        source,
        AppSizes { state: FIELD_STATE, command: FIELD_CMD, response: FIELD_RESP },
        FieldCodec,
        FieldSpec,
        secret,
        field_cmd(1, &p_minus_3),
        vec![[0; 32], secret, {
            let mut small = [0u8; 32];
            small[31] = 5;
            small
        }],
        vec![field_cmd(1, &p_minus_3), field_cmd(2, &p_minus_2), field_cmd(1, &three)],
        vec![{
            let mut r = vec![1u8];
            r.extend_from_slice(&[0; 32]);
            r
        }],
        StarlingConfig {
            state_size: FIELD_STATE,
            command_size: FIELD_CMD,
            response_size: FIELD_RESP,
            adversarial_inputs: 2,
            opt_levels: vec![OptLevel::O2],
            ..StarlingConfig::default()
        },
    )
}

// --- prfmask fixture ---------------------------------------------------

/// prfmask state size: prf_key(32) | counter(8 BE).
pub const PRF_STATE: usize = 40;
/// prfmask command size: tag | pad.
pub const PRF_CMD: usize = 2;
/// prfmask response size: tag | key(32, masked).
pub const PRF_RESP: usize = 33;

/// The prfmask `handle`: derive k = HMAC-SHA256(prf_key, counter) and
/// release it *masked* — all zeros once the counter is exhausted —
/// using the ECDSA app's branch-free idiom (paper §7.1). The counter
/// increments with a constant-time carry chain.
pub const PRF_HANDLE_LC: &str = "
    void handle(u8* state, u8* cmd, u8* resp) {
        for (u32 i = 0; i < 33; i = i + 1) { resp[i] = 0; }
        u32 tag = cmd[0];
        if (tag != 1) {
            resp[0] = 0xff;
            return;
        }
        u32 allff = 1;
        for (u32 i = 0; i < 8; i = i + 1) {
            allff = allff & (state[32 + i] == 0xff);
        }
        u8 ctr[8];
        for (u32 i = 0; i < 8; i = i + 1) {
            ctr[i] = state[32 + i];
        }
        u8 k[32];
        hmac_sha256(k, state, 32, ctr, 8);
        u32 ok = 1 - allff;
        u32 carry = 1 - allff;
        for (u32 i = 0; i < 8; i = i + 1) {
            u32 v = state[39 - i] + carry;
            state[39 - i] = (u8)v;
            carry = v >> 8;
        }
        u32 mask = 0 - ok;
        u32 bmask = mask & 0xff;
        resp[0] = (u8)(2 - ok);
        for (u32 i = 0; i < 32; i = i + 1) {
            resp[1 + i] = (u8)(k[i] & bmask);
        }
    }
";

/// The complete prfmask littlec program.
pub fn prfmask_source() -> String {
    let mut s = String::from(SHA256_LC);
    s.push_str(PRF_HANDLE_LC);
    s
}

/// The prfmask spec state.
#[derive(Clone, Copy, PartialEq)]
pub struct PrfState {
    /// The PRF key (secret).
    pub key: [u8; 32],
    /// The big-endian derivation counter.
    pub counter: u64,
}

/// The prfmask spec over (key, counter).
#[derive(Clone)]
pub struct PrfSpec;

impl StateMachine for PrfSpec {
    type State = PrfState;
    type Command = Vec<u8>;
    type Response = Vec<u8>;

    fn init(&self) -> PrfState {
        PrfState { key: [0; 32], counter: 0 }
    }

    fn step(&self, s: &PrfState, c: &Vec<u8>) -> (PrfState, Vec<u8>) {
        let mut resp = vec![0u8; PRF_RESP];
        if c.len() != PRF_CMD || c[0] != 1 {
            resp[0] = 0xFF;
            return (*s, resp);
        }
        let exhausted = s.counter == u64::MAX;
        let k = hmac_sha256(&s.key, &s.counter.to_be_bytes());
        if exhausted {
            resp[0] = 2;
            return (*s, resp);
        }
        resp[0] = 1;
        resp[1..33].copy_from_slice(&k);
        (PrfState { key: s.key, counter: s.counter + 1 }, resp)
    }
}

/// Byte-transparent prfmask codec.
pub struct PrfCodec;

impl Codec for PrfCodec {
    type Spec = PrfSpec;
    type CI = Vec<u8>;
    type RI = Vec<u8>;
    type SI = Vec<u8>;

    fn encode_command(&self, c: &Vec<u8>) -> Vec<u8> {
        c.clone()
    }
    fn decode_command(&self, c: &Vec<u8>) -> Option<Vec<u8>> {
        // Any 2-byte command is a spec command: the spec itself answers
        // unknown tags with the error marker, mirroring the firmware.
        (c.len() == PRF_CMD).then(|| c.clone())
    }
    fn encode_response(&self, r: Option<&Vec<u8>>) -> Vec<u8> {
        match r {
            Some(v) => v.clone(),
            None => {
                let mut e = vec![0u8; PRF_RESP];
                e[0] = 0xFF;
                e
            }
        }
    }
    fn decode_response(&self, r: &Vec<u8>) -> Vec<u8> {
        r.clone()
    }
    fn encode_state(&self, s: &PrfState) -> Vec<u8> {
        let mut out = Vec::with_capacity(PRF_STATE);
        out.extend_from_slice(&s.key);
        out.extend_from_slice(&s.counter.to_be_bytes());
        out
    }
}

/// A prfmask app over the given source (clean or mutated). The sample
/// states include the exhausted counter — the only state on which the
/// mask matters — so a skipped mask cannot survive the lockstep grid.
pub fn prfmask_app(source: String) -> AppPipeline {
    app_from_codec(
        "adversary masked PRF",
        "adv-prfmask",
        source,
        AppSizes { state: PRF_STATE, command: PRF_CMD, response: PRF_RESP },
        PrfCodec,
        PrfSpec,
        PrfState { key: [0x13; 32], counter: 5 },
        vec![1, 0],
        vec![
            PrfState { key: [0; 32], counter: 0 },
            PrfState { key: [0x4B; 32], counter: u64::MAX },
        ],
        vec![vec![1, 0], vec![9, 9]],
        vec![{
            let mut r = vec![2u8];
            r.extend_from_slice(&[0; 32]);
            r
        }],
        StarlingConfig {
            state_size: PRF_STATE,
            command_size: PRF_CMD,
            response_size: PRF_RESP,
            adversarial_inputs: 2,
            opt_levels: vec![OptLevel::O2],
            ..StarlingConfig::default()
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_spec_matches_sizes() {
        let app = token_app(token_cmd(3, 5));
        assert_eq!(app.secret_state.len(), TOKEN_STATE);
        assert_eq!(app.workload.len(), TOKEN_CMD);
    }

    #[test]
    fn field_spec_multiplies_in_the_field() {
        // a * a^-1 = 1 through the spec's own path.
        let f = p256::field();
        let a =
            bignum::from_hex("123456789abcdef0fedcba9876543210ffffffff00000001aa55aa55deadbeef");
        let inv = f.from_mont(&f.inv(&f.to_mont(&a)));
        let spec = FieldSpec;
        let st = bignum::to_be_bytes(&a);
        let (_, resp) = spec.step(&st, &field_cmd(1, &inv));
        assert_eq!(resp[0], 1);
        let mut one = [0u8; 32];
        one[31] = 1;
        assert_eq!(&resp[1..33], &one);
    }

    #[test]
    fn field_codec_rejects_out_of_range_operands() {
        let c = FieldCodec;
        let p = p256::field().m;
        assert!(c.decode_command(&field_cmd(1, &p)).is_none(), "b = p must be rejected");
        let mut big = [0xFFu8; 33];
        big[0] = 1;
        assert!(c.decode_command(&big.to_vec()).is_none(), "b > p must be rejected");
        let ok = field_cmd(2, &bignum::from_hex("5"));
        assert!(c.decode_command(&ok).is_some());
    }

    #[test]
    fn prf_spec_masks_exhausted_counter() {
        let spec = PrfSpec;
        let exhausted = PrfState { key: [7; 32], counter: u64::MAX };
        let (next, resp) = spec.step(&exhausted, &vec![1, 0]);
        assert_eq!(resp[0], 2);
        assert!(resp[1..].iter().all(|&b| b == 0), "exhausted PRF must release nothing");
        assert!(next == exhausted, "exhausted counter must not wrap");
        let fresh = PrfState { key: [7; 32], counter: 3 };
        let (next, resp) = spec.step(&fresh, &vec![1, 0]);
        assert_eq!(resp[0], 1);
        assert_eq!(next.counter, 4);
        assert_eq!(&resp[1..33], &hmac_sha256(&[7; 32], &3u64.to_be_bytes()));
    }
}
