//! The mutation catalog: one entry per fault *class*, each a concrete
//! seeded bug at one level of the stack, paired with the pipeline stage
//! that is supposed to kill it.
//!
//! The catalog spans all six implementation levels the pipeline makes
//! claims about. Crypto-level mutations edit the littlec source itself
//! (the bug exists at every level below the spec, so the *first*
//! software stage that can see it must kill it). Codegen mutations
//! rewrite the compiled assembly through [`Tamper::patch_asm`] — a
//! seeded miscompilation. ISA mutations re-encode linked ROM words
//! through [`Tamper::patch_firmware`]. Core, SoC, and emulator
//! mutations seed the corresponding hardware/emulator fault.
//!
//! Nothing here is killed by the speccheck stage: every mutation is
//! *below* the specification by construction (the spec census runs on
//! the Rust spec alone, which mutations never touch). The detection
//! matrix records this as an empty speccheck column — the stage earns
//! its keep on spec-level leakage, not implementation bugs.

use parfait_hsms::platform::Cpu;
use parfait_littlec::codegen::OptLevel;
use parfait_pipeline::{AppPipeline, Tamper};
use parfait_riscv::isa::{Instr, LoadOp, Reg};
use parfait_riscv::{decode, encode};
use parfait_soc::{Firmware, SeededBug};
use std::sync::Arc;

use crate::fixtures::{
    fieldmul_app, fieldmul_source, prfmask_app, prfmask_source, token_app, token_cmd,
};

/// The implementation level a mutation strikes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Cryptographic routine in the littlec source.
    Crypto,
    /// Compiler / optimizer output (assembly text).
    Codegen,
    /// Instruction encoding in the linked ROM image.
    Isa,
    /// Core micro-architecture.
    Core,
    /// SoC peripherals and memory system.
    Soc,
    /// The verifier's own emulator template.
    Emulator,
}

impl Level {
    /// All levels, in stack order (highest first).
    pub const ALL: [Level; 6] =
        [Level::Crypto, Level::Codegen, Level::Isa, Level::Core, Level::Soc, Level::Emulator];

    /// Stable machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Crypto => "crypto",
            Level::Codegen => "codegen",
            Level::Isa => "isa",
            Level::Core => "core",
            Level::Soc => "soc",
            Level::Emulator => "emulator",
        }
    }

    /// Parse a stable name back to the level.
    pub fn from_name(s: &str) -> Option<Level> {
        Level::ALL.into_iter().find(|l| l.as_str() == s)
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One mutation class: a seeded fault plus where it lives and how to
/// build the mutated app.
pub struct Mutation {
    /// Stable class name (baseline key, JSON, CLI filter).
    pub class: &'static str,
    /// Which level the fault strikes.
    pub level: Level,
    /// What the bug is, in one sentence.
    pub description: &'static str,
    /// The platform the mutant runs FPS on.
    pub cpu: Cpu,
    /// The optimization level the mutant is verified at.
    pub opt: OptLevel,
    /// Included in `--quick` sampled mode (one per level).
    pub quick: bool,
    /// Build the mutated application pipeline.
    pub build: fn() -> AppPipeline,
}

// --- assembly text patches (seeded miscompilations) --------------------

/// Split an asm listing at the first line following `label:`, returning
/// (head incl. label line, tail). Panics if the label is missing —
/// a mutation that fails to apply must never silently produce a clean
/// binary.
fn split_after_label(asm: &str, label: &str) -> (String, String) {
    let needle = format!("{label}:");
    let mut head = String::new();
    let mut lines = asm.lines();
    for line in lines.by_ref() {
        head.push_str(line);
        head.push('\n');
        if line.trim() == needle {
            let tail: String = lines.flat_map(|l| [l, "\n"]).collect();
            return (head, tail);
        }
    }
    panic!("mutation anchor `{needle}` not found in generated assembly");
}

/// Rewrite the first line after `label:` for which `edit` returns a
/// replacement. Panics if no line matched.
fn edit_first_after(asm: String, label: &str, edit: impl Fn(&str) -> Option<String>) -> String {
    let (head, tail) = split_after_label(&asm, label);
    let mut out = head;
    let mut done = false;
    for line in tail.lines() {
        match (done, edit(line)) {
            (false, Some(replacement)) => {
                out.push_str(&replacement);
                done = true;
            }
            _ => out.push_str(line),
        }
        out.push('\n');
    }
    assert!(done, "no mutable instruction found after `{label}:`");
    out
}

/// Flip the polarity of the first conditional branch after `label:`
/// (`beq` ↔ `bne`, `beqz` ↔ `bnez`, `blt` ↔ `bge`, `bltu` ↔ `bgeu`).
fn flip_branch_after(asm: String, label: &str) -> String {
    const FLIPS: [(&str, &str); 8] = [
        ("beqz ", "bnez "),
        ("bnez ", "beqz "),
        ("beq ", "bne "),
        ("bne ", "beq "),
        ("blt ", "bge "),
        ("bge ", "blt "),
        ("bltu ", "bgeu "),
        ("bgeu ", "bltu "),
    ];
    edit_first_after(asm, label, |line| {
        let t = line.trim_start();
        FLIPS.iter().find_map(|(from, to)| {
            t.starts_with(from).then(|| format!("    {to}{}", &t[from.len()..]))
        })
    })
}

/// Replace the first *byte* store after `label:` with a `nop` — the
/// classic over-eager dead-store elimination. Byte stores only: the
/// first `sw` after a function label is the prologue's `ra` spill,
/// whose loss is a different (control-flow) bug class.
fn drop_store_after(asm: String, label: &str) -> String {
    edit_first_after(asm, label, |line| {
        line.trim_start().starts_with("sb ").then(|| "    nop".to_string())
    })
}

/// Insert raw instruction lines right after `label:`.
fn insert_after_label(asm: String, label: &str, snippet: &str) -> String {
    let (head, tail) = split_after_label(&asm, label);
    format!("{head}{snippet}{tail}")
}

/// [`insert_after_label`], but the identity when the label is absent.
/// For anchors that only exist in the fully linked image (system
/// software): the equivalence and ctcheck stages compile the app
/// source alone and must see an unmodified listing — the bug is
/// invisible above the wire level *by construction*.
fn insert_after_label_if_present(asm: String, label: &str, snippet: &str) -> String {
    if asm.lines().any(|l| l.trim() == format!("{label}:")) {
        insert_after_label(asm, label, snippet)
    } else {
        asm
    }
}

/// Halve the first frame allocation (`addi sp, sp, -N`) after
/// `label:`. Identity when the label is absent, for the same reason as
/// [`insert_after_label_if_present`]: the anchor lives in system
/// software, so app-only compiles must stay clean.
fn halve_frame_alloc_after(asm: String, label: &str) -> String {
    if !asm.lines().any(|l| l.trim() == format!("{label}:")) {
        return asm;
    }
    edit_first_after(asm, label, |line| {
        let rest = line.trim_start().strip_prefix("addi sp, sp, -")?;
        let n: u32 = rest.trim().parse().ok()?;
        Some(format!("    addi sp, sp, -{}", n / 2))
    })
}

/// Delete the first counted `# loopbound` annotation from the listing.
/// The annotation is an assembler comment, so the machine code — and
/// with it every dynamic stage's view of the firmware — is bit-for-bit
/// unchanged; only the static bound analysis can notice the loop it
/// can no longer validate. Identity when no counted annotation is
/// present (app-only compiles of a loop-free app).
fn drop_first_counted_loopbound(asm: String) -> String {
    let mut done = false;
    let mut out = String::with_capacity(asm.len());
    for line in asm.lines() {
        let t = line.trim_start();
        if !done && t.starts_with("# loopbound") && t.contains("kind=counted") {
            done = true;
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

// --- ROM word patches (seeded encoder bugs) ----------------------------

/// Decode ROM words from the `start` symbol onward, rewriting the
/// first one the editor accepts. Panics if nothing matched.
fn rewrite_rom_word(fw: &mut Firmware, start: &str, edit: impl Fn(Instr) -> Option<Instr>) {
    let start =
        fw.address_of(start).unwrap_or_else(|| panic!("firmware exports `{start}`")) as usize;
    let mut at = start;
    while at + 4 <= fw.rom.len() {
        let word = u32::from_le_bytes([fw.rom[at], fw.rom[at + 1], fw.rom[at + 2], fw.rom[at + 3]]);
        if let Ok(instr) = decode::decode(word) {
            if let Some(mutated) = edit(instr) {
                fw.rom[at..at + 4].copy_from_slice(&encode::encode(mutated).to_le_bytes());
                return;
            }
        }
        at += 4;
    }
    panic!("no ROM instruction matched the mutation from `handle` onward");
}

/// Swap base and value operands of the first store after `handle` whose
/// operands are distinct and whose value register is not `x0`.
fn swap_store_operands(fw: &mut Firmware) {
    rewrite_rom_word(fw, "handle", |i| match i {
        Instr::Store { op, rs1, rs2, off } if rs1 != rs2 && rs2 != Reg::ZERO => {
            Some(Instr::Store { op, rs1: rs2, rs2: rs1, off })
        }
        _ => None,
    });
}

/// Re-encode the first unsigned byte load in `ld32` as a signed one —
/// a one-bit funct3 encoder slip (`lbu` → `lb`) that corrupts every
/// 32-bit value assembled from bytes ≥ 0x80.
fn unsign_first_byte_load(fw: &mut Firmware) {
    rewrite_rom_word(fw, "ld32", |i| match i {
        Instr::Load { op: LoadOp::Lbu, rd, rs1, off } => {
            Some(Instr::Load { op: LoadOp::Lb, rd, rs1, off })
        }
        _ => None,
    });
}

// --- mutant builders ---------------------------------------------------

/// Apply one exact-match source replacement, panicking if the needle is
/// absent (so a refactor cannot silently defuse a mutation).
fn mutate_source(source: String, from: &str, to: &str) -> String {
    assert!(source.contains(from), "mutation needle {from:?} not found in fixture source");
    source.replacen(from, to, 1)
}

fn build_mont_carry_drop() -> AppPipeline {
    // Drop the c1 carry in the CIOS inner reduction: the classic
    // "works on sparse test vectors" Montgomery bug.
    fieldmul_app(mutate_source(fieldmul_source(), "carry2 = hi2 + c1 + c2;", "carry2 = hi2 + c2;"))
}

fn build_prf_mask_skip() -> AppPipeline {
    // Release the derived key unmasked — exactly the ECDSA
    // nonce-exhaustion mask the paper's spec-level argument rests on.
    prfmask_app(mutate_source(
        prfmask_source(),
        "resp[1 + i] = (u8)(k[i] & bmask);",
        "resp[1 + i] = (u8)k[i];",
    ))
}

fn build_secret_branch() -> AppPipeline {
    // Functionally equivalent (resp is pre-zeroed) but branches on the
    // secret-derived `ok`: invisible to every functional stage,
    // constant-time analysis must object.
    prfmask_app(mutate_source(
        prfmask_source(),
        "        u32 mask = 0 - ok;
        u32 bmask = mask & 0xff;
        resp[0] = (u8)(2 - ok);
        for (u32 i = 0; i < 32; i = i + 1) {
            resp[1 + i] = (u8)(k[i] & bmask);
        }",
        "        resp[0] = (u8)(2 - ok);
        if (ok) {
            for (u32 i = 0; i < 32; i = i + 1) {
                resp[1 + i] = (u8)k[i];
            }
        }",
    ))
}

fn build_branch_polarity() -> AppPipeline {
    let mut tamper = Tamper::new("cc-branch-polarity");
    tamper.patch_asm = Some(Arc::new(|asm| flip_branch_after(asm, "handle")));
    token_app(token_cmd(2, 9)).with_tamper(tamper)
}

fn build_dead_store() -> AppPipeline {
    // Delete the first store in st32 (the LSB write): counter updates
    // and 32-bit response fields lose their low byte.
    let mut tamper = Tamper::new("cc-dead-store");
    tamper.patch_asm = Some(Arc::new(|asm| drop_store_after(asm, "st32")));
    token_app(token_cmd(2, 9)).with_tamper(tamper)
}

fn build_syssw_reg_clobber() -> AppPipeline {
    // Offset the response-pointer argument at `write_response` entry:
    // a register-allocation slip in the one function that puts bytes on
    // the wire. The app-only compile (equivalence, ctcheck) does not
    // even contain this system-software function — only the wire-level
    // check sees the full linked image. (The *pure* callee-saved flavor
    // of this slip — scratching an s-register without a save — is
    // seeded separately as `cc-callee-saved-clobber` and killed by the
    // lint's CT-ABI check; it used to be the catalog's one unkillable
    // class, DESIGN.md §12.)
    let mut tamper = Tamper::new("cc-syssw-reg-clobber");
    tamper.patch_asm = Some(Arc::new(|asm| {
        insert_after_label_if_present(asm, "write_response", "    addi a0, a0, 1\n")
    }));
    token_app(token_cmd(2, 9)).with_tamper(tamper)
}

fn build_callee_saved_clobber() -> AppPipeline {
    // Grab a callee-saved register as scratch in `handle` without a
    // save/restore. Responses, timing, and taint flow are all
    // untouched — every dynamic stage passes on an output-equivalent
    // workload — so the kill must come from the asm lint's
    // callee-saved-preservation check at the return point.
    let mut tamper = Tamper::new("cc-callee-saved-clobber");
    tamper.patch_asm = Some(Arc::new(|asm| insert_after_label(asm, "handle", "    li s3, 42\n")));
    token_app(token_cmd(2, 9)).with_tamper(tamper)
}

fn build_secret_latency() -> AppPipeline {
    // Prepend a branch on the first secret state byte to `handle`:
    // output-equivalent on every input, but the timing now depends on
    // the secret.
    let mut tamper = Tamper::new("cc-secret-latency");
    tamper.patch_asm = Some(Arc::new(|asm| {
        insert_after_label(
            asm,
            "handle",
            "    lbu t0, 0(a0)\n    beqz t0, adv_ct_skip\n    nop\n    nop\nadv_ct_skip:\n",
        )
    }));
    token_app(token_cmd(2, 9)).with_tamper(tamper)
}

fn build_stack_frame_underalloc() -> AppPipeline {
    // Halve `store_state`'s frame allocation while its body (and
    // epilogue) still address the full frame: the classic prologue
    // under-allocation. Every store above the shrunken frame clobbers
    // the caller, and the epilogue restores the wrong `sp` — the
    // static bound analysis rejects the frame discipline before the
    // simulator ever boots the corrupted image.
    let mut tamper = Tamper::new("codegen-stack-frame-underalloc");
    tamper.patch_asm = Some(Arc::new(|asm| halve_frame_alloc_after(asm, "store_state")));
    token_app(token_cmd(2, 9)).with_tamper(tamper)
}

fn build_loop_bound_drop() -> AppPipeline {
    // Drop one `# loopbound kind=counted` annotation from the listing.
    // A comment-only mutation: the assembled ROM is identical, so
    // lockstep, equivalence, ctcheck, FPS, and the contract battery
    // are all blind to it by construction — the bound stage's refusal
    // to invent a loop bound is the only line of defense.
    let mut tamper = Tamper::new("littlec-loop-bound-drop");
    tamper.patch_asm = Some(Arc::new(drop_first_counted_loopbound));
    token_app(token_cmd(2, 9)).with_tamper(tamper)
}

fn build_store_operand_swap() -> AppPipeline {
    let mut tamper = Tamper::new("isa-store-operand-swap");
    tamper.patch_firmware = Some(Arc::new(swap_store_operands));
    token_app(token_cmd(2, 9)).with_tamper(tamper)
}

fn build_load_sign_extend() -> AppPipeline {
    // The workload must read the secret (tag 3): 0xDEADBEEF has bytes
    // ≥ 0x80, so the signed load corrupts the proof value.
    let mut tamper = Tamper::new("isa-load-sign-extend");
    tamper.patch_firmware = Some(Arc::new(unsign_first_byte_load));
    token_app(token_cmd(3, 5)).with_tamper(tamper)
}

fn build_ibex_stale_forwarding() -> AppPipeline {
    let mut tamper = Tamper::new("core-ibex-stale-forwarding");
    tamper.core_fault = Some(parfait_cores::SeededFault::StaleForwarding);
    token_app(token_cmd(2, 9)).with_tamper(tamper)
}

fn build_pico_mul_early_exit() -> AppPipeline {
    // The workload must execute the secret multiply (tag 3) for the
    // variable-latency path to be reachable.
    let mut tamper = Tamper::new("core-pico-mul-early-exit");
    tamper.core_fault = Some(parfait_cores::SeededFault::MulEarlyExit);
    token_app(token_cmd(3, 5)).with_tamper(tamper)
}

// The three contract-violation faults: silicon whose observables drift
// from the declared `LeakageContract`. None of them can corrupt a
// response, and the first two shift timing *identically in both FPS
// worlds*, so the dual-world comparison is blind to them — the
// per-class stimulus battery is what pins the core to its declaration.

fn build_contract_latency_understated() -> AppPipeline {
    // The divider takes three cycles longer than its clause admits
    // (`div: latency=operand(dividend-bits base=3)` still claimed).
    let mut tamper = Tamper::new("core-contract-latency-understated");
    tamper.core_fault = Some(parfait_cores::SeededFault::ContractLatencyUnderstated);
    token_app(token_cmd(2, 9)).with_tamper(tamper)
}

fn build_contract_hidden_operand_dep() -> AppPipeline {
    // The barrel shifter grows a hidden amount-dependent stall while
    // the contract still declares `shift: latency=fixed(1)`.
    let mut tamper = Tamper::new("core-contract-hidden-operand-dep");
    tamper.core_fault = Some(parfait_cores::SeededFault::ContractHiddenOperandDep);
    token_app(token_cmd(2, 9)).with_tamper(tamper)
}

fn build_contract_taint_silent() -> AppPipeline {
    // Pico's divider stops raising its declared tainted-operand leak
    // event. Timing is *unchanged* and production firmware is
    // constant-time (no tainted divides execute), so FPS passes both
    // comparisons — only the battery's tainted-dividend stimulus
    // notices the declared leak was never raised.
    let mut tamper = Tamper::new("core-contract-taint-silent");
    tamper.core_fault = Some(parfait_cores::SeededFault::ContractTaintSilent);
    token_app(token_cmd(2, 9)).with_tamper(tamper)
}

fn build_journal_write_drop() -> AppPipeline {
    // The workload must *change* state (tag 2) for the lost journal
    // commit to matter.
    let mut tamper = Tamper::new("soc-journal-write-drop");
    tamper.soc_bug = Some(SeededBug::DropJournalWrite);
    token_app(token_cmd(2, 9)).with_tamper(tamper)
}

fn build_tx_double_commit() -> AppPipeline {
    let mut tamper = Tamper::new("soc-tx-double-commit");
    tamper.soc_bug = Some(SeededBug::TxDoubleCommit);
    token_app(token_cmd(2, 9)).with_tamper(tamper)
}

fn build_emulator_desync() -> AppPipeline {
    let mut tamper = Tamper::new("emu-response-desync");
    tamper.emulator_desync = true;
    token_app(token_cmd(2, 9)).with_tamper(tamper)
}

/// The full mutation catalog. Order is stable (stack order, highest
/// level first) — reports, baselines, and the detection matrix all
/// follow it.
pub fn catalog() -> Vec<Mutation> {
    vec![
        Mutation {
            class: "crypto-mont-carry-drop",
            level: Level::Crypto,
            description: "Montgomery CIOS reduction drops a carry term",
            cpu: Cpu::Ibex,
            opt: OptLevel::O2,
            quick: true,
            build: build_mont_carry_drop,
        },
        Mutation {
            class: "crypto-prf-mask-skip",
            level: Level::Crypto,
            description: "exhaustion mask skipped; derived PRF key released unmasked",
            cpu: Cpu::Ibex,
            opt: OptLevel::O2,
            quick: false,
            build: build_prf_mask_skip,
        },
        Mutation {
            class: "crypto-secret-branch",
            level: Level::Crypto,
            description: "branch-free masking rewritten as a secret-dependent branch",
            cpu: Cpu::Ibex,
            opt: OptLevel::O2,
            quick: false,
            build: build_secret_branch,
        },
        Mutation {
            class: "cc-branch-polarity",
            level: Level::Codegen,
            description: "codegen flips the polarity of a conditional branch",
            cpu: Cpu::Ibex,
            opt: OptLevel::O2,
            quick: true,
            build: build_branch_polarity,
        },
        Mutation {
            class: "cc-dead-store",
            level: Level::Codegen,
            description: "optimizer deletes a live store as dead",
            cpu: Cpu::Ibex,
            opt: OptLevel::O2,
            quick: false,
            build: build_dead_store,
        },
        Mutation {
            class: "cc-syssw-reg-clobber",
            level: Level::Codegen,
            description: "system software response writer gets its buffer register off by one",
            cpu: Cpu::Ibex,
            opt: OptLevel::O2,
            quick: false,
            build: build_syssw_reg_clobber,
        },
        Mutation {
            class: "cc-secret-latency",
            level: Level::Codegen,
            description: "behavior-preserving branch on a secret byte (timing leak)",
            cpu: Cpu::Ibex,
            opt: OptLevel::O2,
            quick: false,
            build: build_secret_latency,
        },
        Mutation {
            class: "cc-callee-saved-clobber",
            level: Level::Codegen,
            description: "callee-saved register scratched in handle without a save/restore",
            cpu: Cpu::Ibex,
            opt: OptLevel::O2,
            quick: true,
            build: build_callee_saved_clobber,
        },
        Mutation {
            class: "codegen-stack-frame-underalloc",
            level: Level::Codegen,
            description: "prologue allocates half the frame its body and epilogue address",
            cpu: Cpu::Ibex,
            opt: OptLevel::O2,
            quick: false,
            build: build_stack_frame_underalloc,
        },
        Mutation {
            class: "littlec-loop-bound-drop",
            level: Level::Codegen,
            description: "counted-loop bound annotation dropped; machine code unchanged",
            cpu: Cpu::Ibex,
            opt: OptLevel::O2,
            quick: true,
            build: build_loop_bound_drop,
        },
        Mutation {
            class: "isa-store-operand-swap",
            level: Level::Isa,
            description: "ROM store word re-encoded with base/value registers swapped",
            cpu: Cpu::Ibex,
            opt: OptLevel::O2,
            quick: true,
            build: build_store_operand_swap,
        },
        Mutation {
            class: "isa-load-sign-extend",
            level: Level::Isa,
            description: "ROM byte load re-encoded signed (lbu → lb funct3 slip)",
            cpu: Cpu::Ibex,
            opt: OptLevel::O2,
            quick: false,
            build: build_load_sign_extend,
        },
        Mutation {
            class: "core-ibex-stale-forwarding",
            level: Level::Core,
            description: "Ibex EX stage reads stale values on the forwarding path",
            cpu: Cpu::Ibex,
            opt: OptLevel::O2,
            quick: true,
            build: build_ibex_stale_forwarding,
        },
        Mutation {
            class: "core-pico-mul-early-exit",
            level: Level::Core,
            description: "Pico multiplier exits early on operand bit-length (secret latency)",
            cpu: Cpu::Pico,
            opt: OptLevel::O2,
            quick: false,
            build: build_pico_mul_early_exit,
        },
        Mutation {
            class: "core-contract-latency-understated",
            level: Level::Core,
            description: "Ibex divider runs slower than its contract clause admits",
            cpu: Cpu::Ibex,
            opt: OptLevel::O2,
            quick: false,
            build: build_contract_latency_understated,
        },
        Mutation {
            class: "core-contract-hidden-operand-dep",
            level: Level::Core,
            description: "Ibex shifter grows an undeclared amount-dependent stall",
            cpu: Cpu::Ibex,
            opt: OptLevel::O2,
            quick: false,
            build: build_contract_hidden_operand_dep,
        },
        Mutation {
            class: "core-contract-taint-silent",
            level: Level::Core,
            description: "Pico divider suppresses its declared tainted-operand leak event",
            cpu: Cpu::Pico,
            opt: OptLevel::O2,
            quick: true,
            build: build_contract_taint_silent,
        },
        Mutation {
            class: "soc-journal-write-drop",
            level: Level::Soc,
            description: "FRAM silently drops journal flag-word writes",
            cpu: Cpu::Ibex,
            opt: OptLevel::O2,
            quick: true,
            build: build_journal_write_drop,
        },
        Mutation {
            class: "soc-tx-double-commit",
            level: Level::Soc,
            description: "TX handshake commits every wire byte twice",
            cpu: Cpu::Ibex,
            opt: OptLevel::O2,
            quick: false,
            build: build_tx_double_commit,
        },
        Mutation {
            class: "emu-response-desync",
            level: Level::Emulator,
            description: "emulator template injects ideal responses rotated by one bit",
            cpu: Cpu::Ibex,
            opt: OptLevel::O2,
            quick: true,
            build: build_emulator_desync,
        },
    ]
}

/// The clean (unmutated) fixtures, run as controls: each must survive
/// the full pipeline, proving the kills above are not vacuous fixture
/// failures.
pub fn controls() -> Vec<Mutation> {
    fn clean_token() -> AppPipeline {
        token_app(token_cmd(2, 9))
    }
    fn clean_fieldmul() -> AppPipeline {
        fieldmul_app(fieldmul_source())
    }
    fn clean_prfmask() -> AppPipeline {
        prfmask_app(prfmask_source())
    }
    vec![
        Mutation {
            class: "clean-token",
            level: Level::Crypto,
            description: "unmutated token fixture (control)",
            cpu: Cpu::Ibex,
            opt: OptLevel::O2,
            quick: false,
            build: clean_token,
        },
        Mutation {
            class: "clean-fieldmul",
            level: Level::Crypto,
            description: "unmutated field-oracle fixture (control)",
            cpu: Cpu::Ibex,
            opt: OptLevel::O2,
            quick: false,
            build: clean_fieldmul,
        },
        Mutation {
            class: "clean-prfmask",
            level: Level::Crypto,
            description: "unmutated masked-PRF fixture (control)",
            cpu: Cpu::Ibex,
            opt: OptLevel::O2,
            quick: false,
            build: clean_prfmask,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_spans_every_level_with_unique_classes() {
        let cat = catalog();
        assert!(cat.len() >= 12, "ISSUE floor: at least 12 classes");
        let mut classes: Vec<_> = cat.iter().map(|m| m.class).collect();
        classes.sort_unstable();
        classes.dedup();
        assert_eq!(classes.len(), cat.len(), "class names must be unique");
        for level in Level::ALL {
            assert!(cat.iter().any(|m| m.level == level), "no mutation at level {level}");
        }
    }

    #[test]
    fn quick_sample_covers_every_level() {
        let cat = catalog();
        for level in Level::ALL {
            assert!(
                cat.iter().any(|m| m.quick && m.level == level),
                "--quick must sample level {level}"
            );
        }
    }

    #[test]
    fn every_mutant_builds_and_differs_from_clean() {
        for m in catalog() {
            let app = (m.build)();
            let is_source_mutation = app.tamper.is_none();
            if is_source_mutation {
                // Crypto mutations rewrite the source; everything else
                // must carry a tamper with a matching fingerprint.
                assert_eq!(
                    m.level,
                    Level::Crypto,
                    "{}: tamper-free mutant must be crypto",
                    m.class
                );
            } else {
                let t = app.tamper.as_ref().unwrap();
                assert_eq!(t.fingerprint, m.class, "{}: fingerprint mirrors the class", m.class);
            }
        }
        for c in controls() {
            assert!((c.build)().tamper.is_none(), "{}: controls carry no tamper", c.class);
        }
    }

    #[test]
    fn level_names_roundtrip() {
        for l in Level::ALL {
            assert_eq!(Level::from_name(l.as_str()), Some(l));
        }
        assert_eq!(Level::from_name("warp"), None);
    }

    #[test]
    fn asm_patch_helpers_edit_exactly_one_site() {
        let asm = "handle:\n    addi sp, sp, -16\n    beq a0, x0, .L1\n    sb a1, 0(a0)\n    \
                   bne a2, x0, .L2\n"
            .to_string();
        let flipped = flip_branch_after(asm.clone(), "handle");
        assert!(flipped.contains("bne a0, x0, .L1"), "first branch flipped");
        assert!(flipped.contains("bne a2, x0, .L2"), "second branch untouched");
        let dropped = drop_store_after(asm.clone(), "handle");
        assert!(!dropped.contains("sb a1"), "store replaced");
        assert!(dropped.contains("    nop\n"), "with a nop");
        let inserted = insert_after_label(asm, "handle", "    nop\n");
        assert!(inserted.starts_with("handle:\n    nop\n    addi sp"), "insert lands after label");
    }
}
