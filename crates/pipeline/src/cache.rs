//! The on-disk certificate cache.
//!
//! Keys are `"{stage}-{inputs}"` where `inputs` is the hex
//! [`ArtifactId`](crate::artifact::ArtifactId) over every stage input —
//! so a hit means "this exact stage already ran on these exact inputs",
//! and a stale hit requires a SHA-256 collision (DESIGN.md §9). Values
//! are pretty-printed certificate JSON (`*.cert.json`), human-greppable
//! on disk; lookups re-verify stage, schema, and input hash and treat
//! any mismatch or corruption as a miss (the rejected file is unlinked
//! eagerly, so a poisoned entry costs one re-verification, not one per
//! process until somebody rewrites it).
//!
//! The cache directory comes from `PARFAIT_CACHE_DIR`; without it the
//! cache degrades to per-process memoization, so a single `verify` run
//! still shares work across its matrix cells.
//!
//! ## Concurrency (DESIGN.md §17)
//!
//! The cache is built to be hammered by many threads at once — the
//! `parfait-serve` daemon points every connection at one shared store:
//!
//! - **Sharding.** State is split per stage kind (seven shards), so
//!   FPS lookups never contend with speccheck lookups. Each shard's
//!   memo is behind an [`RwLock`]: the hot read path takes a shared
//!   lock only, and writers of one shard never block readers of
//!   another.
//! - **Single-flight.** [`CertCache::claim`] collapses N concurrent
//!   requests for the same cold key into one computation: the first
//!   claimant becomes the *leader* (and must [`Flight::complete`] or
//!   [`Flight::fail`]), the other N−1 block on the flight and receive
//!   the leader's certificate — or its error — without re-running the
//!   stage. An abandoned flight (leader panicked) fails its waiters
//!   instead of wedging them.
//! - **Crash discipline.** Disk writes keep the temp + rename scheme,
//!   so a concurrent (or crash-interrupted) writer never publishes a
//!   partial certificate: readers see the old file, the new file, or
//!   no file — all safe.
//! - **Tenant namespaces.** [`CertCache::namespaced`] scopes a handle
//!   to one tenant: disk entries live under `root/{tenant}/` and memo
//!   keys carry the tenant prefix, so tenants sharing one daemon never
//!   observe each other's certificates (isolation argument in
//!   DESIGN.md §17).
//!
//! Every lookup and store lands in a [`Metrics`] ledger, per stage
//! kind: `certcache_memory_hit`, `certcache_disk_hit`,
//! `certcache_miss`, `certcache_corrupt_discard` (a present-but-
//! rejected file, also counted as a miss), `certcache_write`,
//! `certcache_write_error`, and `certcache_singleflight_wait` (a
//! claimant that joined another thread's in-flight computation).
//! Namespaced handles additionally bump
//! `certcache_tenant_total{tenant,outcome}`, the per-tenant hit-rate
//! feed.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, RwLock};

use parfait_telemetry::metrics::Metrics;

use crate::artifact::ArtifactId;
use crate::certificate::{StageCertificate, StageKind, SCHEMA};

/// One stage kind's slice of the cache: its memoized certificates and
/// its in-flight computations.
struct Shard {
    memo: RwLock<HashMap<String, StageCertificate>>,
    flights: Mutex<HashMap<String, Arc<FlightState>>>,
}

impl Shard {
    fn new() -> Shard {
        Shard { memo: RwLock::new(HashMap::new()), flights: Mutex::new(HashMap::new()) }
    }
}

/// Outcome slot a [`Flight`]'s waiters block on.
struct FlightState {
    done: Mutex<Option<Result<StageCertificate, String>>>,
    cv: Condvar,
}

/// The shared core every handle (root or namespaced) points at.
struct CacheInner {
    root: Option<PathBuf>,
    shards: [Shard; StageKind::ALL.len()],
    metrics: Metrics,
}

/// A two-tier (in-memory + optional on-disk) certificate store.
///
/// Handles are cheap clones of one shared store; [`namespaced`]
/// (CertCache::namespaced) handles scope lookups and stores to one
/// tenant.
#[derive(Clone)]
pub struct CertCache {
    inner: Arc<CacheInner>,
    /// Tenant namespace (`None` = the root cache).
    tenant: Option<String>,
    /// Resolved directory: root, or `root/{tenant}` for a namespaced
    /// handle. `None` when the cache is memoization-only.
    dir: Option<PathBuf>,
}

/// The outcome of [`CertCache::claim`].
pub enum Claim {
    /// The certificate is available: a memo hit, a disk hit, or the
    /// result of another thread's flight this claim joined.
    Ready(StageCertificate),
    /// This claimant is the leader: it must run the stage and then
    /// [`Flight::complete`] (or [`Flight::fail`]) the flight.
    Leader(Flight),
    /// The claim joined a flight whose leader failed; the error is the
    /// leader's (already `[stage]`-prefixed by the pipeline).
    Failed(String),
}

/// The leader's obligation for one in-flight cache key: exactly one of
/// [`complete`](Flight::complete) or [`fail`](Flight::fail). Dropping
/// an unfinished flight fails it (panic safety: waiters get an error,
/// not a deadlock).
pub struct Flight {
    inner: Arc<CacheInner>,
    dir: Option<PathBuf>,
    stage: StageKind,
    memo_key: String,
    state: Arc<FlightState>,
    finished: bool,
}

impl CertCache {
    /// The cache at `PARFAIT_CACHE_DIR`, or memoization-only when the
    /// variable is unset. The directory is created on first use; an
    /// uncreatable or unwritable directory is a hard error (a silently
    /// disabled cache would defeat the observable cold/warm contract).
    pub fn from_env() -> CertCache {
        match parfait_telemetry::env::cache_dir_loud() {
            Some(dir) => CertCache::at(dir),
            None => CertCache::disabled(),
        }
    }

    /// A cache rooted at an explicit directory, accounting to the
    /// process-wide registry.
    pub fn at(dir: PathBuf) -> CertCache {
        CertCache::at_with(dir, Metrics::global().clone())
    }

    /// [`at`](Self::at) accounting to an explicit registry (tests
    /// inject an isolated [`Metrics`] for exact ledger assertions).
    pub fn at_with(dir: PathBuf, metrics: Metrics) -> CertCache {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("error: cannot create cache directory {}: {e}", dir.display());
            std::process::exit(2);
        }
        // Probe writability up front: a read-only cache dir must fail
        // loudly here, not silently bypass every store() later.
        let probe = dir.join(format!(".parfait-probe.{}", std::process::id()));
        let probed = std::fs::write(&probe, b"probe").and_then(|()| std::fs::remove_file(&probe));
        if let Err(e) = probed {
            eprintln!("error: cache directory {} is not writable: {e}", dir.display());
            std::process::exit(2);
        }
        CertCache {
            inner: Arc::new(CacheInner {
                root: Some(dir.clone()),
                shards: std::array::from_fn(|_| Shard::new()),
                metrics,
            }),
            tenant: None,
            dir: Some(dir),
        }
    }

    /// Memoization-only (no disk persistence), accounting to the
    /// process-wide registry.
    pub fn disabled() -> CertCache {
        CertCache::disabled_with(Metrics::global().clone())
    }

    /// [`disabled`](Self::disabled) accounting to an explicit registry.
    pub fn disabled_with(metrics: Metrics) -> CertCache {
        CertCache {
            inner: Arc::new(CacheInner {
                root: None,
                shards: std::array::from_fn(|_| Shard::new()),
                metrics,
            }),
            tenant: None,
            dir: None,
        }
    }

    /// A handle scoped to `tenant`'s namespace of the same underlying
    /// store: disk entries live under `root/{tenant}/`, memo keys are
    /// tenant-prefixed, and the per-tenant ledger is bumped on every
    /// claim. Tenant names are path- and label-safe by construction:
    /// 1–64 ASCII alphanumerics, `-`, or `_`.
    pub fn namespaced(&self, tenant: &str) -> Result<CertCache, String> {
        if !valid_tenant(tenant) {
            return Err(format!("invalid tenant {tenant:?}: expected 1-64 chars of [A-Za-z0-9_-]"));
        }
        let dir = match &self.inner.root {
            Some(root) => {
                let dir = root.join(tenant);
                std::fs::create_dir_all(&dir).map_err(|e| {
                    format!("cannot create tenant directory {}: {e}", dir.display())
                })?;
                Some(dir)
            }
            None => None,
        };
        Ok(CertCache { inner: Arc::clone(&self.inner), tenant: Some(tenant.to_string()), dir })
    }

    /// The registry this cache's ledger lands in.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// The tenant this handle is scoped to, if any.
    pub fn tenant(&self) -> Option<&str> {
        self.tenant.as_deref()
    }

    /// Bump one ledger counter for `stage`.
    fn ledger(&self, name: &str, stage: StageKind) {
        self.inner.metrics.counter_with(name, &[("stage", stage.as_str())]).inc();
    }

    /// Bump the per-tenant hit-rate ledger (namespaced handles only).
    fn tenant_ledger(&self, outcome: &str) {
        if let Some(t) = &self.tenant {
            self.inner
                .metrics
                .counter_with("certcache_tenant_total", &[("tenant", t), ("outcome", outcome)])
                .inc();
        }
    }

    /// Whether this cache persists across processes.
    pub fn persistent(&self) -> bool {
        self.dir.is_some()
    }

    /// The directory, if persistent (the tenant subdirectory for a
    /// namespaced handle).
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    fn key(stage: StageKind, inputs: ArtifactId) -> String {
        format!("{}-{}", stage.as_str(), inputs)
    }

    /// Memo keys carry the tenant prefix so namespaces never alias in
    /// the shared shard maps.
    fn memo_key(&self, key: &str) -> String {
        match &self.tenant {
            Some(t) => format!("{t}/{key}"),
            None => key.to_string(),
        }
    }

    fn path(&self, key: &str) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{key}.cert.json")))
    }

    fn shard(&self, stage: StageKind) -> &Shard {
        &self.inner.shards[stage.index()]
    }

    /// Look up the certificate for a (stage, inputs) pair. Corrupt or
    /// mismatched entries are misses, never errors.
    pub fn lookup(&self, stage: StageKind, inputs: ArtifactId) -> Option<StageCertificate> {
        let key = Self::key(stage, inputs);
        let memo_key = self.memo_key(&key);
        if let Some(hit) = self.shard(stage).memo.read().unwrap().get(&memo_key) {
            self.ledger("certcache_memory_hit", stage);
            self.tenant_ledger("hit");
            return Some(hit.clone());
        }
        match self.lookup_disk(&key, stage, inputs) {
            DiskLookup::Hit(cert) => {
                self.ledger("certcache_disk_hit", stage);
                self.tenant_ledger("hit");
                self.shard(stage).memo.write().unwrap().insert(memo_key, cert.clone());
                Some(cert)
            }
            DiskLookup::Absent => {
                self.ledger("certcache_miss", stage);
                self.tenant_ledger("miss");
                None
            }
            DiskLookup::Corrupt => {
                // A present-but-rejected file: its own ledger line, and
                // still a miss from the caller's point of view.
                self.ledger("certcache_corrupt_discard", stage);
                self.ledger("certcache_miss", stage);
                self.tenant_ledger("miss");
                None
            }
        }
    }

    fn lookup_disk(&self, key: &str, stage: StageKind, inputs: ArtifactId) -> DiskLookup {
        let Some(path) = self.path(key) else {
            return DiskLookup::Absent;
        };
        let Ok(text) = std::fs::read_to_string(&path) else {
            return DiskLookup::Absent;
        };
        let cert = parfait_telemetry::json::parse(&text)
            .ok()
            .and_then(|json| StageCertificate::from_json(&json));
        match cert {
            // Re-verify the name→content binding: a renamed, truncated,
            // or hand-edited file must not satisfy a different query.
            Some(cert) if cert.stage == stage && cert.inputs == inputs && cert.schema == SCHEMA => {
                DiskLookup::Hit(cert)
            }
            _ => {
                // Unlink the rejected file eagerly: leaving it on disk
                // would re-run the stage in *every* process until some
                // writer happened to replace it. Removal races with a
                // concurrent rewrite are benign (the rewrite is
                // temp+rename; at worst we unlink the fresh file and
                // the next run recomputes once more).
                let _ = std::fs::remove_file(&path);
                DiskLookup::Corrupt
            }
        }
    }

    /// Claim a (stage, inputs) pair for computation, with single-flight
    /// collapsing: concurrent claims of one cold key elect exactly one
    /// [`Claim::Leader`]; the rest block and receive the leader's
    /// outcome. A claim on a warm key returns [`Claim::Ready`]
    /// immediately.
    pub fn claim(&self, stage: StageKind, inputs: ArtifactId) -> Claim {
        let key = Self::key(stage, inputs);
        let memo_key = self.memo_key(&key);
        let shard = self.shard(stage);
        if let Some(hit) = shard.memo.read().unwrap().get(&memo_key) {
            self.ledger("certcache_memory_hit", stage);
            self.tenant_ledger("hit");
            return Claim::Ready(hit.clone());
        }
        // Slow path: join an existing flight, or open one. The flights
        // lock is held only to consult/update the map — never across
        // disk IO or a stage run.
        let state = {
            let mut flights = shard.flights.lock().unwrap();
            if let Some(state) = flights.get(&memo_key) {
                Arc::clone(state)
            } else {
                // Re-check the memo under the flights lock: a flight
                // that completed between our memo read and this lock
                // has already been removed from the map, and its result
                // lives only in the memo.
                if let Some(hit) = shard.memo.read().unwrap().get(&memo_key) {
                    self.ledger("certcache_memory_hit", stage);
                    self.tenant_ledger("hit");
                    return Claim::Ready(hit.clone());
                }
                let state = Arc::new(FlightState { done: Mutex::new(None), cv: Condvar::new() });
                flights.insert(memo_key.clone(), Arc::clone(&state));
                drop(flights);
                // This claimant leads. Probe the disk before running:
                // a cross-process warm hit completes the flight
                // instantly for any waiter that piled up meanwhile.
                let flight = Flight {
                    inner: Arc::clone(&self.inner),
                    dir: self.dir.clone(),
                    stage,
                    memo_key,
                    state,
                    finished: false,
                };
                return match self.lookup_disk(&key, stage, inputs) {
                    DiskLookup::Hit(cert) => {
                        self.ledger("certcache_disk_hit", stage);
                        self.tenant_ledger("hit");
                        flight.publish(Ok(cert.clone()), false);
                        Claim::Ready(cert)
                    }
                    DiskLookup::Absent => {
                        self.ledger("certcache_miss", stage);
                        self.tenant_ledger("miss");
                        Claim::Leader(flight)
                    }
                    DiskLookup::Corrupt => {
                        self.ledger("certcache_corrupt_discard", stage);
                        self.ledger("certcache_miss", stage);
                        self.tenant_ledger("miss");
                        Claim::Leader(flight)
                    }
                };
            }
        };
        // Waiter: block until the leader publishes.
        self.ledger("certcache_singleflight_wait", stage);
        let mut done = state.done.lock().unwrap();
        while done.is_none() {
            done = state.cv.wait(done).unwrap();
        }
        match done.as_ref().expect("loop exits only when set") {
            Ok(cert) => {
                self.tenant_ledger("hit");
                Claim::Ready(cert.clone())
            }
            Err(e) => {
                self.tenant_ledger("miss");
                Claim::Failed(e.clone())
            }
        }
    }

    /// Store a freshly computed certificate. Disk writes go through a
    /// temp file + rename so concurrent verifiers never observe a
    /// partial certificate; write failures are reported but non-fatal
    /// (the verification result itself is unaffected).
    pub fn store(&self, cert: &StageCertificate) {
        let key = Self::key(cert.stage, cert.inputs);
        store_parts(&self.inner, &self.path(&key), &self.memo_key(&key), cert);
    }
}

/// The store implementation shared by [`CertCache::store`] and
/// [`Flight::complete`] (which must not borrow a `CertCache`).
fn store_parts(
    inner: &CacheInner,
    path: &Option<PathBuf>,
    memo_key: &str,
    cert: &StageCertificate,
) {
    if let Some(path) = path {
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let text = cert.to_json().to_pretty_string() + "\n";
        let written = std::fs::write(&tmp, text).and_then(|()| std::fs::rename(&tmp, path));
        match written {
            Ok(()) => inner
                .metrics
                .counter_with("certcache_write", &[("stage", cert.stage.as_str())])
                .inc(),
            Err(e) => {
                inner
                    .metrics
                    .counter_with("certcache_write_error", &[("stage", cert.stage.as_str())])
                    .inc();
                eprintln!("warning: cache write failed for {}: {e}", path.display());
            }
        }
    }
    inner.shards[cert.stage.index()]
        .memo
        .write()
        .unwrap()
        .insert(memo_key.to_string(), cert.clone());
}

impl Flight {
    /// Publish the leader's outcome: store (on success), wake every
    /// waiter, and retire the flight. `store` is false only for the
    /// disk-hit fast path, where the certificate is already on disk.
    fn publish(mut self, outcome: Result<StageCertificate, String>, store: bool) {
        if let Ok(cert) = &outcome {
            if store {
                store_parts(&self.inner, &self.dir_path(), &self.memo_key, cert);
            } else {
                self.inner.shards[self.stage.index()]
                    .memo
                    .write()
                    .unwrap()
                    .insert(self.memo_key.clone(), cert.clone());
            }
        }
        let shard = &self.inner.shards[self.stage.index()];
        shard.flights.lock().unwrap().remove(&self.memo_key);
        *self.state.done.lock().unwrap() = Some(outcome);
        self.state.cv.notify_all();
        self.finished = true;
    }

    fn dir_path(&self) -> Option<PathBuf> {
        // memo_key is "{tenant}/{key}" or "{key}"; the file name is
        // derived from the bare key.
        let key = self.memo_key.rsplit('/').next().expect("split is non-empty");
        self.dir.as_ref().map(|d| d.join(format!("{key}.cert.json")))
    }

    /// The stage ran: store the certificate and release the waiters.
    pub fn complete(self, cert: &StageCertificate) {
        self.publish(Ok(cert.clone()), true);
    }

    /// The stage failed: propagate `err` (verbatim) to every waiter.
    pub fn fail(self, err: &str) {
        self.publish(Err(err.to_string()), true);
    }
}

impl Drop for Flight {
    fn drop(&mut self) {
        if self.finished {
            return;
        }
        // The leader unwound without publishing (a panic inside the
        // stage run): fail the waiters rather than wedging them, and
        // retire the flight so the key stays retryable.
        let shard = &self.inner.shards[self.stage.index()];
        shard.flights.lock().unwrap().remove(&self.memo_key);
        *self.state.done.lock().unwrap() =
            Some(Err("stage computation abandoned (leader panicked)".to_string()));
        self.state.cv.notify_all();
    }
}

/// Whether `tenant` is a usable namespace name: 1–64 ASCII
/// alphanumerics, `-`, or `_` (path- and metric-label-safe, no
/// separators, no traversal).
pub fn valid_tenant(tenant: &str) -> bool {
    !tenant.is_empty()
        && tenant.len() <= 64
        && tenant.chars().all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
}

/// Outcome of a disk probe inside [`CertCache::lookup`].
enum DiskLookup {
    Hit(StageCertificate),
    /// No directory, or no file for this key.
    Absent,
    /// A file existed but failed parse or re-verification (and was
    /// eagerly unlinked).
    Corrupt,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::ArtifactHasher;

    fn cert(tag: &str) -> StageCertificate {
        StageCertificate {
            schema: SCHEMA,
            stage: StageKind::Lockstep,
            app: "t".into(),
            claim: ("app-spec".into(), "app-impl-lowstar".into()),
            inputs: ArtifactHasher::new("cache-test").field_str("tag", tag).finish(),
            stats: vec![("cases".into(), 3)],
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("parfait-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn memo_only_hits_within_process() {
        let cache = CertCache::disabled();
        let c = cert("memo");
        assert!(cache.lookup(c.stage, c.inputs).is_none());
        cache.store(&c);
        assert_eq!(cache.lookup(c.stage, c.inputs), Some(c));
    }

    #[test]
    fn disk_cache_survives_a_fresh_handle_and_rejects_corruption() {
        let dir = temp_dir("cert-cache");
        let c = cert("disk");
        CertCache::at(dir.clone()).store(&c);

        // A brand-new handle (fresh memo) must hit from disk...
        let cache = CertCache::at(dir.clone());
        assert_eq!(cache.lookup(c.stage, c.inputs), Some(c.clone()));
        // ...but never satisfy a different query.
        let other = cert("other");
        assert!(cache.lookup(other.stage, other.inputs).is_none());
        assert!(cache.lookup(StageKind::Fps, c.inputs).is_none());

        // Corrupt the file under a *fresh* handle: miss, not error —
        // and the poisoned file is unlinked eagerly, so the *next*
        // fresh handle doesn't pay the corrupt-discard again.
        let file = dir.join(format!("lockstep-{}.cert.json", c.inputs));
        std::fs::write(&file, "{ not json").unwrap();
        assert!(CertCache::at(dir.clone()).lookup(c.stage, c.inputs).is_none());
        assert!(!file.exists(), "corrupt cert file must be unlinked on discard");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ledger_counts_every_outcome() {
        let dir = temp_dir("cert-ledger");
        let c = cert("ledger");
        let stage_label = [("stage", c.stage.as_str())];

        let metrics = Metrics::new();
        let cache = CertCache::at_with(dir.clone(), metrics.clone());
        assert!(cache.lookup(c.stage, c.inputs).is_none()); // miss
        cache.store(&c); // write
        assert!(cache.lookup(c.stage, c.inputs).is_some()); // memory hit

        // Fresh handle on the same registry: disk hit, then corrupt.
        let cache2 = CertCache::at_with(dir.clone(), metrics.clone());
        assert!(cache2.lookup(c.stage, c.inputs).is_some()); // disk hit
        let file = dir.join(format!("{}-{}.cert.json", c.stage.as_str(), c.inputs));
        std::fs::write(&file, "{ not json").unwrap();
        let cache3 = CertCache::at_with(dir.clone(), metrics.clone());
        assert!(cache3.lookup(c.stage, c.inputs).is_none()); // corrupt discard

        let snap = metrics.snapshot();
        assert_eq!(snap.counter("certcache_miss", &stage_label), Some(2), "cold + corrupt");
        assert_eq!(snap.counter("certcache_write", &stage_label), Some(1));
        assert_eq!(snap.counter("certcache_memory_hit", &stage_label), Some(1));
        assert_eq!(snap.counter("certcache_disk_hit", &stage_label), Some(1));
        assert_eq!(snap.counter("certcache_corrupt_discard", &stage_label), Some(1));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn claim_elects_one_leader_and_waiters_share_the_result() {
        let metrics = Metrics::new();
        let cache = CertCache::disabled_with(metrics.clone());
        let c = cert("flight");

        let Claim::Leader(flight) = cache.claim(c.stage, c.inputs) else {
            panic!("cold claim must lead");
        };
        // Concurrent claimants join the flight and block until the
        // leader completes.
        let joined = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let cache = cache.clone();
                    let c = c.clone();
                    s.spawn(move || match cache.claim(c.stage, c.inputs) {
                        Claim::Ready(got) => got,
                        _ => panic!("waiters must receive the leader's certificate"),
                    })
                })
                .collect();
            // Give the waiters a moment to register, then publish.
            std::thread::sleep(std::time::Duration::from_millis(20));
            flight.complete(&c);
            handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
        });
        assert!(joined.iter().all(|got| *got == c));
        // After the flight, the key is warm.
        assert!(matches!(cache.claim(c.stage, c.inputs), Claim::Ready(_)));
        let snap = metrics.snapshot();
        let label = [("stage", c.stage.as_str())];
        assert_eq!(snap.counter("certcache_miss", &label), Some(1), "exactly one leader ran");
        assert_eq!(snap.counter("certcache_singleflight_wait", &label), Some(4));
    }

    #[test]
    fn failed_and_abandoned_flights_release_waiters_and_stay_retryable() {
        let cache = CertCache::disabled();
        let c = cert("flight-fail");

        // fail(): the waiter sees the leader's error verbatim.
        let Claim::Leader(flight) = cache.claim(c.stage, c.inputs) else { panic!("leads") };
        let waiter = {
            let cache = cache.clone();
            let c = c.clone();
            std::thread::spawn(move || cache.claim(c.stage, c.inputs))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        flight.fail("[lockstep] seeded failure");
        match waiter.join().unwrap() {
            Claim::Failed(e) => assert_eq!(e, "[lockstep] seeded failure"),
            _ => panic!("waiter must see the leader's failure"),
        }

        // The failure is not sticky: the key can be claimed again...
        let Claim::Leader(flight) = cache.claim(c.stage, c.inputs) else {
            panic!("failed keys must stay retryable");
        };
        // ...and an abandoned (dropped) flight also releases waiters.
        let waiter = {
            let cache = cache.clone();
            let c = c.clone();
            std::thread::spawn(move || cache.claim(c.stage, c.inputs))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(flight);
        match waiter.join().unwrap() {
            Claim::Failed(e) => assert!(e.contains("abandoned"), "{e}"),
            _ => panic!("abandoned flights must fail their waiters"),
        }
        // And a successful retry completes normally.
        let Claim::Leader(flight) = cache.claim(c.stage, c.inputs) else { panic!("retries") };
        flight.complete(&c);
        assert!(matches!(cache.claim(c.stage, c.inputs), Claim::Ready(_)));
    }

    #[test]
    fn tenants_are_isolated_on_disk_and_in_memo() {
        let dir = temp_dir("cert-tenants");
        let metrics = Metrics::new();
        let root = CertCache::at_with(dir.clone(), metrics.clone());
        let ta = root.namespaced("tenant-a").unwrap();
        let tb = root.namespaced("tenant-b").unwrap();
        let c = cert("tenant");

        ta.store(&c);
        // Same key, other tenant: a miss, in-process and on disk.
        assert_eq!(ta.lookup(c.stage, c.inputs), Some(c.clone()));
        assert!(tb.lookup(c.stage, c.inputs).is_none());
        assert!(root.lookup(c.stage, c.inputs).is_none(), "root never sees tenant entries");
        // The file lives under the tenant subdirectory.
        let file = dir.join("tenant-a").join(format!("lockstep-{}.cert.json", c.inputs));
        assert!(file.exists());
        // A fresh handle hits tenant-a's entry from disk, still scoped.
        let fresh = CertCache::at_with(dir.clone(), Metrics::new());
        assert_eq!(
            fresh.namespaced("tenant-a").unwrap().lookup(c.stage, c.inputs),
            Some(c.clone())
        );
        assert!(fresh.namespaced("tenant-b").unwrap().lookup(c.stage, c.inputs).is_none());
        // Per-tenant ledger: hits and misses are attributed.
        let snap = metrics.snapshot();
        assert_eq!(
            snap.counter("certcache_tenant_total", &[("outcome", "hit"), ("tenant", "tenant-a")]),
            Some(1)
        );
        assert_eq!(
            snap.counter("certcache_tenant_total", &[("outcome", "miss"), ("tenant", "tenant-b")]),
            Some(1)
        );

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tenant_names_are_validated() {
        let cache = CertCache::disabled();
        for ok in ["a", "tenant-a", "T0_b", &"x".repeat(64)] {
            assert!(cache.namespaced(ok).is_ok(), "{ok:?} should be accepted");
        }
        for bad in ["", "a/b", "..", "a b", "café", &"x".repeat(65), "a\nb"] {
            assert!(cache.namespaced(bad).is_err(), "{bad:?} should be rejected");
        }
    }
}
