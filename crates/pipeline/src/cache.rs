//! The on-disk certificate cache.
//!
//! Keys are `"{stage}-{inputs}"` where `inputs` is the hex
//! [`ArtifactId`](crate::artifact::ArtifactId) over every stage input —
//! so a hit means "this exact stage already ran on these exact inputs",
//! and a stale hit requires a SHA-256 collision (DESIGN.md §9). Values
//! are pretty-printed certificate JSON (`*.cert.json`), human-greppable
//! on disk; lookups re-verify stage, schema, and input hash and treat
//! any mismatch or corruption as a miss.
//!
//! The cache directory comes from `PARFAIT_CACHE_DIR`; without it the
//! cache degrades to per-process memoization, so a single `verify` run
//! still shares work across its matrix cells.
//!
//! Every lookup and store lands in a [`Metrics`] ledger, per stage
//! kind: `certcache_memory_hit`, `certcache_disk_hit`,
//! `certcache_miss`, `certcache_corrupt_discard` (a present-but-
//! rejected file, also counted as a miss), `certcache_write`, and
//! `certcache_write_error` — so "what fraction of stage runs hit the
//! disk cache?" is a snapshot query, not a rerun.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use parfait_telemetry::metrics::Metrics;

use crate::artifact::ArtifactId;
use crate::certificate::{StageCertificate, StageKind, SCHEMA};

/// A two-tier (in-memory + optional on-disk) certificate store.
pub struct CertCache {
    dir: Option<PathBuf>,
    memo: Mutex<BTreeMap<String, StageCertificate>>,
    metrics: Metrics,
}

impl CertCache {
    /// The cache at `PARFAIT_CACHE_DIR`, or memoization-only when the
    /// variable is unset. The directory is created on first use; an
    /// uncreatable or unwritable directory is a hard error (a silently
    /// disabled cache would defeat the observable cold/warm contract).
    pub fn from_env() -> CertCache {
        match parfait_telemetry::env::cache_dir_loud() {
            Some(dir) => CertCache::at(dir),
            None => CertCache::disabled(),
        }
    }

    /// A cache rooted at an explicit directory, accounting to the
    /// process-wide registry.
    pub fn at(dir: PathBuf) -> CertCache {
        CertCache::at_with(dir, Metrics::global().clone())
    }

    /// [`at`](Self::at) accounting to an explicit registry (tests
    /// inject an isolated [`Metrics`] for exact ledger assertions).
    pub fn at_with(dir: PathBuf, metrics: Metrics) -> CertCache {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("error: cannot create cache directory {}: {e}", dir.display());
            std::process::exit(2);
        }
        // Probe writability up front: a read-only cache dir must fail
        // loudly here, not silently bypass every store() later.
        let probe = dir.join(format!(".parfait-probe.{}", std::process::id()));
        let probed = std::fs::write(&probe, b"probe").and_then(|()| std::fs::remove_file(&probe));
        if let Err(e) = probed {
            eprintln!("error: cache directory {} is not writable: {e}", dir.display());
            std::process::exit(2);
        }
        CertCache { dir: Some(dir), memo: Mutex::new(BTreeMap::new()), metrics }
    }

    /// Memoization-only (no disk persistence), accounting to the
    /// process-wide registry.
    pub fn disabled() -> CertCache {
        CertCache::disabled_with(Metrics::global().clone())
    }

    /// [`disabled`](Self::disabled) accounting to an explicit registry.
    pub fn disabled_with(metrics: Metrics) -> CertCache {
        CertCache { dir: None, memo: Mutex::new(BTreeMap::new()), metrics }
    }

    /// The registry this cache's ledger lands in.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Bump one ledger counter for `stage`.
    fn ledger(&self, name: &str, stage: StageKind) {
        self.metrics.counter_with(name, &[("stage", stage.as_str())]).inc();
    }

    /// Whether this cache persists across processes.
    pub fn persistent(&self) -> bool {
        self.dir.is_some()
    }

    /// The directory, if persistent.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    fn key(stage: StageKind, inputs: ArtifactId) -> String {
        format!("{}-{}", stage.as_str(), inputs)
    }

    fn path(&self, key: &str) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{key}.cert.json")))
    }

    /// Look up the certificate for a (stage, inputs) pair. Corrupt or
    /// mismatched entries are misses, never errors.
    pub fn lookup(&self, stage: StageKind, inputs: ArtifactId) -> Option<StageCertificate> {
        let key = Self::key(stage, inputs);
        if let Some(hit) = self.memo.lock().unwrap().get(&key) {
            self.ledger("certcache_memory_hit", stage);
            return Some(hit.clone());
        }
        match self.lookup_disk(&key, stage, inputs) {
            DiskLookup::Hit(cert) => {
                self.ledger("certcache_disk_hit", stage);
                self.memo.lock().unwrap().insert(key, cert.clone());
                Some(cert)
            }
            DiskLookup::Absent => {
                self.ledger("certcache_miss", stage);
                None
            }
            DiskLookup::Corrupt => {
                // A present-but-rejected file: its own ledger line, and
                // still a miss from the caller's point of view.
                self.ledger("certcache_corrupt_discard", stage);
                self.ledger("certcache_miss", stage);
                None
            }
        }
    }

    fn lookup_disk(&self, key: &str, stage: StageKind, inputs: ArtifactId) -> DiskLookup {
        let Some(path) = self.path(key) else {
            return DiskLookup::Absent;
        };
        let Ok(text) = std::fs::read_to_string(&path) else {
            return DiskLookup::Absent;
        };
        let cert = parfait_telemetry::json::parse(&text)
            .ok()
            .and_then(|json| StageCertificate::from_json(&json));
        match cert {
            // Re-verify the name→content binding: a renamed, truncated,
            // or hand-edited file must not satisfy a different query.
            Some(cert) if cert.stage == stage && cert.inputs == inputs && cert.schema == SCHEMA => {
                DiskLookup::Hit(cert)
            }
            _ => DiskLookup::Corrupt,
        }
    }

    /// Store a freshly computed certificate. Disk writes go through a
    /// temp file + rename so concurrent verifiers never observe a
    /// partial certificate; write failures are reported but non-fatal
    /// (the verification result itself is unaffected).
    pub fn store(&self, cert: &StageCertificate) {
        let key = Self::key(cert.stage, cert.inputs);
        if let Some(path) = self.path(&key) {
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            let text = cert.to_json().to_pretty_string() + "\n";
            let written = std::fs::write(&tmp, text).and_then(|()| std::fs::rename(&tmp, &path));
            match written {
                Ok(()) => self.ledger("certcache_write", cert.stage),
                Err(e) => {
                    self.ledger("certcache_write_error", cert.stage);
                    eprintln!("warning: cache write failed for {}: {e}", path.display());
                }
            }
        }
        self.memo.lock().unwrap().insert(key, cert.clone());
    }
}

/// Outcome of a disk probe inside [`CertCache::lookup`].
enum DiskLookup {
    Hit(StageCertificate),
    /// No directory, or no file for this key.
    Absent,
    /// A file existed but failed parse or re-verification.
    Corrupt,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::ArtifactHasher;

    fn cert(tag: &str) -> StageCertificate {
        StageCertificate {
            schema: SCHEMA,
            stage: StageKind::Lockstep,
            app: "t".into(),
            claim: ("app-spec".into(), "app-impl-lowstar".into()),
            inputs: ArtifactHasher::new("cache-test").field_str("tag", tag).finish(),
            stats: vec![("cases".into(), 3)],
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("parfait-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn memo_only_hits_within_process() {
        let cache = CertCache::disabled();
        let c = cert("memo");
        assert!(cache.lookup(c.stage, c.inputs).is_none());
        cache.store(&c);
        assert_eq!(cache.lookup(c.stage, c.inputs), Some(c));
    }

    #[test]
    fn disk_cache_survives_a_fresh_handle_and_rejects_corruption() {
        let dir = temp_dir("cert-cache");
        let c = cert("disk");
        CertCache::at(dir.clone()).store(&c);

        // A brand-new handle (fresh memo) must hit from disk...
        let cache = CertCache::at(dir.clone());
        assert_eq!(cache.lookup(c.stage, c.inputs), Some(c.clone()));
        // ...but never satisfy a different query.
        let other = cert("other");
        assert!(cache.lookup(other.stage, other.inputs).is_none());
        assert!(cache.lookup(StageKind::Fps, c.inputs).is_none());

        // Corrupt the file under a *fresh* handle: miss, not error.
        let file = dir.join(format!("lockstep-{}.cert.json", c.inputs));
        std::fs::write(&file, "{ not json").unwrap();
        assert!(CertCache::at(dir.clone()).lookup(c.stage, c.inputs).is_none());

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ledger_counts_every_outcome() {
        let dir = temp_dir("cert-ledger");
        let c = cert("ledger");
        let stage_label = [("stage", c.stage.as_str())];

        let metrics = Metrics::new();
        let cache = CertCache::at_with(dir.clone(), metrics.clone());
        assert!(cache.lookup(c.stage, c.inputs).is_none()); // miss
        cache.store(&c); // write
        assert!(cache.lookup(c.stage, c.inputs).is_some()); // memory hit

        // Fresh handle on the same registry: disk hit, then corrupt.
        let cache2 = CertCache::at_with(dir.clone(), metrics.clone());
        assert!(cache2.lookup(c.stage, c.inputs).is_some()); // disk hit
        let file = dir.join(format!("{}-{}.cert.json", c.stage.as_str(), c.inputs));
        std::fs::write(&file, "{ not json").unwrap();
        let cache3 = CertCache::at_with(dir.clone(), metrics.clone());
        assert!(cache3.lookup(c.stage, c.inputs).is_none()); // corrupt discard

        let snap = metrics.snapshot();
        assert_eq!(snap.counter("certcache_miss", &stage_label), Some(2), "cold + corrupt");
        assert_eq!(snap.counter("certcache_write", &stage_label), Some(1));
        assert_eq!(snap.counter("certcache_memory_hit", &stage_label), Some(1));
        assert_eq!(snap.counter("certcache_disk_hit", &stage_label), Some(1));
        assert_eq!(snap.counter("certcache_corrupt_discard", &stage_label), Some(1));

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
