//! The on-disk certificate cache.
//!
//! Keys are `"{stage}-{inputs}"` where `inputs` is the hex
//! [`ArtifactId`](crate::artifact::ArtifactId) over every stage input —
//! so a hit means "this exact stage already ran on these exact inputs",
//! and a stale hit requires a SHA-256 collision (DESIGN.md §9). Values
//! are pretty-printed certificate JSON (`*.cert.json`), human-greppable
//! on disk; lookups re-verify stage, schema, and input hash and treat
//! any mismatch or corruption as a miss.
//!
//! The cache directory comes from `PARFAIT_CACHE_DIR`; without it the
//! cache degrades to per-process memoization, so a single `verify` run
//! still shares work across its matrix cells.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::artifact::ArtifactId;
use crate::certificate::{StageCertificate, StageKind, SCHEMA};

/// A two-tier (in-memory + optional on-disk) certificate store.
pub struct CertCache {
    dir: Option<PathBuf>,
    memo: Mutex<BTreeMap<String, StageCertificate>>,
}

impl CertCache {
    /// The cache at `PARFAIT_CACHE_DIR`, or memoization-only when the
    /// variable is unset. The directory is created on first use; an
    /// uncreatable directory is a hard error (a silently disabled cache
    /// would defeat the observable cold/warm contract).
    pub fn from_env() -> CertCache {
        match std::env::var_os("PARFAIT_CACHE_DIR") {
            Some(dir) if !dir.is_empty() => CertCache::at(PathBuf::from(dir)),
            _ => CertCache::disabled(),
        }
    }

    /// A cache rooted at an explicit directory.
    pub fn at(dir: PathBuf) -> CertCache {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("error: cannot create cache directory {}: {e}", dir.display());
            std::process::exit(2);
        }
        CertCache { dir: Some(dir), memo: Mutex::new(BTreeMap::new()) }
    }

    /// Memoization-only (no disk persistence).
    pub fn disabled() -> CertCache {
        CertCache { dir: None, memo: Mutex::new(BTreeMap::new()) }
    }

    /// Whether this cache persists across processes.
    pub fn persistent(&self) -> bool {
        self.dir.is_some()
    }

    /// The directory, if persistent.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    fn key(stage: StageKind, inputs: ArtifactId) -> String {
        format!("{}-{}", stage.as_str(), inputs)
    }

    fn path(&self, key: &str) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("{key}.cert.json")))
    }

    /// Look up the certificate for a (stage, inputs) pair. Corrupt or
    /// mismatched entries are misses, never errors.
    pub fn lookup(&self, stage: StageKind, inputs: ArtifactId) -> Option<StageCertificate> {
        let key = Self::key(stage, inputs);
        if let Some(hit) = self.memo.lock().unwrap().get(&key) {
            return Some(hit.clone());
        }
        let path = self.path(&key)?;
        let text = std::fs::read_to_string(path).ok()?;
        let json = parfait_telemetry::json::parse(&text).ok()?;
        let cert = StageCertificate::from_json(&json)?;
        // Re-verify the name→content binding: a renamed, truncated, or
        // hand-edited file must not satisfy a different query.
        if cert.stage != stage || cert.inputs != inputs || cert.schema != SCHEMA {
            return None;
        }
        self.memo.lock().unwrap().insert(key, cert.clone());
        Some(cert)
    }

    /// Store a freshly computed certificate. Disk writes go through a
    /// temp file + rename so concurrent verifiers never observe a
    /// partial certificate; write failures are reported but non-fatal
    /// (the verification result itself is unaffected).
    pub fn store(&self, cert: &StageCertificate) {
        let key = Self::key(cert.stage, cert.inputs);
        if let Some(path) = self.path(&key) {
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            let text = cert.to_json().to_pretty_string() + "\n";
            let written = std::fs::write(&tmp, text).and_then(|()| std::fs::rename(&tmp, &path));
            if let Err(e) = written {
                eprintln!("warning: cache write failed for {}: {e}", path.display());
            }
        }
        self.memo.lock().unwrap().insert(key, cert.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::ArtifactHasher;

    fn cert(tag: &str) -> StageCertificate {
        StageCertificate {
            schema: SCHEMA,
            stage: StageKind::Lockstep,
            app: "t".into(),
            claim: ("app-spec".into(), "app-impl-lowstar".into()),
            inputs: ArtifactHasher::new("cache-test").field_str("tag", tag).finish(),
            stats: vec![("cases".into(), 3)],
        }
    }

    fn temp_dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("parfait-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn memo_only_hits_within_process() {
        let cache = CertCache::disabled();
        let c = cert("memo");
        assert!(cache.lookup(c.stage, c.inputs).is_none());
        cache.store(&c);
        assert_eq!(cache.lookup(c.stage, c.inputs), Some(c));
    }

    #[test]
    fn disk_cache_survives_a_fresh_handle_and_rejects_corruption() {
        let dir = temp_dir("cert-cache");
        let c = cert("disk");
        CertCache::at(dir.clone()).store(&c);

        // A brand-new handle (fresh memo) must hit from disk...
        let cache = CertCache::at(dir.clone());
        assert_eq!(cache.lookup(c.stage, c.inputs), Some(c.clone()));
        // ...but never satisfy a different query.
        let other = cert("other");
        assert!(cache.lookup(other.stage, other.inputs).is_none());
        assert!(cache.lookup(StageKind::Fps, c.inputs).is_none());

        // Corrupt the file under a *fresh* handle: miss, not error.
        let file = dir.join(format!("lockstep-{}.cert.json", c.inputs));
        std::fs::write(&file, "{ not json").unwrap();
        assert!(CertCache::at(dir.clone()).lookup(c.stage, c.inputs).is_none());

        std::fs::remove_dir_all(&dir).unwrap();
    }
}
