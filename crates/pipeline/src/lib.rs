//! parfait-pipeline — the unified, incremental proof pipeline.
//!
//! The paper's central structural claim is that IPR is *transitive*
//! (§3): the end-to-end statement "the SoC leaks nothing beyond the
//! application specification" decomposes into independent per-level
//! obligations. This crate makes that decomposition operational. The
//! whole proof is modeled as five typed stages
//!
//! ```text
//! SpecCheck → Lockstep (Starling) → Equivalence (littlec) → FPS (Knox2)
//! ```
//!
//! each of which hashes its complete input set into a content address
//! ([`artifact`]), consults an on-disk certificate cache ([`cache`],
//! rooted at `PARFAIT_CACHE_DIR`), and on a miss runs the underlying
//! checker and emits a serializable [`certificate::StageCertificate`].
//! The four certificates of an (app × cpu × opt) cell chain — via the
//! same adjacency condition as `parfait::transitive` — into one
//! [`certificate::ComposedCertificate`] for the cell.
//!
//! The payoff is incrementality: re-verifying an unchanged app is a
//! near-instant cache hit, and a one-line change to an app's littlec
//! source re-runs only the stages downstream of the source (lockstep,
//! equivalence, FPS) while the spec-level census stays cached. A stale
//! hit would require a SHA-256 collision (see DESIGN.md §9).

#![forbid(unsafe_code)]

pub mod apps;
pub mod artifact;
pub mod cache;
pub mod certificate;
pub mod pipeline;
pub mod serve;

pub use apps::{app_from_codec, AppPipeline, SpecRow, SpecTrace, StdApp, Tamper};
pub use artifact::{ArtifactHasher, ArtifactId};
pub use cache::CertCache;
pub use certificate::{
    compose, ComposeError, ComposedCertificate, StageCertificate, StageKind, SCHEMA,
};
pub use pipeline::{CellReport, Pipeline, StageOutcome};
pub use serve::ServeCore;
