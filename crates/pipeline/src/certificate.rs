//! Serializable per-stage certificates and their composition.
//!
//! A [`StageCertificate`] records what one proof stage established: a
//! claim `from ≈IPR to` between two abstraction-level labels
//! ([`parfait::levels::Level`]), the content hash of everything the
//! stage consumed, and the stage's summary statistics. Certificates
//! deliberately carry **no timing fields**, so a cached certificate is
//! byte-identical to a freshly computed one.
//!
//! [`compose`] is the executable shadow of the transitivity theorem
//! ([`parfait::transitive`]): it checks that the claims chain
//! end-to-end (`certᵢ.to == certᵢ₊₁.from`) exactly the way
//! `ComposedDriver`/`ComposedEmulator` stack per-level refinements, and
//! produces one [`ComposedCertificate`] for the whole (app × cpu × opt)
//! cell.

use std::fmt;

use parfait_telemetry::json::Json;

use crate::artifact::{ArtifactHasher, ArtifactId};

/// Certificate schema version, bumped on any change to the serialized
/// form (a bump invalidates every cache entry, which is the point).
pub const SCHEMA: i64 = 1;

/// The seven proof stages, in compose-chain order.
///
/// `Contract` comes after `Fps` in the *chain* (it is a self-loop at
/// the SoC level, checking the core against its exported leakage
/// contract), but the runner *executes* it before FPS so a
/// contract-violating core fails fast with a named instruction class
/// instead of an opaque dual-world divergence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StageKind {
    /// Spec-level non-leakage (`parfait::speccheck` census).
    SpecCheck,
    /// IPR by lockstep: app spec vs littlec implementation (Starling).
    Lockstep,
    /// Translation validation across optimization levels (littlec).
    Equivalence,
    /// Static constant-time lint over IR and assembly
    /// (`parfait-analyzer`).
    CtCheck,
    /// Whole-firmware resource bounds: WCET and worst-case stack depth
    /// over the linked text (`parfait_analyzer::bound_asm`).
    Bound,
    /// Functional-physical simulation at the wire level (Knox2).
    Fps,
    /// The core's measured observables vs its declared
    /// [`parfait_cores::LeakageContract`] (stimulus battery).
    Contract,
}

impl StageKind {
    /// All stages in compose-chain order.
    pub const ALL: [StageKind; 7] = [
        StageKind::SpecCheck,
        StageKind::Lockstep,
        StageKind::Equivalence,
        StageKind::CtCheck,
        StageKind::Bound,
        StageKind::Fps,
        StageKind::Contract,
    ];

    /// Position in [`ALL`](Self::ALL) — a dense index for per-stage
    /// arrays (e.g. the cache's shards).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Stable machine-readable name (cache keys, JSON, telemetry).
    pub fn as_str(self) -> &'static str {
        match self {
            StageKind::SpecCheck => "speccheck",
            StageKind::Lockstep => "lockstep",
            StageKind::Equivalence => "equivalence",
            StageKind::CtCheck => "ctcheck",
            StageKind::Bound => "bound",
            StageKind::Fps => "fps",
            StageKind::Contract => "contract",
        }
    }

    /// Parse a stable stage name back to the kind (cache filenames,
    /// the adversary harness's kill-stage attribution).
    pub fn from_name(s: &str) -> Option<StageKind> {
        StageKind::ALL.into_iter().find(|k| k.as_str() == s)
    }
}

impl fmt::Display for StageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// What one stage established, in cacheable form.
#[derive(Clone, Debug, PartialEq)]
pub struct StageCertificate {
    /// Serialized-form version ([`SCHEMA`]).
    pub schema: i64,
    /// Which stage produced this.
    pub stage: StageKind,
    /// Application slug (e.g. `"hasher"`).
    pub app: String,
    /// The IPR claim: (from-level label, to-level label), e.g.
    /// `("app-impl-asm(-O2)", "soc(Ibex)")`.
    pub claim: (String, String),
    /// Content hash of every input the stage consumed.
    pub inputs: ArtifactId,
    /// Summary statistics (cases checked, cycles simulated, ...) —
    /// deterministic counters only, never wall-clock times.
    pub stats: Vec<(String, i64)>,
}

impl StageCertificate {
    /// Look up a summary statistic by name (e.g. the bound stage's
    /// `wcet_cycles`, which the FPS stage prices its budget from).
    pub fn stat(&self, name: &str) -> Option<i64> {
        self.stats.iter().find(|(k, _)| k == name).map(|&(_, v)| v)
    }

    /// Serialize with a fixed key order.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Int(self.schema)),
            ("stage", Json::str(self.stage.as_str())),
            ("app", Json::str(&self.app)),
            (
                "claim",
                Json::obj([("from", Json::str(&self.claim.0)), ("to", Json::str(&self.claim.1))]),
            ),
            ("inputs", Json::str(self.inputs.to_string())),
            (
                "stats",
                Json::Obj(self.stats.iter().map(|(k, v)| (k.clone(), Json::Int(*v))).collect()),
            ),
        ])
    }

    /// Deserialize; `None` on any structural mismatch (treated by the
    /// cache as a miss, never an error).
    pub fn from_json(v: &Json) -> Option<StageCertificate> {
        let cert = StageCertificate {
            schema: v.get("schema")?.as_i64()?,
            stage: StageKind::from_name(v.get("stage")?.as_str()?)?,
            app: v.get("app")?.as_str()?.to_string(),
            claim: {
                let c = v.get("claim")?;
                (c.get("from")?.as_str()?.to_string(), c.get("to")?.as_str()?.to_string())
            },
            inputs: ArtifactId::from_hex(v.get("inputs")?.as_str()?)?,
            stats: v
                .get("stats")?
                .as_object()?
                .iter()
                .map(|(k, v)| Some((k.clone(), v.as_i64()?)))
                .collect::<Option<Vec<_>>>()?,
        };
        Some(cert)
    }

    /// The canonical byte form: compact JSON plus a trailing newline.
    /// Cached and fresh certificates compare equal on exactly these
    /// bytes.
    pub fn canonical(&self) -> String {
        let mut s = self.to_json().to_string();
        s.push('\n');
        s
    }
}

/// Why [`compose`] rejected a certificate sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ComposeError {
    /// No certificates to compose.
    Empty,
    /// Certificates for different applications.
    AppMismatch {
        /// The first app seen.
        expected: String,
        /// The offending app.
        found: String,
    },
    /// Adjacent claims don't chain.
    BrokenChain {
        /// Index of the earlier certificate.
        at: usize,
        /// Its `to` label.
        to: String,
        /// The next certificate's `from` label.
        from: String,
    },
}

impl fmt::Display for ComposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComposeError::Empty => f.write_str("no stage certificates to compose"),
            ComposeError::AppMismatch { expected, found } => {
                write!(f, "certificates mix apps: {expected:?} vs {found:?}")
            }
            ComposeError::BrokenChain { at, to, from } => write!(
                f,
                "claim chain breaks after stage {at}: {to:?} does not meet {from:?} — \
                 transitivity needs adjacent levels"
            ),
        }
    }
}

/// The end-to-end claim: every stage certificate, chained by
/// transitivity into one statement `from ≈IPR to`.
#[derive(Clone, Debug, PartialEq)]
pub struct ComposedCertificate {
    /// Serialized-form version.
    pub schema: i64,
    /// Application slug.
    pub app: String,
    /// The composed claim — the first stage's `from` to the last
    /// stage's `to`.
    pub claim: (String, String),
    /// Hash of the concatenated canonical stage certificates.
    pub inputs: ArtifactId,
    /// The chained stages, in order.
    pub stages: Vec<StageCertificate>,
}

impl ComposedCertificate {
    /// Serialize with a fixed key order.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::Int(self.schema)),
            ("app", Json::str(&self.app)),
            (
                "claim",
                Json::obj([("from", Json::str(&self.claim.0)), ("to", Json::str(&self.claim.1))]),
            ),
            ("inputs", Json::str(self.inputs.to_string())),
            ("stages", Json::Arr(self.stages.iter().map(StageCertificate::to_json).collect())),
        ])
    }

    /// The canonical byte form (compact JSON + newline).
    pub fn canonical(&self) -> String {
        let mut s = self.to_json().to_string();
        s.push('\n');
        s
    }
}

/// Chain stage certificates into one end-to-end claim, enforcing the
/// side conditions of the transitivity theorem: same application, and
/// each certificate's `to` level is the next one's `from` level.
///
/// Self-loop claims (`from == to`, e.g. the spec-level non-leakage
/// check) compose trivially, mirroring how a reflexive refinement
/// stacks under `parfait::transitive`.
pub fn compose(stages: &[StageCertificate]) -> Result<ComposedCertificate, ComposeError> {
    let first = stages.first().ok_or(ComposeError::Empty)?;
    for (i, pair) in stages.windows(2).enumerate() {
        if pair[1].app != first.app {
            return Err(ComposeError::AppMismatch {
                expected: first.app.clone(),
                found: pair[1].app.clone(),
            });
        }
        if pair[0].claim.1 != pair[1].claim.0 {
            return Err(ComposeError::BrokenChain {
                at: i,
                to: pair[0].claim.1.clone(),
                from: pair[1].claim.0.clone(),
            });
        }
    }
    let last = stages.last().unwrap();
    let mut h = ArtifactHasher::new("composed-certificate");
    for cert in stages {
        h.field(cert.stage.as_str(), cert.canonical().as_bytes());
    }
    Ok(ComposedCertificate {
        schema: SCHEMA,
        app: first.app.clone(),
        claim: (first.claim.0.clone(), last.claim.1.clone()),
        inputs: h.finish(),
        stages: stages.to_vec(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cert(stage: StageKind, app: &str, from: &str, to: &str) -> StageCertificate {
        StageCertificate {
            schema: SCHEMA,
            stage,
            app: app.into(),
            claim: (from.into(), to.into()),
            inputs: ArtifactHasher::new("test").field_str("app", app).finish(),
            stats: vec![("cases".into(), 7)],
        }
    }

    #[test]
    fn certificate_roundtrips_through_json() {
        let c = cert(StageKind::Lockstep, "hasher", "app-spec", "app-impl-lowstar");
        let text = c.canonical();
        let back =
            StageCertificate::from_json(&parfait_telemetry::json::parse(text.trim()).unwrap())
                .unwrap();
        assert_eq!(back, c);
        assert_eq!(back.canonical(), text);
    }

    #[test]
    fn from_json_rejects_structural_garbage() {
        let good = cert(StageKind::Fps, "a", "x", "y").to_json();
        assert!(StageCertificate::from_json(&good).is_some());
        assert!(StageCertificate::from_json(&Json::Null).is_none());
        let bad_stage = Json::obj([("schema", Json::Int(1)), ("stage", Json::str("warp"))]);
        assert!(StageCertificate::from_json(&bad_stage).is_none());
    }

    #[test]
    fn compose_chains_adjacent_claims() {
        let chain = [
            cert(StageKind::SpecCheck, "hasher", "app-spec", "app-spec"),
            cert(StageKind::Lockstep, "hasher", "app-spec", "app-impl-lowstar"),
            cert(StageKind::Equivalence, "hasher", "app-impl-lowstar", "app-impl-asm(-O2)"),
            cert(StageKind::CtCheck, "hasher", "app-impl-asm(-O2)", "app-impl-asm(-O2)"),
            cert(StageKind::Bound, "hasher", "app-impl-asm(-O2)", "app-impl-asm(-O2)"),
            cert(StageKind::Fps, "hasher", "app-impl-asm(-O2)", "soc(Ibex)"),
            cert(StageKind::Contract, "hasher", "soc(Ibex)", "soc(Ibex)"),
        ];
        let composed = compose(&chain).unwrap();
        assert_eq!(composed.claim, ("app-spec".to_string(), "soc(Ibex)".to_string()));
        assert_eq!(composed.stages.len(), 7);
        // Deterministic: same chain, same composed hash.
        assert_eq!(composed, compose(&chain).unwrap());
    }

    #[test]
    fn compose_rejects_broken_chains() {
        assert_eq!(compose(&[]), Err(ComposeError::Empty));
        let gap = [
            cert(StageKind::Lockstep, "hasher", "app-spec", "app-impl-lowstar"),
            cert(StageKind::Fps, "hasher", "app-impl-asm(-O2)", "soc(Ibex)"),
        ];
        assert!(matches!(compose(&gap), Err(ComposeError::BrokenChain { at: 0, .. })));
        let mixed = [
            cert(StageKind::Lockstep, "hasher", "a", "b"),
            cert(StageKind::Equivalence, "ecdsa", "b", "c"),
        ];
        assert!(matches!(compose(&mixed), Err(ComposeError::AppMismatch { .. })));
    }
}
