//! The staged proof pipeline.
//!
//! Seven typed stages — `SpecCheck → Lockstep → Equivalence → CtCheck
//! → Contract → Bound → FPS` in execution order — each hash their
//! complete input set ([`crate::artifact`]), consult the certificate
//! cache ([`crate::cache`]), and on a miss run the underlying checker
//! (speccheck census, Starling, littlec translation validation, the
//! `parfait-analyzer` constant-time lint, the leakage-contract
//! stimulus battery, the whole-firmware resource-bound analysis,
//! Knox2) and mint a [`StageCertificate`]. A verified (app × cpu ×
//! opt) cell composes its seven certificates into one end-to-end
//! claim via [`crate::certificate::compose`] — the executable form of
//! the paper's transitivity theorem.
//!
//! This module is the **single** home of the firmware/spec/SoC build
//! plumbing the bench binaries used to duplicate: [`Pipeline::run_fps`]
//! is the one place a real and an ideal SoC are constructed and driven.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use parfait::levels::Level;
use parfait_hsms::platform::{build_firmware_parts, make_soc_with, Cpu};
use parfait_hsms::syssw;
use parfait_knox2::{check_fps_parallel, CircuitEmulator, FpsConfig, FpsObserver, FpsReport};
use parfait_littlec::codegen::OptLevel;
use parfait_littlec::validate::{asm_machine, validate_handle_patched};
use parfait_parallel::parallel_map;
use parfait_riscv::model::AsmStateMachine;
use parfait_soc::{Firmware, Soc};
use parfait_telemetry::Telemetry;

use crate::apps::AppPipeline;
use crate::artifact::{ArtifactHasher, ArtifactId};
use crate::cache::{CertCache, Claim};
use crate::certificate::{compose, ComposedCertificate, StageCertificate, StageKind, SCHEMA};

/// The result of running (or short-circuiting) one stage.
#[derive(Clone, Debug)]
pub struct StageOutcome {
    /// The certificate — byte-identical whether cached or fresh.
    pub certificate: StageCertificate,
    /// Wall time this invocation spent (lookup only, on a hit).
    pub wall: Duration,
    /// Whether the certificate came from the cache.
    pub cache_hit: bool,
    /// The full FPS report, for stages that ran the hardware check
    /// fresh (`None` on cache hits and software stages).
    pub fps: Option<FpsReport>,
}

/// One fully verified (cpu × opt) cell of an app's matrix.
#[derive(Clone, Debug)]
pub struct CellReport {
    /// The platform verified.
    pub cpu: Cpu,
    /// The optimization level verified.
    pub opt: OptLevel,
    /// All stage outcomes, in compose-chain order
    /// ([`StageKind::ALL`]).
    pub stages: Vec<StageOutcome>,
    /// The composed end-to-end certificate.
    pub composed: ComposedCertificate,
}

impl CellReport {
    /// Whether every stage was a cache hit.
    pub fn fully_cached(&self) -> bool {
        self.stages.iter().all(|s| s.cache_hit)
    }
}

/// The verification engine: a certificate cache plus telemetry.
pub struct Pipeline {
    /// The certificate store consulted before any stage runs.
    pub cache: CertCache,
    /// Telemetry for spans and cache-hit counters.
    pub tel: Telemetry,
}

impl Pipeline {
    /// A pipeline on the environment's cache (`PARFAIT_CACHE_DIR`).
    pub fn from_env(tel: Telemetry) -> Pipeline {
        Pipeline { cache: CertCache::from_env(), tel }
    }

    /// A pipeline on an explicit cache.
    pub fn new(cache: CertCache, tel: Telemetry) -> Pipeline {
        Pipeline { cache, tel }
    }

    /// The metrics registry this pipeline accounts to (the cache's).
    pub fn metrics(&self) -> &parfait_telemetry::metrics::Metrics {
        self.cache.metrics()
    }

    /// Time a stage's input derivation (frontend + lowering + hashing
    /// for ctcheck, pure hashing for the cheap stages) into
    /// `pipeline_artifact_hash_us{stage}`.
    fn timed_inputs<T>(&self, stage: StageKind, derive: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = derive();
        self.metrics()
            .histogram_with("pipeline_artifact_hash_us", &[("stage", stage.as_str())])
            .record_duration(t0.elapsed());
        out
    }

    /// Cache-check-run-store skeleton shared by all seven stages.
    fn run_stage(
        &self,
        stage: StageKind,
        app: &str,
        claim: (String, String),
        inputs: ArtifactId,
        run: impl FnOnce() -> Result<(Vec<(String, i64)>, Option<FpsReport>), String>,
    ) -> Result<StageOutcome, String> {
        let t0 = Instant::now();
        let _span = self.tel.span(&format!("pipeline.{stage}"));
        let stage_labels = [("stage", stage.as_str())];
        let wall_us = self.metrics().histogram_with("pipeline_stage_wall_us", &stage_labels);
        let cpu_us = self.metrics().histogram_with("pipeline_stage_cpu_us", &stage_labels);
        let runs = |outcome: &str| {
            self.metrics()
                .counter_with(
                    "pipeline_stage_runs_total",
                    &[("stage", stage.as_str()), ("outcome", outcome)],
                )
                .inc();
        };
        // Single-flight claim: a warm key (or another thread's flight
        // this claim joined) is a hit; a cold key makes this thread the
        // leader, obligated to run the stage and publish the outcome.
        let flight = match self.cache.claim(stage, inputs) {
            Claim::Ready(certificate) => {
                self.tel.count("pipeline.cache.hit", 1);
                runs("hit");
                let wall = t0.elapsed();
                wall_us.record_duration(wall);
                cpu_us.record_duration(wall);
                return Ok(StageOutcome { certificate, wall, cache_hit: true, fps: None });
            }
            // The flight this claim joined failed; its error is already
            // `[stage]`-prefixed by the leader — propagate verbatim.
            Claim::Failed(e) => return Err(e),
            Claim::Leader(flight) => flight,
        };
        self.tel.count("pipeline.cache.miss", 1);
        let (stats, fps) = match run() {
            Ok(out) => out,
            Err(e) => {
                let e = format!("[{stage}] {e}");
                flight.fail(&e);
                return Err(e);
            }
        };
        runs("miss");
        let certificate =
            StageCertificate { schema: SCHEMA, stage, app: app.to_string(), claim, inputs, stats };
        flight.complete(&certificate);
        let wall = t0.elapsed();
        wall_us.record_duration(wall);
        // CPU time: the parallel FPS checker reports aggregate worker
        // busy time; single-threaded stages are their own wall time.
        cpu_us.record_duration(fps.as_ref().map(|r| r.cpu).unwrap_or(wall));
        Ok(StageOutcome { certificate, wall, cache_hit: false, fps })
    }

    /// Stage 1 — spec-level non-leakage census (`parfait::speccheck`).
    ///
    /// Keyed by the spec's *observed behavior* (the encoded trace over
    /// the sample grid), not by any source text: editing the littlec
    /// implementation leaves this stage cached, while any behavioral
    /// spec change re-runs it.
    pub fn speccheck_stage(&self, app: &AppPipeline) -> Result<StageOutcome, String> {
        let trace = (app.spec_probe)();
        let inputs = self.timed_inputs(StageKind::SpecCheck, || {
            ArtifactHasher::new("stage:speccheck")
                .field_u64("schema", SCHEMA as u64)
                .field_str("app", &app.slug)
                .field("behavior", &trace.digest().0)
                .finish()
        });
        let spec = Level::Spec.label(None);
        self.run_stage(StageKind::SpecCheck, &app.slug, (spec.clone(), spec), inputs, || {
            Ok((
                vec![
                    ("commands".into(), trace.commands as i64),
                    ("state_dependent".into(), trace.state_dependent as i64),
                    ("rows".into(), trace.rows.len() as i64),
                ],
                None,
            ))
        })
    }

    /// Stage 2 — IPR by lockstep: the full Starling software
    /// verification (codec inversion, lockstep simulation, translation
    /// validation, world equivalence).
    pub fn lockstep_stage(&self, app: &AppPipeline) -> Result<StageOutcome, String> {
        let trace = (app.spec_probe)();
        let inputs = self.timed_inputs(StageKind::Lockstep, || {
            ArtifactHasher::new("stage:lockstep")
                .field_u64("schema", SCHEMA as u64)
                .field_str("app", &app.slug)
                .field_str("source", &app.source)
                .field_u64("state_size", app.sizes.state as u64)
                .field_u64("command_size", app.sizes.command as u64)
                .field_u64("response_size", app.sizes.response as u64)
                .field("spec-behavior", &trace.digest().0)
                .field_str("config", &app.starling_fingerprint)
                .finish()
        });
        let claim = (Level::Spec.label(None), Level::LowStar.label(None));
        self.run_stage(StageKind::Lockstep, &app.slug, claim, inputs, || {
            let report = (app.starling)(&self.tel)?;
            Ok((
                vec![
                    ("lockstep_cases".into(), report.lockstep_cases as i64),
                    ("validation_cases".into(), report.validation_cases as i64),
                    ("ipr_operations".into(), report.ipr_operations as i64),
                ],
                None,
            ))
        })
    }

    /// The deterministic (state, command) grid the equivalence stage
    /// validates on: both provisioned and default states, each against
    /// the workload, an all-invalid command, and all-zeros.
    fn equivalence_cases(app: &AppPipeline) -> Vec<(Vec<u8>, Vec<u8>)> {
        let commands =
            [app.workload.clone(), vec![0xEE; app.sizes.command], vec![0u8; app.sizes.command]];
        let mut cases = Vec::new();
        for state in [&app.dummy_state, &app.secret_state] {
            for cmd in &commands {
                cases.push((state.clone(), cmd.clone()));
            }
        }
        cases
    }

    /// Stage 3 — compiler equivalence: translation validation of
    /// `handle` across all four levels (interp, IR, asm) at every
    /// opt level the app's verification covers (plus the target
    /// level), over the deterministic case grid.
    pub fn equivalence_stage(
        &self,
        app: &AppPipeline,
        opt: OptLevel,
    ) -> Result<StageOutcome, String> {
        let cases = Self::equivalence_cases(app);
        let mut levels = app.opt_levels.clone();
        if !levels.contains(&opt) {
            levels.push(opt);
        }
        let inputs = self.timed_inputs(StageKind::Equivalence, || {
            let mut h = ArtifactHasher::new("stage:equivalence");
            h.field_u64("schema", SCHEMA as u64)
                .field_str("app", &app.slug)
                .field_str("source", &app.source)
                .field_u64("response_size", app.sizes.response as u64)
                .field_str("opt", &opt.to_string());
            for level in &levels {
                h.field_str("level", &level.to_string());
            }
            for (state, cmd) in &cases {
                h.field("case-state", state).field("case-cmd", cmd);
            }
            if let Some(t) = &app.tamper {
                h.field_str("tamper", &t.fingerprint);
            }
            h.finish()
        });
        let opt_label = opt.to_string();
        let claim = (Level::LowStar.label(None), Level::Asm.label(Some(&opt_label)));
        self.run_stage(StageKind::Equivalence, &app.slug, claim, inputs, || {
            let program = parfait_littlec::frontend(&app.source).map_err(|e| e.to_string())?;
            let patch = app.tamper.as_ref().and_then(|t| t.patch_asm.clone());
            for level in &levels {
                let patch = patch.clone();
                validate_handle_patched(&program, *level, app.sizes.response, &cases, |a| {
                    match patch {
                        Some(p) => p(a),
                        None => a,
                    }
                })
                .map_err(|e| format!("{level}: {e}"))?;
            }
            Ok((
                vec![
                    ("cases".into(), cases.len() as i64),
                    ("opt_levels".into(), levels.len() as i64),
                ],
                None,
            ))
        })
    }

    /// Stage 4 — static constant-time lint: secret-taint analysis over
    /// the littlec IR and abstract interpretation over the assembled
    /// firmware (`parfait-analyzer`), gating the pipeline on zero
    /// findings. The claim is a self-loop at the asm level: the lint
    /// adds no refinement step, it certifies a leakage *hygiene*
    /// property of the artifact FPS is about to simulate.
    ///
    /// Keyed by the lowered IR, the generated assembly, and the rule
    /// set version — an optimizer change that leaves the assembly
    /// byte-identical stays cached; a rule-set bump re-lints the world.
    pub fn ctcheck_stage(&self, app: &AppPipeline, opt: OptLevel) -> Result<StageOutcome, String> {
        let patch = app.tamper.as_ref().and_then(|t| t.patch_asm.clone());
        // This stage's input derivation is the expensive one — it
        // compiles — so its artifact-hash histogram dominates the family.
        let inputs = self.timed_inputs(StageKind::CtCheck, || -> Result<ArtifactId, String> {
            let program = parfait_littlec::frontend(&app.source).map_err(|e| e.to_string())?;
            let ir = parfait_littlec::ir::lower(&program).map_err(|e| e.to_string())?;
            let mut asm = parfait_littlec::compile(&program, opt).map_err(|e| e.to_string())?;
            if let Some(p) = &patch {
                asm = p(asm); // key the stage on the artifact it actually lints
            }
            let mut h = ArtifactHasher::new("stage:ctcheck");
            h.field_u64("schema", SCHEMA as u64)
                .field_str("app", &app.slug)
                .field_str("ruleset", parfait_analyzer::RULESET_VERSION)
                // The lint derives its CT-LATENCY/CT-MEM applicability
                // from the union of the supported cores' contracts, so
                // a contract edit re-lints.
                .field_str("latency-model", &parfait_analyzer::latency_model_fingerprint())
                .field_str("opt", &opt.to_string())
                .field_str("ir", &format!("{ir:?}"))
                .field_str("asm", &asm);
            if let Some(t) = &app.tamper {
                h.field_str("tamper", &t.fingerprint);
            }
            Ok(h.finish())
        })?;
        let opt_label = opt.to_string();
        let asm_level = Level::Asm.label(Some(&opt_label));
        let claim = (asm_level.clone(), asm_level);
        self.run_stage(StageKind::CtCheck, &app.slug, claim, inputs, || {
            let report =
                parfait_analyzer::lint_source_with(&app.source, opt, &self.tel, |a| match patch {
                    Some(p) => p(a),
                    None => a,
                })
                .map_err(|e| e.to_string())?;
            if !report.is_clean() {
                let mut msg = format!("{} constant-time violation(s):", report.findings.len());
                for f in &report.findings {
                    msg.push_str("\n  ");
                    msg.push_str(&f.to_string());
                }
                return Err(msg);
            }
            Ok((
                vec![
                    ("findings".into(), 0),
                    ("ir_insts".into(), report.ir_insts as i64),
                    ("asm_instrs".into(), report.asm_instrs as i64),
                ],
                None,
            ))
        })
    }

    /// The FPS stage's input fingerprint. Folds the core's contract
    /// text: the dual-world comparison interprets cycle counts and
    /// leak events through the declared model.
    fn fps_inputs(
        app: &AppPipeline,
        cpu: Cpu,
        opt: OptLevel,
        timeout: u64,
        contract: &parfait_cores::LeakageContract,
    ) -> ArtifactId {
        let mut h = ArtifactHasher::new("stage:fps");
        h.field_u64("schema", SCHEMA as u64)
            .field_str("app", &app.slug)
            .field_str("source", &app.source)
            .field_u64("state_size", app.sizes.state as u64)
            .field_u64("command_size", app.sizes.command as u64)
            .field_u64("response_size", app.sizes.response as u64)
            .field_str("cpu", &cpu.to_string())
            .field_str("contract", &contract.canonical())
            .field_str("opt", &opt.to_string())
            .field_u64("timeout", timeout)
            .field("secret", &app.secret_state)
            .field("dummy", &app.dummy_state);
        for op in app.fps_script() {
            h.field_str("script-op", &format!("{op:?}"));
        }
        if let Some(t) = &app.tamper {
            h.field_str("tamper", &t.fingerprint);
        }
        h.finish()
    }

    /// The contract stage's input fingerprint: everything the battery
    /// verdict depends on, dominated by the contract's canonical text.
    fn contract_inputs(
        app: &AppPipeline,
        cpu: Cpu,
        contract: &parfait_cores::LeakageContract,
    ) -> ArtifactId {
        let mut h = ArtifactHasher::new("stage:contract");
        h.field_u64("schema", SCHEMA as u64)
            .field_str("app", &app.slug)
            .field_str("cpu", &cpu.to_string())
            .field_str("contract", &contract.canonical())
            .field_u64("battery", parfait_cores::contract::BATTERY_VERSION as u64);
        if let Some(t) = &app.tamper {
            h.field_str("tamper", &t.fingerprint);
        }
        h.finish()
    }

    /// The exported leakage contract of a platform's core.
    pub fn core_contract(cpu: Cpu) -> &'static parfait_cores::LeakageContract {
        match cpu {
            Cpu::Ibex => parfait_cores::ibex::contract(),
            Cpu::Pico => parfait_cores::pico::contract(),
        }
    }

    /// The SoC memory map as the resource-bound analysis sees it: the
    /// writable regions stores must land in, and the floor the stack
    /// may never grow below.
    fn bound_regions() -> parfait_analyzer::BoundRegions {
        use parfait_soc::{FRAM_BASE, FRAM_SIZE, IO_BASE, RAM_BASE, ROM_BASE, STACK_FLOOR};
        parfait_analyzer::BoundRegions {
            text_base: ROM_BASE,
            data_base: RAM_BASE,
            // The four UART handshake registers.
            mmio: (IO_BASE, IO_BASE + 16),
            fram: (FRAM_BASE, FRAM_BASE + FRAM_SIZE),
            stack_floor: STACK_FLOOR,
        }
    }

    /// The linked whole-firmware assembly, exactly as
    /// [`build_firmware_parts`] links it: app + generated system
    /// software compiled at `opt`, the tamper patch applied, the boot
    /// shim prepended. This is the text the bound analysis certifies —
    /// the same text `run_fps` assembles into the ROM image.
    fn linked_asm(app: &AppPipeline, opt: OptLevel) -> Result<String, String> {
        let sizes = app.sizes;
        let syssw_src = syssw::syssw_source(sizes.state, sizes.command, sizes.response);
        let mut source = app.source.clone();
        source.push_str(&syssw_src);
        let program = parfait_littlec::frontend(&source).map_err(|e| e.to_string())?;
        let mut compiled = parfait_littlec::compile(&program, opt).map_err(|e| e.to_string())?;
        if let Some(p) = app.tamper.as_ref().and_then(|t| t.patch_asm.clone()) {
            compiled = p(compiled);
        }
        let mut asm = String::from(syssw::BOOT_ASM);
        asm.push_str(&compiled);
        Ok(asm)
    }

    /// Stage 5 — resource bounds: whole-firmware static analysis over
    /// the linked text (`parfait_analyzer::bound_asm`). Recovers the
    /// call graph (rejecting recursion and unresolvable indirect
    /// calls), proves a worst-case stack depth that stays inside the
    /// stack region, and certifies a WCET cycle bound for one command
    /// round-trip under the core's declared leakage-contract latency
    /// model, using the loop bounds littlec codegen annotates.
    ///
    /// The claim is a self-loop at the asm level, like the lint: the
    /// analysis adds no refinement step, it certifies a *resource*
    /// property of the artifact FPS is about to simulate — and FPS
    /// consumes the certified WCET as its derived cycle budget.
    ///
    /// Keyed by the linked assembly text, the bound rule-set version,
    /// and the contract's canonical text (the latency model prices
    /// every instruction): an optimizer change that leaves the linked
    /// text byte-identical stays cached; a contract edit re-bounds.
    pub fn bound_stage(
        &self,
        app: &AppPipeline,
        cpu: Cpu,
        opt: OptLevel,
    ) -> Result<StageOutcome, String> {
        let contract = Self::core_contract(cpu);
        let (inputs, linked) =
            self.timed_inputs(StageKind::Bound, || -> Result<(ArtifactId, String), String> {
                let linked = Self::linked_asm(app, opt)?;
                let mut h = ArtifactHasher::new("stage:bound");
                h.field_u64("schema", SCHEMA as u64)
                    .field_str("app", &app.slug)
                    .field_str("ruleset", parfait_analyzer::BOUND_RULESET_VERSION)
                    .field_str("asm", &linked)
                    .field_str("contract", &contract.canonical())
                    .field_str("cpu", &cpu.to_string())
                    .field_str("opt", &opt.to_string());
                if let Some(t) = &app.tamper {
                    h.field_str("tamper", &t.fingerprint);
                }
                Ok((h.finish(), linked))
            })?;
        let opt_label = opt.to_string();
        let asm_level = Level::Asm.label(Some(&opt_label));
        let claim = (asm_level.clone(), asm_level);
        let regions = Self::bound_regions();
        let outcome = self.run_stage(StageKind::Bound, &app.slug, claim, inputs, || {
            let report = parfait_analyzer::bound_asm(&linked, "_start", contract, &regions)
                .map_err(|e| e.to_string())?;
            Ok((
                vec![
                    ("wcet_cycles".into(), report.wcet_cycles.min(i64::MAX as u64) as i64),
                    ("stack_depth".into(), report.stack_depth as i64),
                    ("stack_top".into(), report.stack_top as i64),
                    ("functions".into(), report.functions as i64),
                    ("loops".into(), report.loops as i64),
                    ("instructions".into(), report.instructions as i64),
                ],
                None,
            ))
        })?;
        // The `bound_` family is read off the certificate, so warm
        // (fully cached) runs expose it just like cold ones.
        let cert = &outcome.certificate;
        let cpu_label = cpu.to_string();
        let labels =
            [("app", app.slug.as_str()), ("cpu", cpu_label.as_str()), ("opt", opt_label.as_str())];
        self.metrics()
            .counter_with("bound_functions_total", &labels)
            .add(cert.stat("functions").unwrap_or(0).max(0) as u64);
        self.metrics()
            .counter_with("bound_loops_total", &labels)
            .add(cert.stat("loops").unwrap_or(0).max(0) as u64);
        self.metrics()
            .gauge_with("bound_wcet_cycles", &labels)
            .set(cert.stat("wcet_cycles").unwrap_or(0) as f64);
        self.metrics()
            .gauge_with("bound_stack_depth", &labels)
            .set(cert.stat("stack_depth").unwrap_or(0) as f64);
        Ok(outcome)
    }

    /// Stage 5 — contract check: drive the platform's core through the
    /// per-instruction-class stimulus battery and hold its measured
    /// cycle counts, leak events, and data-bus trace to the clauses of
    /// its exported [`parfait_cores::LeakageContract`]. A core whose
    /// divider leaks more than its contract admits fails *here*, with
    /// a named instruction class, instead of surfacing later as an
    /// opaque FPS divergence.
    ///
    /// The claim is a self-loop at the SoC level: the battery adds no
    /// refinement step, it certifies that the observable model every
    /// other stage assumes (lint applicability, FPS leak
    /// classification) is the model the silicon actually exhibits.
    /// Keyed by the contract's canonical text and the battery version,
    /// so editing a contract invalidates exactly the dependent stages.
    pub fn contract_stage(&self, app: &AppPipeline, cpu: Cpu) -> Result<StageOutcome, String> {
        self.contract_stage_with(app, cpu, Self::core_contract(cpu))
    }

    /// [`contract_stage`](Self::contract_stage) against an explicit
    /// contract instead of the core's exported one — the seam for
    /// checking a candidate re-declaration (and for the cache tests:
    /// an edited contract must miss where the exported one hits).
    pub fn contract_stage_with(
        &self,
        app: &AppPipeline,
        cpu: Cpu,
        contract: &parfait_cores::LeakageContract,
    ) -> Result<StageOutcome, String> {
        let core_fault = app.tamper.as_ref().and_then(|t| t.core_fault);
        let inputs =
            self.timed_inputs(StageKind::Contract, || Self::contract_inputs(app, cpu, contract));
        let cpu_label = cpu.to_string();
        let soc = Level::Soc.label(Some(&cpu_label));
        self.run_stage(StageKind::Contract, &app.slug, (soc.clone(), soc), inputs, || {
            let mut make = || -> Box<dyn parfait_cores::Core> {
                match cpu {
                    Cpu::Ibex => Box::new(parfait_cores::IbexCore::with_fault(0, core_fault)),
                    Cpu::Pico => Box::new(parfait_cores::PicoCore::with_fault(0, core_fault)),
                }
            };
            let report =
                parfait_cores::check_core(&mut make, contract).map_err(|e| e.to_string())?;
            self.metrics()
                .counter_with("contract_stimuli_total", &[("cpu", &cpu_label)])
                .add(report.total as u64);
            let mut stats = vec![
                ("stimuli_total".to_string(), report.total as i64),
                ("measured_retirements".to_string(), report.measured_retirements as i64),
                ("contract_revision".to_string(), contract.revision as i64),
            ];
            for (class, n) in &report.stimuli {
                stats.push((format!("stimuli_{class}"), *n as i64));
            }
            Ok((stats, None))
        })
    }

    /// Stage 6 — FPS: wire-level functional-physical simulation on a
    /// real platform (cached per (app × cpu × opt) cell).
    ///
    /// Runs the bound stage first: the FPS cycle budget is *derived*
    /// from the certified WCET ([`FpsConfig::resolve_timeout`]), so a
    /// firmware that would wedge past its proven bound is cut off in
    /// proportion to its own certificate instead of the last-resort
    /// constant (`PARFAIT_TIMEOUT` stays an explicit override).
    ///
    /// Keyed (among the build inputs) on the core's contract text: the
    /// dual-world comparison interprets cycle counts and leak events
    /// through the declared model, so a contract edit re-runs it.
    pub fn fps_stage(
        &self,
        app: &AppPipeline,
        cpu: Cpu,
        opt: OptLevel,
        obs: &FpsObserver,
        threads: usize,
    ) -> Result<StageOutcome, String> {
        let bound = self.bound_stage(app, cpu, opt)?;
        self.fps_stage_bounded(app, cpu, opt, obs, threads, &bound)
    }

    /// [`fps_stage`](Self::fps_stage) against an already-verified
    /// bound certificate (the seam `verify_cell` uses, so the bound
    /// stage runs exactly once per cell).
    pub fn fps_stage_bounded(
        &self,
        app: &AppPipeline,
        cpu: Cpu,
        opt: OptLevel,
        obs: &FpsObserver,
        threads: usize,
        bound: &StageOutcome,
    ) -> Result<StageOutcome, String> {
        let wcet = bound.certificate.stat("wcet_cycles").filter(|&w| w > 0).map(|w| w as u64);
        let timeout = FpsConfig::resolve_timeout(wcet);
        let inputs = self.timed_inputs(StageKind::Fps, || {
            Self::fps_inputs(app, cpu, opt, timeout, Self::core_contract(cpu))
        });
        let opt_label = opt.to_string();
        let cpu_label = cpu.to_string();
        let claim = (Level::Asm.label(Some(&opt_label)), Level::Soc.label(Some(&cpu_label)));
        let outcome = self.run_stage(StageKind::Fps, &app.slug, claim, inputs, || {
            let (report, stack_min) =
                self.run_fps_watermarked(app, cpu, opt, obs, threads, timeout)?;
            let mut stats = vec![
                ("cycles".into(), report.cycles as i64),
                ("commands".into(), report.commands as i64),
                ("spec_queries".into(), report.spec_queries as i64),
            ];
            if let Some(low) = stack_min {
                // Lowest stack address the real SoC stored to across
                // the whole script — the dynamic watermark the
                // certified static depth must dominate.
                stats.push(("stack_min_addr".into(), low as i64));
            }
            Ok((stats, Some(report)))
        })?;
        // Certified-vs-observed slack, off the two certificates so a
        // fully cached cell still reports it.
        if let (Some(wcet), Some(cycles)) =
            (bound.certificate.stat("wcet_cycles"), outcome.certificate.stat("cycles"))
        {
            if cycles > 0 {
                self.metrics()
                    .gauge_with(
                        "bound_wcet_slack_ratio",
                        &[
                            ("app", app.slug.as_str()),
                            ("cpu", cpu_label.as_str()),
                            ("opt", opt_label.as_str()),
                        ],
                    )
                    .set(wcet as f64 / cycles as f64);
            }
        }
        Ok(outcome)
    }

    /// A clean (untampered) firmware image plus its assembly-level spec
    /// machine, memoized process-wide on the exact compile inputs.
    ///
    /// The compile is deterministic in (app source, system software
    /// source, opt level), and `run_fps` recompiles it for every bench
    /// leg, every CPU of a matrix row, and every thread count of a
    /// scaling sweep — identical work each time, dominating FPS setup.
    /// Tampered builds never consult the memo: their patches are
    /// arbitrary closures whose effect is not captured by the key.
    /// Hits and misses land in `pipeline_firmware_builds_total{outcome}`
    /// (deterministic per run, so the perf ratchet can key on them).
    fn built_firmware(
        &self,
        app: &AppPipeline,
        syssw_src: &str,
        opt: OptLevel,
    ) -> Result<(Firmware, Arc<AsmStateMachine>), String> {
        type Memo = Mutex<HashMap<(String, String, String), (Firmware, Arc<AsmStateMachine>)>>;
        static MEMO: OnceLock<Memo> = OnceLock::new();
        let memo = MEMO.get_or_init(Default::default);
        let builds = |outcome: &str| {
            self.metrics()
                .counter_with("pipeline_firmware_builds_total", &[("outcome", outcome)])
                .inc();
        };
        let key = (app.source.clone(), syssw_src.to_string(), opt.to_string());
        if let Some(built) = memo.lock().unwrap().get(&key) {
            builds("hit");
            return Ok(built.clone());
        }
        // Compile outside the lock; a racing duplicate compile is
        // benign (last writer wins, both results are identical).
        let sizes = app.sizes;
        let fw =
            build_firmware_parts(&app.source, syssw_src, opt, |a| a).map_err(|e| e.to_string())?;
        let program = parfait_littlec::frontend(&app.source).map_err(|e| e.to_string())?;
        let spec = asm_machine(&program, opt, sizes.state, sizes.command, sizes.response)
            .map_err(|e| e.to_string())?;
        builds("miss");
        let built = (fw, Arc::new(spec));
        let mut memo = memo.lock().unwrap();
        if memo.len() >= 32 {
            memo.clear();
        }
        memo.insert(key, built.clone());
        Ok(built)
    }

    /// Run the hardware check itself, bypassing the cache — the single
    /// place real/ideal SoCs are built and driven (used by
    /// [`Pipeline::fps_stage`] and, uncached, by the FPS scaling
    /// benchmark).
    pub fn run_fps(
        &self,
        app: &AppPipeline,
        cpu: Cpu,
        opt: OptLevel,
        obs: &FpsObserver,
        threads: usize,
        timeout: u64,
    ) -> Result<FpsReport, String> {
        self.run_fps_watermarked(app, cpu, opt, obs, threads, timeout).map(|(r, _)| r)
    }

    /// [`run_fps`](Self::run_fps), also returning the lowest stack
    /// address the real SoC stored to (its whole-run high-water mark).
    /// Deterministic: the parallel checker's pre-pass drives the real
    /// SoC alone through the entire script.
    fn run_fps_watermarked(
        &self,
        app: &AppPipeline,
        cpu: Cpu,
        opt: OptLevel,
        obs: &FpsObserver,
        threads: usize,
        timeout: u64,
    ) -> Result<(FpsReport, Option<u32>), String> {
        let sizes = app.sizes;
        let tamper = app.tamper.as_ref();
        // Tampering strikes the *built artifacts and hardware*; the spec
        // the emulator queries stays derived from the clean compile, so a
        // tampered device is held against the untampered contract.
        let syssw_src = syssw::syssw_source(sizes.state, sizes.command, sizes.response);
        let (mut fw, spec) = if tamper.is_none() {
            self.built_firmware(app, &syssw_src, opt)?
        } else {
            let patch = tamper.and_then(|t| t.patch_asm.clone());
            let fw = build_firmware_parts(&app.source, &syssw_src, opt, |a| match patch {
                Some(p) => p(a),
                None => a,
            })
            .map_err(|e| e.to_string())?;
            let program = parfait_littlec::frontend(&app.source).map_err(|e| e.to_string())?;
            let spec = asm_machine(&program, opt, sizes.state, sizes.command, sizes.response)
                .map_err(|e| e.to_string())?;
            (fw, Arc::new(spec))
        };
        if let Some(pf) = tamper.and_then(|t| t.patch_firmware.clone()) {
            pf(&mut fw);
        }
        let core_fault = tamper.and_then(|t| t.core_fault);
        let mut real = make_soc_with(cpu, fw.clone(), &app.secret_state, core_fault);
        let mut dummy_soc = make_soc_with(cpu, fw, &app.dummy_state, core_fault);
        if let Some(bug) = tamper.and_then(|t| t.soc_bug) {
            real.seed_bug(bug);
            dummy_soc.seed_bug(bug);
        }
        let mut emu =
            CircuitEmulator::new(dummy_soc, &*spec, app.secret_state.clone(), sizes.command);
        if tamper.is_some_and(|t| t.emulator_desync) {
            emu.seed_desync();
        }
        let cfg = FpsConfig {
            command_size: sizes.command,
            response_size: sizes.response,
            timeout,
            state_size: sizes.state,
        };
        let state_size = sizes.state;
        let project = move |soc: &Soc| syssw::active_state(&soc.fram_bytes(0, 256), state_size);
        let script = app.fps_script();
        let report = check_fps_parallel(&mut real, &mut emu, &cfg, &project, &script, obs, threads)
            .map_err(|f| f.to_string())?;
        Ok((report, real.stack_high_water()))
    }

    /// The four software stages (speccheck, lockstep, equivalence and
    /// ctcheck at `opt`), in order. Fails fast on the first failing
    /// stage.
    pub fn software_stages(
        &self,
        app: &AppPipeline,
        opt: OptLevel,
    ) -> Result<Vec<StageOutcome>, String> {
        Ok(vec![
            self.speccheck_stage(app)?,
            self.lockstep_stage(app)?,
            self.equivalence_stage(app, opt)?,
            self.ctcheck_stage(app, opt)?,
        ])
    }

    /// Verify one full (app × cpu × opt) cell: all seven stages plus
    /// the composed end-to-end certificate.
    ///
    /// The contract battery *executes* before FPS — it is cheap and
    /// attributes a violation to a named instruction class, so a
    /// leaky core never reaches the expensive dual-world simulation —
    /// but its certificate sits after FPS in the compose chain (a
    /// self-loop at the SoC level FPS just reached). The bound stage
    /// runs between them: static, cheap, and its certified WCET
    /// becomes the FPS cycle budget.
    pub fn verify_cell(
        &self,
        app: &AppPipeline,
        cpu: Cpu,
        opt: OptLevel,
        obs: &FpsObserver,
        threads: usize,
    ) -> Result<CellReport, String> {
        let mut stages = self.software_stages(app, opt)?;
        let contract = self.contract_stage(app, cpu)?;
        let bound = self.bound_stage(app, cpu, opt)?;
        let fps = self.fps_stage_bounded(app, cpu, opt, obs, threads, &bound)?;
        stages.push(bound);
        stages.push(fps);
        stages.push(contract);
        let certs: Vec<StageCertificate> = stages.iter().map(|s| s.certificate.clone()).collect();
        let composed = compose(&certs).map_err(|e| e.to_string())?;
        Ok(CellReport { cpu, opt, stages, composed })
    }

    /// Verify an app across a platform matrix, fanning the independent
    /// cells out over the thread budget (each cell then splits its
    /// share across FPS segment workers).
    pub fn verify_matrix(
        &self,
        app: &AppPipeline,
        cpus: &[Cpu],
        opt: OptLevel,
        obs: &FpsObserver,
        threads: usize,
    ) -> Vec<(Cpu, Result<CellReport, String>)> {
        let cases = cpus.len().max(1);
        let threads_per_case = (threads / cases).max(1);
        parallel_map(cases.min(threads.max(1)), cpus.to_vec(), move |_, cpu| {
            (cpu, self.verify_cell(app, cpu, opt, obs, threads_per_case))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equivalence_case_grid_is_deterministic_and_covers_both_states() {
        let app = crate::apps::StdApp::Hasher.pipeline();
        let a = Pipeline::equivalence_cases(&app);
        let b = Pipeline::equivalence_cases(&app);
        assert_eq!(a, b);
        assert_eq!(a.len(), 6);
        assert!(a.iter().any(|(s, _)| *s == app.secret_state));
        assert!(a.iter().any(|(s, _)| *s == app.dummy_state));
    }

    #[test]
    fn stage_input_hashes_differ_across_stages_and_cells() {
        // Build hashes by hand the way the stages do and check the
        // obvious separations hold.
        let h1 = ArtifactHasher::new("stage:fps").field_str("cpu", "Ibex").finish();
        let h2 = ArtifactHasher::new("stage:fps").field_str("cpu", "PicoRV32").finish();
        let h3 = ArtifactHasher::new("stage:lockstep").field_str("cpu", "Ibex").finish();
        assert_ne!(h1, h2);
        assert_ne!(h1, h3);
    }

    #[test]
    fn contract_edit_changes_exactly_the_dependent_stage_keys() {
        // A contract re-declaration (revision bump, no clause change)
        // must rotate the contract-check and FPS cache keys — both
        // consume the canonical text — while the software stages,
        // which never see the contract, are structurally unaffected
        // (their input derivations take no contract parameter; see
        // `speccheck_stage`/`lockstep_stage`/`equivalence_stage`).
        let app = crate::apps::StdApp::Hasher.pipeline();
        let exported = Pipeline::core_contract(Cpu::Ibex);
        let mut edited = exported.clone();
        edited.revision += 1;

        let timeout = FpsConfig::default_timeout();
        assert_ne!(
            Pipeline::contract_inputs(&app, Cpu::Ibex, exported),
            Pipeline::contract_inputs(&app, Cpu::Ibex, &edited),
        );
        assert_ne!(
            Pipeline::fps_inputs(&app, Cpu::Ibex, OptLevel::O2, timeout, exported),
            Pipeline::fps_inputs(&app, Cpu::Ibex, OptLevel::O2, timeout, &edited),
        );
        // The ctcheck key folds the union latency model, which names
        // every supported contract — an Ibex edit re-lints.
        assert!(parfait_analyzer::latency_model_fingerprint().contains(&exported.canonical()));
        // A clause edit (not just a revision bump) also rotates keys.
        let mut clause_edit = exported.clone();
        clause_edit.clauses[parfait_cores::InstrClass::Load.index()].latency =
            parfait_cores::Latency::Fixed(3);
        assert_ne!(
            Pipeline::contract_inputs(&app, Cpu::Ibex, exported),
            Pipeline::contract_inputs(&app, Cpu::Ibex, &clause_edit),
        );
    }
}
