//! Application descriptions the pipeline can verify.
//!
//! An [`AppPipeline`] bundles everything the seven stages consume: the
//! littlec source, buffer sizes, encoded sample states/commands, a
//! probe that observes the specification's behavior (for
//! content-addressing the spec without hashing Rust code), and a
//! closure running the Starling software verification. The generic
//! constructor [`app_from_codec`] derives all of it from a
//! [`Codec`]/spec pair, so the three case studies and any test app are
//! described the same way.

use std::sync::Arc;

use parfait::lockstep::Codec;
use parfait::speccheck::{census, Flow};
use parfait::StateMachine;
use parfait_hsms::platform::AppSizes;
use parfait_hsms::{ecdsa, hasher, totp};
use parfait_knox2::HostOp;
use parfait_littlec::codegen::OptLevel;
use parfait_starling::{verify_app_traced, StarlingConfig, StarlingReport};
use parfait_telemetry::Telemetry;

use crate::artifact::{ArtifactHasher, ArtifactId};

/// The specification's observed behavior, fully encoded: the basis for
/// content-addressing the spec level. Two specs with identical traces
/// over the sample set hash identically — which is exactly the
/// granularity the cache needs, since the stages only ever exercise the
/// spec through these samples.
/// One observed spec transition, codec-encoded:
/// `(state, command, next_state, response)`.
pub type SpecRow = (Vec<u8>, Vec<u8>, Vec<u8>, Vec<u8>);

pub struct SpecTrace {
    /// `(state, command, next_state, response)` rows, one per sampled
    /// (state × command) pair, all codec-encoded.
    pub rows: Vec<SpecRow>,
    /// How many sampled commands' responses depend on the state
    /// (the `speccheck` census).
    pub state_dependent: usize,
    /// How many distinct commands were sampled.
    pub commands: usize,
}

impl SpecTrace {
    /// Content hash of the observed behavior.
    pub fn digest(&self) -> ArtifactId {
        let mut h = ArtifactHasher::new("spec-trace");
        for (s, c, s2, r) in &self.rows {
            h.field("state", s).field("cmd", c).field("next", s2).field("resp", r);
        }
        h.field_u64("state_dependent", self.state_dependent as u64);
        h.field_u64("commands", self.commands as u64);
        h.finish()
    }
}

/// A closure running the Starling software verification.
pub type StarlingRunner = Box<dyn Fn(&Telemetry) -> Result<StarlingReport, String> + Send + Sync>;

/// A seeded rewrite of the compiled assembly text ([`Tamper::patch_asm`]).
pub type AsmPatch = Arc<dyn Fn(String) -> String + Send + Sync>;

/// A seeded mutation of the linked firmware image ([`Tamper::patch_firmware`]).
pub type FirmwarePatch = Arc<dyn Fn(&mut parfait_soc::Firmware) + Send + Sync>;

/// A deliberately seeded below-source fault, attached to an app by the
/// `parfait-adversary` mutation harness (DESIGN.md §12).
///
/// Production apps carry `None`. When set, the stages that build or
/// simulate below-source artifacts (equivalence, ctcheck, FPS) apply
/// the tamper and fold [`Tamper::fingerprint`] into their cache keys,
/// so a mutant can never alias the clean app's certificates. The
/// speccheck and lockstep stages deliberately ignore tampering: they
/// operate entirely above the tampered layers.
#[derive(Clone, Default)]
pub struct Tamper {
    /// Distinguishes this mutant's cache identity (and labels output).
    pub fingerprint: String,
    /// Rewrite the compiled assembly text before it is assembled
    /// (a seeded codegen/optimizer bug).
    pub patch_asm: Option<AsmPatch>,
    /// Mutate the linked firmware image (ROM bytes) before the SoC is
    /// built (a seeded encoder/ROM bug). FPS only.
    pub patch_firmware: Option<FirmwarePatch>,
    /// Seed a core micro-architectural fault in both worlds. FPS only.
    pub core_fault: Option<parfait_cores::SeededFault>,
    /// Seed a SoC/peripheral bug in both worlds. FPS only.
    pub soc_bug: Option<parfait_soc::SeededBug>,
    /// Seed the emulator-template desync bug (ideal world only).
    pub emulator_desync: bool,
}

impl Tamper {
    /// An empty tamper with the given cache-distinguishing fingerprint.
    pub fn new(fingerprint: &str) -> Tamper {
        Tamper { fingerprint: fingerprint.to_string(), ..Tamper::default() }
    }
}

/// Everything the pipeline needs to verify one application.
pub struct AppPipeline {
    /// Human-readable name (e.g. `"Password hasher"`).
    pub name: String,
    /// Stable machine-readable slug (certificates, cache keys, JSON).
    pub slug: String,
    /// The littlec source providing `handle`.
    pub source: String,
    /// Buffer sizes.
    pub sizes: AppSizes,
    /// Encoded secret ("provisioned") state for the real world.
    pub secret_state: Vec<u8>,
    /// Encoded public default state for the ideal world's dummy SoC.
    pub dummy_state: Vec<u8>,
    /// One representative expensive command encoding.
    pub workload: Vec<u8>,
    /// Optimization levels the app's software verification covers; the
    /// equivalence stage validates exactly these (plus the target
    /// level). ECDSA restricts this to `-O2`: its unoptimized asm
    /// exceeds the interpreter fuel budget.
    pub opt_levels: Vec<OptLevel>,
    /// Fingerprint of the Starling configuration (part of the lockstep
    /// stage's input hash — a changed config must re-verify).
    pub starling_fingerprint: String,
    /// Observe the spec's behavior over the sample set.
    pub spec_probe: Box<dyn Fn() -> SpecTrace + Send + Sync>,
    /// Run the Starling software verification.
    pub starling: StarlingRunner,
    /// Seeded below-source fault (`None` on every production app).
    pub tamper: Option<Tamper>,
}

impl AppPipeline {
    /// Attach a seeded fault (mutation testing only).
    pub fn with_tamper(mut self, tamper: Tamper) -> AppPipeline {
        self.tamper = Some(tamper);
        self
    }

    /// The standard adversarial host script the bench binaries measure:
    /// one expensive workload command followed by one invalid command.
    pub fn fps_script(&self) -> Vec<HostOp> {
        vec![
            HostOp::Command(self.workload.clone()),
            HostOp::Command(vec![0xEE; self.sizes.command]),
        ]
    }
}

/// Build an [`AppPipeline`] from a codec/spec pair plus sample
/// states, commands, and responses (the same inputs
/// [`parfait_starling::verify_app`] takes).
#[allow(clippy::too_many_arguments)]
pub fn app_from_codec<C>(
    name: &str,
    slug: &str,
    source: String,
    sizes: AppSizes,
    codec: C,
    spec: C::Spec,
    secret_state: <C::Spec as StateMachine>::State,
    workload: <C::Spec as StateMachine>::Command,
    states: Vec<<C::Spec as StateMachine>::State>,
    commands: Vec<<C::Spec as StateMachine>::Command>,
    responses: Vec<<C::Spec as StateMachine>::Response>,
    config: StarlingConfig,
) -> AppPipeline
where
    C: Codec<CI = Vec<u8>, RI = Vec<u8>, SI = Vec<u8>> + Send + Sync + 'static,
    C::Spec: Send + Sync + 'static,
    <C::Spec as StateMachine>::State: Clone + Send + Sync,
    <C::Spec as StateMachine>::Command: Clone + PartialEq + std::fmt::Debug + Send + Sync,
    <C::Spec as StateMachine>::Response: Clone + Send + Sync,
{
    struct Shared<C: Codec> {
        codec: C,
        spec: C::Spec,
        source: String,
        config: StarlingConfig,
        states: Vec<<C::Spec as StateMachine>::State>,
        commands: Vec<<C::Spec as StateMachine>::Command>,
        responses: Vec<<C::Spec as StateMachine>::Response>,
    }

    let secret = codec.encode_state(&secret_state);
    let dummy = codec.encode_state(&spec.init());
    let workload = codec.encode_command(&workload);
    let opt_levels = config.opt_levels.clone();
    let opts: Vec<String> = config.opt_levels.iter().map(|o| o.to_string()).collect();
    let starling_fingerprint = format!(
        "adversarial={} seed={:#x} opts={}",
        config.adversarial_inputs,
        config.seed,
        opts.join("|")
    );
    let shared = Arc::new(Shared {
        codec,
        spec,
        source: source.clone(),
        config,
        states,
        commands,
        responses,
    });

    let probe = Arc::clone(&shared);
    let spec_probe = Box::new(move || {
        // Probe from the initial state plus every sample state, so a
        // spec whose behavior differs anywhere over the sample grid
        // hashes differently.
        let mut states = vec![probe.spec.init()];
        states.extend(probe.states.iter().cloned());
        let mut rows = Vec::new();
        for st in &states {
            for cmd in &probe.commands {
                let (next, resp) = probe.spec.step(st, cmd);
                rows.push((
                    probe.codec.encode_state(st),
                    probe.codec.encode_command(cmd),
                    probe.codec.encode_state(&next),
                    probe.codec.encode_response(Some(&resp)),
                ));
            }
        }
        let dependent = census(&probe.spec, &states, &probe.commands)
            .into_iter()
            .filter(|e| matches!(e.flow, Flow::StateDependent { .. }))
            .count();
        SpecTrace { rows, state_dependent: dependent, commands: probe.commands.len() }
    });

    let run = Arc::clone(&shared);
    let starling = Box::new(move |tel: &Telemetry| {
        verify_app_traced(
            &run.codec,
            &run.spec,
            &run.source,
            &run.config,
            &run.states,
            &run.commands,
            &run.responses,
            tel,
        )
        .map_err(|e| e.to_string())
    });

    AppPipeline {
        name: name.to_string(),
        slug: slug.to_string(),
        source,
        sizes,
        secret_state: secret,
        dummy_state: dummy,
        workload,
        opt_levels,
        starling_fingerprint,
        spec_probe,
        starling,
        tamper: None,
    }
}

/// The three case-study applications (§8's evaluation subjects).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StdApp {
    /// The ECDSA certificate signer.
    Ecdsa,
    /// The password hasher.
    Hasher,
    /// The one-time-password generator.
    Totp,
}

impl std::fmt::Display for StdApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StdApp::Ecdsa => f.write_str("ECDSA signer"),
            StdApp::Hasher => f.write_str("Password hasher"),
            StdApp::Totp => f.write_str("One-time password"),
        }
    }
}

impl StdApp {
    /// All case studies.
    pub const ALL: [StdApp; 3] = [StdApp::Ecdsa, StdApp::Hasher, StdApp::Totp];

    /// Look an app up by its command-line/certificate slug.
    pub fn from_slug(slug: &str) -> Option<StdApp> {
        match slug {
            "ecdsa" => Some(StdApp::Ecdsa),
            "hasher" => Some(StdApp::Hasher),
            "totp" => Some(StdApp::Totp),
            _ => None,
        }
    }

    /// The stable slug.
    pub fn slug(self) -> &'static str {
        match self {
            StdApp::Ecdsa => "ecdsa",
            StdApp::Hasher => "hasher",
            StdApp::Totp => "totp",
        }
    }

    /// The app's littlec source.
    pub fn source(self) -> String {
        match self {
            StdApp::Ecdsa => parfait_hsms::firmware::ecdsa_app_source(),
            StdApp::Hasher => parfait_hsms::firmware::hasher_app_source(),
            StdApp::Totp => totp::totp_app_source(),
        }
    }

    /// Buffer sizes.
    pub fn sizes(self) -> AppSizes {
        match self {
            StdApp::Ecdsa => AppSizes {
                state: ecdsa::STATE_SIZE,
                command: ecdsa::COMMAND_SIZE,
                response: ecdsa::RESPONSE_SIZE,
            },
            StdApp::Hasher => AppSizes {
                state: hasher::STATE_SIZE,
                command: hasher::COMMAND_SIZE,
                response: hasher::RESPONSE_SIZE,
            },
            StdApp::Totp => AppSizes {
                state: totp::STATE_SIZE,
                command: totp::COMMAND_SIZE,
                response: totp::RESPONSE_SIZE,
            },
        }
    }

    /// The full pipeline description, including the Starling runner and
    /// the sample states/commands used throughout the evaluation.
    pub fn pipeline(self) -> AppPipeline {
        match self {
            StdApp::Hasher => app_from_codec(
                &self.to_string(),
                self.slug(),
                self.source(),
                self.sizes(),
                hasher::HasherCodec,
                hasher::HasherSpec,
                hasher::HasherState { secret: [0x61; 32] },
                hasher::HasherCommand::Hash { message: [0x11; 32] },
                vec![hasher::HasherSpec.init(), hasher::HasherState { secret: [7; 32] }],
                vec![
                    hasher::HasherCommand::Initialize { secret: [1; 32] },
                    hasher::HasherCommand::Hash { message: [2; 32] },
                ],
                vec![hasher::HasherResponse::Initialized],
                StarlingConfig {
                    state_size: hasher::STATE_SIZE,
                    command_size: hasher::COMMAND_SIZE,
                    response_size: hasher::RESPONSE_SIZE,
                    ..StarlingConfig::default()
                },
            ),
            StdApp::Totp => app_from_codec(
                &self.to_string(),
                self.slug(),
                self.source(),
                self.sizes(),
                totp::TotpCodec,
                totp::TotpSpec,
                totp::TotpState { seed: [0x29; 32] },
                totp::TotpCommand::Code { counter: 42 },
                vec![totp::TotpSpec.init(), totp::TotpState { seed: [7; 32] }],
                vec![
                    totp::TotpCommand::Initialize { seed: [1; 32] },
                    totp::TotpCommand::Code { counter: 5 },
                ],
                vec![totp::TotpResponse::Initialized, totp::TotpResponse::Code(0)],
                StarlingConfig {
                    state_size: totp::STATE_SIZE,
                    command_size: totp::COMMAND_SIZE,
                    response_size: totp::RESPONSE_SIZE,
                    ..StarlingConfig::default()
                },
            ),
            StdApp::Ecdsa => app_from_codec(
                &self.to_string(),
                self.slug(),
                self.source(),
                self.sizes(),
                ecdsa::EcdsaCodec,
                ecdsa::EcdsaSpec,
                ecdsa::EcdsaState { prf_key: [0x13; 32], prf_counter: 0, sig_key: [0x57; 32] },
                ecdsa::EcdsaCommand::Sign { msg: [0x3C; 32] },
                vec![ecdsa::EcdsaState { prf_key: [7; 32], prf_counter: 0, sig_key: [9; 32] }],
                vec![ecdsa::EcdsaCommand::Initialize { prf_key: [1; 32], sig_key: [2; 32] }],
                vec![ecdsa::EcdsaResponse::Initialized],
                // ECDSA signing is ~1000x slower than hashing; a small
                // adversarial budget at -O2 only keeps the run tractable
                // (the hasher exercises the full default matrix).
                StarlingConfig {
                    state_size: ecdsa::STATE_SIZE,
                    command_size: ecdsa::COMMAND_SIZE,
                    response_size: ecdsa::RESPONSE_SIZE,
                    adversarial_inputs: 3,
                    opt_levels: vec![OptLevel::O2],
                    ..StarlingConfig::default()
                },
            ),
        }
    }

    /// A fixed provisioned state encoding (convenience for the run-time
    /// performance benchmarks, which need a SoC but no proof).
    pub fn secret_state(self) -> Vec<u8> {
        self.pipeline().secret_state
    }

    /// One representative expensive command encoding.
    pub fn workload_command(self) -> Vec<u8> {
        self.pipeline().workload
    }

    /// Build firmware at the given optimization level.
    pub fn firmware(self, opt: OptLevel) -> parfait_soc::Firmware {
        parfait_hsms::platform::build_firmware(&self.source(), self.sizes(), opt)
            .expect("firmware builds")
    }

    /// A provisioned SoC with the fixed secret state.
    pub fn soc(self, cpu: parfait_hsms::platform::Cpu, opt: OptLevel) -> parfait_soc::Soc {
        parfait_hsms::platform::make_soc(cpu, self.firmware(opt), &self.secret_state())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slugs_roundtrip() {
        for app in StdApp::ALL {
            assert_eq!(StdApp::from_slug(app.slug()), Some(app));
        }
        assert_eq!(StdApp::from_slug("warp"), None);
    }

    #[test]
    fn spec_probe_is_deterministic_and_behavior_sensitive() {
        let a = StdApp::Hasher.pipeline();
        let t1 = (a.spec_probe)();
        let t2 = (a.spec_probe)();
        assert_eq!(t1.digest(), t2.digest());
        assert!(t1.commands > 0 && !t1.rows.is_empty());
        // A different app's spec behaves differently.
        let b = StdApp::Totp.pipeline();
        assert_ne!(t1.digest(), (b.spec_probe)().digest());
    }

    #[test]
    fn pipeline_encodings_match_sizes() {
        for app in StdApp::ALL {
            let p = app.pipeline();
            assert_eq!(p.secret_state.len(), p.sizes.state);
            assert_eq!(p.dummy_state.len(), p.sizes.state);
            assert_eq!(p.workload.len(), p.sizes.command);
            assert_eq!(p.fps_script().len(), 2);
        }
    }
}
