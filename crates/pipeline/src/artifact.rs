//! Content-addressed artifact identities.
//!
//! Every proof stage consumes artifacts — littlec source, buffer sizes,
//! spec behavior, verification configs — and the cache is keyed by a
//! single hash over *all* of them. The hasher is deliberately strict
//! about framing: each field is tagged and length-prefixed, so two
//! different sequences of fields can only collide if SHA-256 itself
//! collides (the cache-soundness argument in DESIGN.md §9).

use std::fmt;

use parfait_crypto::sha256;

/// The identity of an artifact (or of a stage's full input set): a
/// SHA-256 digest rendered as lowercase hex.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArtifactId(pub [u8; 32]);

impl ArtifactId {
    /// Parse the 64-hex-digit form produced by `Display`.
    pub fn from_hex(s: &str) -> Option<ArtifactId> {
        let s = s.as_bytes();
        if s.len() != 64 {
            return None;
        }
        let nib = |c: u8| match c {
            b'0'..=b'9' => Some(c - b'0'),
            b'a'..=b'f' => Some(c - b'a' + 10),
            _ => None,
        };
        let mut out = [0u8; 32];
        for (i, byte) in out.iter_mut().enumerate() {
            *byte = nib(s[2 * i])? << 4 | nib(s[2 * i + 1])?;
        }
        Some(ArtifactId(out))
    }

    /// An abbreviated form for logs and tables.
    pub fn short(&self) -> String {
        self.to_string()[..12].to_string()
    }
}

impl fmt::Display for ArtifactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for ArtifactId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ArtifactId({self})")
    }
}

/// Accumulates tagged, length-prefixed fields into one digest.
///
/// The injective framing (`len(domain) ‖ domain` then, per field,
/// `len(tag) ‖ tag ‖ len(data) ‖ data`, all lengths as 8-byte
/// little-endian) guarantees distinct field sequences produce distinct
/// pre-images; a stale cache hit therefore requires a SHA-256 collision.
pub struct ArtifactHasher {
    buf: Vec<u8>,
}

impl ArtifactHasher {
    /// Start a hash in a named domain (e.g. `"stage:fps"`), so digests
    /// from different stages can never be confused for one another.
    pub fn new(domain: &str) -> ArtifactHasher {
        let mut h = ArtifactHasher { buf: Vec::new() };
        h.frame(domain.as_bytes());
        h
    }

    fn frame(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(&(data.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(data);
    }

    /// Add a tagged byte-string field.
    pub fn field(&mut self, tag: &str, data: &[u8]) -> &mut Self {
        self.frame(tag.as_bytes());
        self.frame(data);
        self
    }

    /// Add a tagged UTF-8 string field.
    pub fn field_str(&mut self, tag: &str, data: &str) -> &mut Self {
        self.field(tag, data.as_bytes())
    }

    /// Add a tagged integer field.
    pub fn field_u64(&mut self, tag: &str, value: u64) -> &mut Self {
        self.field(tag, &value.to_le_bytes())
    }

    /// Finish: the SHA-256 of everything accumulated.
    pub fn finish(&self) -> ArtifactId {
        ArtifactId(sha256(&self.buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_roundtrips() {
        let id = ArtifactHasher::new("test").field_str("k", "v").finish();
        let text = id.to_string();
        assert_eq!(text.len(), 64);
        assert_eq!(ArtifactId::from_hex(&text), Some(id));
        assert_eq!(id.short().len(), 12);
        assert!(ArtifactId::from_hex("zz").is_none());
    }

    #[test]
    fn framing_is_injective() {
        // Concatenation ambiguity: ("ab","c") vs ("a","bc") must differ.
        let a = ArtifactHasher::new("d").field_str("t", "ab").field_str("t", "c").finish();
        let b = ArtifactHasher::new("d").field_str("t", "a").field_str("t", "bc").finish();
        assert_ne!(a, b);
        // Tag/value ambiguity.
        let c = ArtifactHasher::new("d").field_str("tx", "y").finish();
        let d = ArtifactHasher::new("d").field_str("t", "xy").finish();
        assert_ne!(c, d);
        // Domain separation.
        let e = ArtifactHasher::new("d1").field_str("t", "v").finish();
        let f = ArtifactHasher::new("d2").field_str("t", "v").finish();
        assert_ne!(e, f);
    }

    #[test]
    fn same_inputs_same_digest() {
        let mk = || ArtifactHasher::new("d").field_u64("n", 42).field("b", &[1, 2, 3]).finish();
        assert_eq!(mk(), mk());
    }
}
