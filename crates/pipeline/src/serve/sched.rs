//! The stage-level DAG scheduler under `parfait-serve`.
//!
//! A batch of verify requests decomposes into *nodes* — one per unique
//! (tenant, app, cpu, opt)-scoped stage — with dependency edges that
//! mirror the pipeline's fail-fast order. Two cells that share a node
//! (every cell of an app shares its speccheck; every opt level of a
//! platform shares its contract battery) contribute the node **once**:
//! it runs once and unblocks every dependent, which is the scheduler's
//! half of the dedup story (the cache's single-flight is the other
//! half, collapsing duplicates across *sessions*).
//!
//! [`execute`] is generic over the node key and value types so the
//! property tests can drive it with synthetic DAGs: it validates the
//! graph up front (duplicate keys, unknown deps, cycles are input
//! errors, not hangs), then runs ready nodes on a
//! [`parfait_parallel::scope`] pool. The pool's jobs cannot themselves
//! spawn (scoped lifetimes), so a *coordinator* — the caller's thread,
//! which is free to block — drains a ready queue fed by completing
//! nodes and submits newly unblocked work.
//!
//! Failure is data, not control flow: a failing node records its error
//! and every transitive dependent is *skipped* with that same error
//! string, verbatim (the pipeline has already `[stage]`-prefixed it),
//! while unrelated subgraphs run to completion.
//!
//! Exported gauges: `serve_queue_depth` (ready, unsubmitted nodes) and
//! `serve_inflight` (nodes executing); counter:
//! `serve_nodes_total{outcome=ok|failed|skipped}`.

use std::collections::{HashMap, VecDeque};
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::{Condvar, Mutex};

use parfait_telemetry::metrics::Metrics;

/// A node's view of its dependencies' results, in declaration order.
/// Only `Ok` values appear here: a node with a failed dependency is
/// skipped, never run.
pub struct Deps<K, V>(Vec<(K, V)>);

impl<K: PartialEq, V> Deps<K, V> {
    /// The result of dependency `key`.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// The work a [`DagNode`] performs, handed its dependencies' values.
pub type NodeFn<'a, K, V> = Box<dyn Fn(&Deps<K, V>) -> Result<V, String> + Send + Sync + 'a>;

/// One schedulable unit of work.
pub struct DagNode<'a, K, V> {
    /// Unique key (duplicate keys are an input error).
    pub key: K,
    /// Keys this node needs finished (and `Ok`) before it runs.
    pub deps: Vec<K>,
    /// The work itself.
    pub run: NodeFn<'a, K, V>,
}

struct ExecState<V> {
    /// One slot per node, filled exactly once.
    results: Vec<Option<Result<V, String>>>,
    /// Unresolved-dependency counts; a node enters `ready` at zero.
    indegree: Vec<usize>,
    /// Unblocked nodes the coordinator has not yet submitted.
    ready: VecDeque<usize>,
    /// Nodes currently executing on the pool.
    running: usize,
    /// Nodes resolved (ran, failed, or skipped).
    done: usize,
}

/// Run a DAG of nodes on a `threads`-wide pool, returning every node's
/// result keyed by its `key`. Structural problems — duplicate keys,
/// edges to unknown keys, dependency cycles — are reported as `Err`
/// before any node runs.
pub fn execute<'a, K, V>(
    threads: usize,
    metrics: &Metrics,
    nodes: Vec<DagNode<'a, K, V>>,
) -> Result<HashMap<K, Result<V, String>>, String>
where
    K: Eq + Hash + Clone + Debug + Send + Sync,
    V: Clone + Send,
{
    let n = nodes.len();
    if n == 0 {
        return Ok(HashMap::new());
    }
    // --- validate: unique keys, known deps, acyclic ---
    let mut index: HashMap<&K, usize> = HashMap::with_capacity(n);
    for (i, node) in nodes.iter().enumerate() {
        if index.insert(&node.key, i).is_some() {
            return Err(format!("duplicate node key {:?}", node.key));
        }
    }
    let mut indegree = vec![0usize; n];
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, node) in nodes.iter().enumerate() {
        for dep in &node.deps {
            let &d = index
                .get(dep)
                .ok_or_else(|| format!("node {:?} depends on unknown key {dep:?}", node.key))?;
            if d == i {
                return Err(format!("node {:?} depends on itself", node.key));
            }
            indegree[i] += 1;
            dependents[d].push(i);
        }
    }
    // Kahn's algorithm on a scratch copy: if it cannot consume every
    // node, the leftover subgraph is cyclic.
    {
        let mut scratch = indegree.clone();
        let mut queue: VecDeque<usize> = (0..n).filter(|&i| scratch[i] == 0).collect();
        let mut seen = 0usize;
        while let Some(i) = queue.pop_front() {
            seen += 1;
            for &d in &dependents[i] {
                scratch[d] -= 1;
                if scratch[d] == 0 {
                    queue.push_back(d);
                }
            }
        }
        if seen != n {
            let stuck: Vec<&K> =
                (0..n).filter(|&i| scratch[i] > 0).map(|i| &nodes[i].key).collect();
            return Err(format!("dependency cycle among {stuck:?}"));
        }
    }

    // --- execute: coordinator drains `ready`, jobs feed it back ---
    let queue_depth = metrics.gauge("serve_queue_depth");
    let inflight = metrics.gauge("serve_inflight");
    let outcome_counter =
        |outcome: &str| metrics.counter_with("serve_nodes_total", &[("outcome", outcome)]);
    let ready: VecDeque<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let state: Mutex<ExecState<V>> = Mutex::new(ExecState {
        results: (0..n).map(|_| None).collect(),
        indegree,
        ready,
        running: 0,
        done: 0,
    });
    let cv = Condvar::new();

    parfait_parallel::scope_with(threads, metrics, |pool| {
        let mut st = state.lock().unwrap();
        loop {
            while let Some(i) = st.ready.pop_front() {
                st.running += 1;
                queue_depth.set(st.ready.len() as f64);
                inflight.set(st.running as f64);
                drop(st);
                let state = &state;
                let cv = &cv;
                let nodes = &nodes;
                let dependents = &dependents;
                let index = &index;
                let queue_depth = &queue_depth;
                let inflight = &inflight;
                let outcome_counter = &outcome_counter;
                pool.spawn(move |_w| {
                    // Dependencies are all Ok by construction (a failed
                    // dep skips this node instead of readying it).
                    let dep_vals = {
                        let st = state.lock().unwrap();
                        Deps(
                            nodes[i]
                                .deps
                                .iter()
                                .map(|k| {
                                    let v = st.results[index[k]]
                                        .as_ref()
                                        .expect("dep resolved before dependent ran")
                                        .as_ref()
                                        .expect("dep ok before dependent ran");
                                    (k.clone(), v.clone())
                                })
                                .collect(),
                        )
                    };
                    let result = (nodes[i].run)(&dep_vals);
                    outcome_counter(if result.is_ok() { "ok" } else { "failed" }).inc();
                    let mut st = state.lock().unwrap();
                    st.running -= 1;
                    inflight.set(st.running as f64);
                    // Resolve this node, then cascade: a dependent whose
                    // last dependency just resolved either becomes ready
                    // (all deps Ok) or is skipped with the first failed
                    // dependency's error, recursively.
                    let mut stack = vec![(i, result)];
                    while let Some((j, res)) = stack.pop() {
                        st.results[j] = Some(res);
                        st.done += 1;
                        for &d in &dependents[j] {
                            st.indegree[d] -= 1;
                            if st.indegree[d] > 0 {
                                continue;
                            }
                            let failed_dep = nodes[d].deps.iter().find_map(|k| {
                                match st.results[index[k]].as_ref().expect("dep resolved") {
                                    Ok(_) => None,
                                    Err(e) => Some(e.clone()),
                                }
                            });
                            match failed_dep {
                                // Skipped dependents propagate the
                                // failing stage's error verbatim.
                                Some(e) => {
                                    outcome_counter("skipped").inc();
                                    stack.push((d, Err(e)));
                                }
                                None => st.ready.push_back(d),
                            }
                        }
                    }
                    queue_depth.set(st.ready.len() as f64);
                    drop(st);
                    cv.notify_all();
                });
                st = state.lock().unwrap();
            }
            if st.done == n {
                break;
            }
            st = cv.wait(st).unwrap();
        }
        queue_depth.set(0.0);
        inflight.set(0.0);
    });

    let results = state.into_inner().unwrap().results;
    Ok(nodes
        .into_iter()
        .zip(results)
        .map(|(node, res)| (node.key, res.expect("every node resolved")))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node<'a>(
        key: &str,
        deps: &[&str],
        run: impl Fn(&Deps<String, i64>) -> Result<i64, String> + Send + Sync + 'a,
    ) -> DagNode<'a, String, i64> {
        DagNode {
            key: key.to_string(),
            deps: deps.iter().map(|d| d.to_string()).collect(),
            run: Box::new(run),
        }
    }

    #[test]
    fn chains_pass_values_downstream() {
        let metrics = Metrics::new();
        let out = execute(
            2,
            &metrics,
            vec![
                node("a", &[], |_| Ok(1)),
                node("b", &["a"], |d| Ok(d.get(&"a".to_string()).unwrap() + 10)),
                node("c", &["a", "b"], |d| {
                    Ok(d.get(&"a".to_string()).unwrap() + d.get(&"b".to_string()).unwrap())
                }),
            ],
        )
        .unwrap();
        assert_eq!(out["c"], Ok(12));
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("serve_nodes_total", &[("outcome", "ok")]), Some(3));
    }

    #[test]
    fn failure_skips_exactly_the_dependents() {
        let metrics = Metrics::new();
        let out = execute(
            4,
            &metrics,
            vec![
                node("root", &[], |_| Err("[lockstep] boom".into())),
                node("child", &["root"], |_| Ok(1)),
                node("grandchild", &["child"], |_| Ok(2)),
                node("island", &[], |_| Ok(3)),
            ],
        )
        .unwrap();
        // The error string propagates verbatim to every transitive
        // dependent; the unrelated node still completes.
        assert_eq!(out["root"], Err("[lockstep] boom".into()));
        assert_eq!(out["child"], Err("[lockstep] boom".into()));
        assert_eq!(out["grandchild"], Err("[lockstep] boom".into()));
        assert_eq!(out["island"], Ok(3));
        let snap = metrics.snapshot();
        assert_eq!(snap.counter("serve_nodes_total", &[("outcome", "failed")]), Some(1));
        assert_eq!(snap.counter("serve_nodes_total", &[("outcome", "skipped")]), Some(2));
        assert_eq!(snap.counter("serve_nodes_total", &[("outcome", "ok")]), Some(1));
    }

    #[test]
    fn structural_errors_are_reported_not_hung() {
        let m = Metrics::new();
        let dup = execute(1, &m, vec![node("a", &[], |_| Ok(1)), node("a", &[], |_| Ok(2))]);
        assert!(dup.unwrap_err().contains("duplicate"), "duplicate keys");
        let unknown = execute(1, &m, vec![node("a", &["ghost"], |_| Ok(1))]);
        assert!(unknown.unwrap_err().contains("unknown key"), "unknown dep");
        let cycle =
            execute(1, &m, vec![node("a", &["b"], |_| Ok(1)), node("b", &["a"], |_| Ok(2))]);
        assert!(cycle.unwrap_err().contains("cycle"), "cycle");
        let self_dep = execute(1, &m, vec![node("a", &["a"], |_| Ok(1))]);
        assert!(self_dep.unwrap_err().contains("itself"), "self-dep");
        assert!(execute::<String, i64>(1, &m, vec![]).unwrap().is_empty());
    }
}
