//! The `parfait-serve` session loop and transports.
//!
//! [`handle_session`] is transport-agnostic — any `BufRead` in, any
//! `Write` out — so the whole protocol is testable in-memory, and the
//! two real transports are thin wrappers: stdin/stdout
//! ([`serve_stdio`]) and a Unix socket at `PARFAIT_SOCKET`
//! ([`serve_socket`], one thread per connection).
//!
//! Robustness rules (exercised by `tests/serve_protocol.rs`):
//!
//! - Every malformed line — bad JSON, unknown op, invalid tenant,
//!   oversized line — is answered with a structured `error` frame and
//!   the session continues. The daemon never panics on input and never
//!   silently drops a line.
//! - A line longer than [`MAX_LINE_BYTES`] is discarded up to its
//!   newline without buffering it, so a hostile client cannot balloon
//!   the daemon's memory.
//! - EOF is an implicit flush: whatever is queued runs to completion
//!   (graceful drain), results are written best-effort, and the cache
//!   — whose disk writes are temp+rename — stays consistent even if
//!   the client is gone by then.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};

use parfait_telemetry::json::Json;

use super::protocol::{
    bye_frame, error_frame, metrics_frame, parse_request, pong_frame, status_frame, Request,
    MAX_LINE_BYTES,
};
use super::ServeCore;

/// Why a session ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionEnd {
    /// The client closed its stream (EOF): drained and done.
    Eof,
    /// The client sent `shutdown`: drained, and the server should stop
    /// accepting new sessions.
    Shutdown,
}

/// One line read, or `Oversized` (the overlong line was discarded up
/// to its newline), or `None` at EOF.
fn read_line_capped(reader: &mut impl BufRead) -> io::Result<Option<Result<String, ()>>> {
    let mut buf = Vec::new();
    let n = reader.by_ref().take(MAX_LINE_BYTES as u64 + 1).read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    let ended = buf.last() == Some(&b'\n');
    if ended {
        buf.pop();
        if buf.last() == Some(&b'\r') {
            buf.pop();
        }
    }
    if buf.len() > MAX_LINE_BYTES {
        // Discard the remainder of the line without retaining it.
        if !ended {
            loop {
                let mut skip = Vec::new();
                let m = reader.by_ref().take(MAX_LINE_BYTES as u64).read_until(b'\n', &mut skip)?;
                if m == 0 || skip.last() == Some(&b'\n') {
                    break;
                }
            }
        }
        return Ok(Some(Err(())));
    }
    Ok(Some(Ok(String::from_utf8_lossy(&buf).into_owned())))
}

fn write_frame(writer: &mut impl Write, frame: &Json) -> io::Result<()> {
    writeln!(writer, "{frame}")?;
    writer.flush()
}

/// Run one protocol session to completion. Requests batch up until a
/// `flush`, `shutdown`, or EOF, then execute as one scheduled DAG and
/// answer in request order. Returns how the session ended; `Err` means
/// the transport itself failed (e.g. the client disconnected while a
/// frame was being written) — any batch already executing completes
/// its cache writes regardless.
pub fn handle_session(
    core: &ServeCore,
    mut reader: impl BufRead,
    mut writer: impl Write,
) -> io::Result<SessionEnd> {
    let mut batch = Vec::new();
    let queued = core.metrics().gauge("serve_session_queued");
    loop {
        let line = match read_line_capped(&mut reader)? {
            None => {
                // EOF: implicit flush — drain the queue, then stop.
                queued.set(0.0);
                for frame in core.run_batch(&batch) {
                    write_frame(&mut writer, &frame)?;
                }
                return Ok(SessionEnd::Eof);
            }
            Some(Err(())) => {
                let msg = format!("line exceeds {MAX_LINE_BYTES} bytes");
                write_frame(&mut writer, &error_frame(None, &msg))?;
                continue;
            }
            Some(Ok(line)) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        match parse_request(&line) {
            Err(e) => {
                core.metrics()
                    .counter_with("serve_requests_total", &[("outcome", "malformed")])
                    .inc();
                write_frame(&mut writer, &error_frame(e.id.as_deref(), &e.error))?;
            }
            Ok(Request::Verify(req)) => {
                write_frame(&mut writer, &status_frame(&req.id, "queued"))?;
                batch.push(req);
                queued.set(batch.len() as f64);
            }
            Ok(Request::Ping) => write_frame(&mut writer, &pong_frame())?,
            Ok(Request::Metrics) => {
                let snap = core.metrics().snapshot().to_json();
                write_frame(&mut writer, &metrics_frame(snap))?;
            }
            Ok(Request::Flush) => {
                queued.set(0.0);
                for frame in core.run_batch(&std::mem::take(&mut batch)) {
                    write_frame(&mut writer, &frame)?;
                }
            }
            Ok(Request::Shutdown) => {
                // Graceful drain: finish the queued work, answer it,
                // say goodbye, then stop.
                queued.set(0.0);
                for frame in core.run_batch(&std::mem::take(&mut batch)) {
                    write_frame(&mut writer, &frame)?;
                }
                write_frame(&mut writer, &bye_frame())?;
                return Ok(SessionEnd::Shutdown);
            }
        }
    }
}

/// Serve a single session over this process's stdin/stdout — the
/// zero-setup transport (`parfait-serve < requests.jsonl`).
pub fn serve_stdio(core: &ServeCore) -> io::Result<SessionEnd> {
    let stdin = io::stdin();
    let stdout = io::stdout();
    handle_session(core, stdin.lock(), stdout.lock())
}

/// Serve sessions on a Unix socket at `path`, one thread per
/// connection, until some client sends `shutdown`. All sessions share
/// `core` — one cache, one scheduler metrics registry — which is the
/// point: cross-session duplicate work collapses in the single-flight
/// cache. The socket file is (re)created on bind and removed on exit.
pub fn serve_socket(core: &ServeCore, path: &Path) -> io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    let shutdown = AtomicBool::new(false);
    std::thread::scope(|s| {
        for stream in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(stream) => stream,
                Err(e) => {
                    eprintln!("serve: accept failed: {e}");
                    continue;
                }
            };
            let shutdown = &shutdown;
            s.spawn(move || {
                let reader = BufReader::new(&stream);
                match handle_session(core, reader, &stream) {
                    Ok(SessionEnd::Shutdown) => {
                        shutdown.store(true, Ordering::SeqCst);
                        // Unblock the accept loop so it observes the
                        // flag; the dummy connection is never served.
                        let _ = UnixStream::connect(path);
                    }
                    Ok(SessionEnd::Eof) => {}
                    // A vanished client is routine, not fatal.
                    Err(e) => eprintln!("serve: session ended abnormally: {e}"),
                }
            });
        }
    });
    let _ = std::fs::remove_file(path);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capped_reader_passes_normal_lines_and_discards_oversized() {
        let mut input = Vec::new();
        input.extend_from_slice(b"short line\r\n");
        input.extend_from_slice(&vec![b'x'; MAX_LINE_BYTES + 10]);
        input.push(b'\n');
        input.extend_from_slice(b"after\n");
        let mut reader = io::BufReader::new(&input[..]);
        assert_eq!(read_line_capped(&mut reader).unwrap(), Some(Ok("short line".into())));
        assert_eq!(read_line_capped(&mut reader).unwrap(), Some(Err(())));
        // The stream recovers at the next line.
        assert_eq!(read_line_capped(&mut reader).unwrap(), Some(Ok("after".into())));
        assert_eq!(read_line_capped(&mut reader).unwrap(), None);
    }

    #[test]
    fn a_line_of_exactly_the_cap_survives() {
        let mut input = vec![b'y'; MAX_LINE_BYTES];
        input.push(b'\n');
        let mut reader = io::BufReader::new(&input[..]);
        match read_line_capped(&mut reader).unwrap() {
            Some(Ok(line)) => assert_eq!(line.len(), MAX_LINE_BYTES),
            other => panic!("expected the full line, got {other:?}"),
        }
    }
}
