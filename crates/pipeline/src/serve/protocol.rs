//! The `parfait-serve` wire protocol: JSONL frames, zero dependencies.
//!
//! Each line is one JSON object. Client → server lines are *requests*,
//! discriminated by `"op"`; server → client lines are *frames*,
//! discriminated by `"frame"`. The full grammar lives in DESIGN.md §17;
//! in brief:
//!
//! ```text
//! request  = verify | flush | ping | metrics | shutdown
//! verify   = {"op":"verify","id":S,"tenant":S,"app":S,
//!             "cpu":"ibex"|"pico","opt":"-O0"|"-O1"|"-O2",
//!             "mode":"cell"|"software"?}          (mode defaults to cell)
//! frame    = status | result | error | pong | metrics | bye
//! status   = {"frame":"status","id":S,"state":"queued"}
//! result   = {"frame":"result","id":S,...,"cached":B,
//!             "stages":[{"stage":S,"cache_hit":B}...],"composed":{...}}
//! error    = {"frame":"error","id":S|null,"error":S}
//! ```
//!
//! Parsing is total: any malformed line maps to a structured
//! [`ProtoError`] (carrying the line's `"id"` when one can be
//! recovered, so the client can correlate), never a panic. The
//! per-line size cap and the read loop live in
//! [`server`](crate::serve::server).

use parfait_hsms::platform::Cpu;
use parfait_littlec::codegen::OptLevel;
use parfait_telemetry::json::{parse as parse_json, Json};

use crate::cache::valid_tenant;

/// Upper bound on one request line, in bytes. A line longer than this
/// is answered with an error frame and discarded — a defense against a
/// confused (or hostile) client streaming an unbounded "line" into the
/// daemon's memory.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// How much of a cell one verify request asks for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// All seven stages plus the composed certificate.
    Cell,
    /// The four software stages only (no contract/bound/FPS).
    Software,
}

impl Mode {
    /// Stable wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Mode::Cell => "cell",
            Mode::Software => "software",
        }
    }
}

/// One cell-verification request.
#[derive(Clone, Debug, PartialEq)]
pub struct VerifyRequest {
    /// Client-chosen correlation id, echoed on every frame about this
    /// request.
    pub id: String,
    /// Cache namespace ([`valid_tenant`]-validated at parse time).
    pub tenant: String,
    /// Application slug (resolved against the server's registry at
    /// execution time).
    pub app: String,
    /// Platform CPU.
    pub cpu: Cpu,
    /// Optimization level.
    pub opt: OptLevel,
    /// Cell or software-only.
    pub mode: Mode,
}

/// A parsed client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Queue a cell for verification.
    Verify(VerifyRequest),
    /// Run everything queued on this session and emit the results.
    Flush,
    /// Liveness probe.
    Ping,
    /// Emit a metrics snapshot frame.
    Metrics,
    /// Drain (implicit flush) and stop the server.
    Shutdown,
}

/// A malformed request, with the offending line's `"id"` when it could
/// be recovered — so even a rejected request is correlatable.
#[derive(Clone, Debug, PartialEq)]
pub struct ProtoError {
    /// The line's `"id"` member, if the line parsed far enough to have
    /// one.
    pub id: Option<String>,
    /// What was wrong.
    pub error: String,
}

impl ProtoError {
    fn new(id: Option<String>, error: impl Into<String>) -> ProtoError {
        ProtoError { id, error: error.into() }
    }
}

fn req_str(v: &Json, id: &Option<String>, key: &str) -> Result<String, ProtoError> {
    match v.get(key) {
        Some(Json::Str(s)) => Ok(s.clone()),
        Some(_) => Err(ProtoError::new(id.clone(), format!("{key:?} must be a string"))),
        None => Err(ProtoError::new(id.clone(), format!("missing {key:?}"))),
    }
}

/// Parse one wire line. Total: every failure is a structured
/// [`ProtoError`].
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let v = parse_json(line).map_err(|e| ProtoError::new(None, format!("malformed JSON: {e}")))?;
    let id = v.get("id").and_then(Json::as_str).map(str::to_string);
    let op = match v.get("op") {
        Some(Json::Str(s)) => s.clone(),
        Some(_) => return Err(ProtoError::new(id, "\"op\" must be a string")),
        None => return Err(ProtoError::new(id, "missing \"op\"")),
    };
    match op.as_str() {
        "flush" => Ok(Request::Flush),
        "ping" => Ok(Request::Ping),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        "verify" => {
            let rid = req_str(&v, &id, "id")?;
            let tenant = req_str(&v, &id, "tenant")?;
            if !valid_tenant(&tenant) {
                return Err(ProtoError::new(
                    id,
                    format!("invalid tenant {tenant:?}: expected 1-64 chars of [A-Za-z0-9_-]"),
                ));
            }
            let app = req_str(&v, &id, "app")?;
            let cpu = match req_str(&v, &id, "cpu")?.to_ascii_lowercase().as_str() {
                "ibex" => Cpu::Ibex,
                "pico" | "picorv32" => Cpu::Pico,
                other => {
                    return Err(ProtoError::new(id, format!("unknown cpu {other:?} (ibex|pico)")))
                }
            };
            let opt = match req_str(&v, &id, "opt")?.trim_start_matches('-') {
                "O0" | "o0" => OptLevel::O0,
                "O1" | "o1" => OptLevel::O1,
                "O2" | "o2" => OptLevel::O2,
                other => {
                    return Err(ProtoError::new(id, format!("unknown opt {other:?} (-O0|-O1|-O2)")))
                }
            };
            let mode = match v.get("mode") {
                None => Mode::Cell,
                Some(Json::Str(s)) if s == "cell" => Mode::Cell,
                Some(Json::Str(s)) if s == "software" => Mode::Software,
                Some(other) => {
                    return Err(ProtoError::new(
                        id,
                        format!("unknown mode {other} (cell|software)"),
                    ))
                }
            };
            Ok(Request::Verify(VerifyRequest { id: rid, tenant, app, cpu, opt, mode }))
        }
        other => Err(ProtoError::new(id, format!("unknown op {other:?}"))),
    }
}

/// `{"frame":"status",...}` — the request was accepted and queued.
pub fn status_frame(id: &str, state: &str) -> Json {
    Json::obj([("frame", Json::str("status")), ("id", Json::str(id)), ("state", Json::str(state))])
}

/// `{"frame":"error",...}` — a malformed line or a failed request.
pub fn error_frame(id: Option<&str>, error: &str) -> Json {
    Json::obj([
        ("frame", Json::str("error")),
        ("id", id.map(Json::str).unwrap_or(Json::Null)),
        ("error", Json::str(error)),
    ])
}

/// `{"frame":"pong"}` — liveness reply.
pub fn pong_frame() -> Json {
    Json::obj([("frame", Json::str("pong"))])
}

/// `{"frame":"metrics",...}` — a registry snapshot.
pub fn metrics_frame(snapshot: Json) -> Json {
    Json::obj([("frame", Json::str("metrics")), ("snapshot", snapshot)])
}

/// `{"frame":"bye"}` — the server drained and is stopping.
pub fn bye_frame() -> Json {
    Json::obj([("frame", Json::str("bye"))])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verify_round_trips_with_defaults() {
        let r = parse_request(
            r#"{"op":"verify","id":"r1","tenant":"team-a","app":"hasher","cpu":"ibex","opt":"-O2"}"#,
        )
        .unwrap();
        assert_eq!(
            r,
            Request::Verify(VerifyRequest {
                id: "r1".into(),
                tenant: "team-a".into(),
                app: "hasher".into(),
                cpu: Cpu::Ibex,
                opt: OptLevel::O2,
                mode: Mode::Cell,
            })
        );
        // Spelling variants.
        let r = parse_request(
            r#"{"op":"verify","id":"r2","tenant":"t","app":"a","cpu":"PICO","opt":"O0","mode":"software"}"#,
        )
        .unwrap();
        match r {
            Request::Verify(v) => {
                assert_eq!((v.cpu, v.opt, v.mode), (Cpu::Pico, OptLevel::O0, Mode::Software))
            }
            _ => panic!("verify"),
        }
    }

    #[test]
    fn control_ops_parse() {
        assert_eq!(parse_request(r#"{"op":"flush"}"#), Ok(Request::Flush));
        assert_eq!(parse_request(r#"{"op":"ping"}"#), Ok(Request::Ping));
        assert_eq!(parse_request(r#"{"op":"metrics"}"#), Ok(Request::Metrics));
        assert_eq!(parse_request(r#"{"op":"shutdown"}"#), Ok(Request::Shutdown));
    }

    #[test]
    fn malformed_lines_produce_correlatable_errors() {
        // Truncated JSON: no id recoverable.
        let e = parse_request(r#"{"op":"verify","id":"r9""#).unwrap_err();
        assert!(e.error.contains("malformed JSON"), "{e:?}");
        assert_eq!(e.id, None);
        // Unknown op: id recovered.
        let e = parse_request(r#"{"op":"warp","id":"r3"}"#).unwrap_err();
        assert_eq!(e.id.as_deref(), Some("r3"));
        assert!(e.error.contains("unknown op"), "{e:?}");
        // Bad tenant characters.
        let e = parse_request(
            r#"{"op":"verify","id":"r4","tenant":"../etc","app":"a","cpu":"ibex","opt":"-O2"}"#,
        )
        .unwrap_err();
        assert!(e.error.contains("invalid tenant"), "{e:?}");
        // Missing fields, wrong types.
        let e = parse_request(r#"{"op":"verify","id":"r5","tenant":"t"}"#).unwrap_err();
        assert!(e.error.contains("missing \"app\""), "{e:?}");
        let e = parse_request(r#"{"op":1}"#).unwrap_err();
        assert!(e.error.contains("\"op\" must be a string"), "{e:?}");
        let e = parse_request("").unwrap_err();
        assert!(e.error.contains("malformed JSON"), "{e:?}");
    }
}
