//! parfait-serve — the pipeline as a long-running proof service.
//!
//! The batch tool verifies one cell at a time in one process; this
//! module turns the same pipeline into a daemon many developers and CI
//! jobs can hammer concurrently. The pieces:
//!
//! - [`protocol`] — the JSONL request/frame grammar (DESIGN.md §17).
//! - [`sched`] — the stage-level DAG scheduler: a batch of cells
//!   decomposes into unique (tenant, app, cpu, opt)-scoped stage nodes
//!   with fail-fast dependency edges, so a speccheck shared by every
//!   cell of an app runs once and unblocks all of them.
//! - [`server`] — the session loop (stdin/stdout or a Unix socket at
//!   `PARFAIT_SOCKET`), with per-line size caps and graceful drain.
//! - [`ServeCore`] — the shared state: one concurrent [`CertCache`]
//!   (single-flight, per-tenant namespaces), an app registry, and the
//!   thread budget.
//!
//! The stage *dependency* edges mirror the batch runner's fail-fast
//! execution order, not the compose-chain order: the four software
//! stages chain, the contract battery gates the hardware stages (a
//! leaky core fails fast with a named instruction class), the bound
//! stage gates FPS (which prices its cycle budget from the certified
//! WCET):
//!
//! ```text
//! speccheck → lockstep → equivalence → ctcheck → bound → fps
//! speccheck → contract ─────────────────────────↗
//! ```
//!
//! Result certificates are byte-identical to the batch runner's — the
//! stress harness (`tests/serve_stress.rs`) holds an 8-client
//! contended run to a sequential oracle byte-for-byte.

pub mod protocol;
pub mod sched;
pub mod server;

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parfait_hsms::platform::Cpu;
use parfait_knox2::FpsObserver;
use parfait_littlec::codegen::OptLevel;
use parfait_telemetry::json::Json;
use parfait_telemetry::metrics::Metrics;
use parfait_telemetry::Telemetry;

use crate::apps::{AppPipeline, StdApp};
use crate::cache::CertCache;
use crate::certificate::compose;
use crate::pipeline::{Pipeline, StageOutcome};
use protocol::{error_frame, Mode, VerifyRequest};
use sched::DagNode;

/// One unique unit of schedulable work in a batch. The key's shape *is*
/// the sharing story: two requests whose keys collide (same tenant,
/// same app, and — where the stage cares — same cpu/opt) share the
/// node, so the stage runs once for both.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum NodeKey {
    /// Spec-level census — shared by every cell of (tenant, app).
    Spec(String, String),
    /// Lockstep — shared like [`NodeKey::Spec`].
    Lockstep(String, String),
    /// Translation validation — per opt level.
    Equivalence(String, String, OptLevel),
    /// Constant-time lint — per opt level.
    CtCheck(String, String, OptLevel),
    /// Contract battery — per cpu, shared across opt levels.
    Contract(String, String, Cpu),
    /// Resource bounds — per (cpu, opt) cell.
    Bound(String, String, Cpu, OptLevel),
    /// Functional-physical simulation — per (cpu, opt) cell.
    Fps(String, String, Cpu, OptLevel),
}

/// The daemon's shared state: cache, telemetry, app registry, budget.
pub struct ServeCore {
    cache: CertCache,
    tel: Telemetry,
    apps: HashMap<String, Arc<AppPipeline>>,
    threads: usize,
    heartbeat: u64,
}

impl ServeCore {
    /// A core serving the standard app registry ([`StdApp::ALL`]).
    pub fn new(cache: CertCache, tel: Telemetry, threads: usize) -> ServeCore {
        let apps = StdApp::ALL.iter().map(|a| Arc::new(a.pipeline())).collect();
        ServeCore::with_apps(cache, tel, threads, apps)
    }

    /// A core serving an explicit registry — the seam the tests use to
    /// serve cheap fixture apps instead of the standard three.
    pub fn with_apps(
        cache: CertCache,
        tel: Telemetry,
        threads: usize,
        apps: Vec<Arc<AppPipeline>>,
    ) -> ServeCore {
        ServeCore {
            cache,
            tel,
            apps: apps.into_iter().map(|a| (a.slug.clone(), a)).collect(),
            threads: threads.max(1),
            heartbeat: 0,
        }
    }

    /// Enable FPS heartbeats every `cycles` simulated cycles (0
    /// disables; heartbeats are routed to per-node matrix-view lanes).
    pub fn with_heartbeat(mut self, cycles: u64) -> ServeCore {
        self.heartbeat = cycles;
        self
    }

    /// The registry the core's cache and scheduler account to.
    pub fn metrics(&self) -> &Metrics {
        self.cache.metrics()
    }

    /// The slugs this core can verify.
    pub fn app_slugs(&self) -> Vec<&str> {
        let mut slugs: Vec<&str> = self.apps.keys().map(String::as_str).collect();
        slugs.sort_unstable();
        slugs
    }

    /// The stage node keys a single request needs, in compose-chain
    /// order (the order its certificates chain into the composed one).
    fn request_nodes(req: &VerifyRequest) -> Vec<NodeKey> {
        let t = req.tenant.clone();
        let a = req.app.clone();
        let mut keys = vec![
            NodeKey::Spec(t.clone(), a.clone()),
            NodeKey::Lockstep(t.clone(), a.clone()),
            NodeKey::Equivalence(t.clone(), a.clone(), req.opt),
            NodeKey::CtCheck(t.clone(), a.clone(), req.opt),
        ];
        if req.mode == Mode::Cell {
            keys.push(NodeKey::Bound(t.clone(), a.clone(), req.cpu, req.opt));
            keys.push(NodeKey::Fps(t.clone(), a.clone(), req.cpu, req.opt));
            keys.push(NodeKey::Contract(t, a, req.cpu));
        }
        keys
    }

    /// A node's dependency edges (fail-fast order; see module docs).
    fn node_deps(key: &NodeKey) -> Vec<NodeKey> {
        match key {
            NodeKey::Spec(..) => vec![],
            NodeKey::Lockstep(t, a) => vec![NodeKey::Spec(t.clone(), a.clone())],
            NodeKey::Equivalence(t, a, _) => vec![NodeKey::Lockstep(t.clone(), a.clone())],
            NodeKey::CtCheck(t, a, o) => vec![NodeKey::Equivalence(t.clone(), a.clone(), *o)],
            NodeKey::Contract(t, a, _) => vec![NodeKey::Spec(t.clone(), a.clone())],
            NodeKey::Bound(t, a, c, o) => vec![
                NodeKey::CtCheck(t.clone(), a.clone(), *o),
                NodeKey::Contract(t.clone(), a.clone(), *c),
            ],
            NodeKey::Fps(t, a, c, o) => vec![NodeKey::Bound(t.clone(), a.clone(), *c, *o)],
        }
    }

    /// Execute a batch of verify requests and return one frame per
    /// request, in request order: a `result` frame with the composed
    /// certificate, or an `error` frame carrying the failing stage's
    /// `[stage]`-prefixed message.
    pub fn run_batch(&self, reqs: &[VerifyRequest]) -> Vec<Json> {
        let requests_total = |outcome: &str| {
            self.metrics().counter_with("serve_requests_total", &[("outcome", outcome)]).inc();
        };
        // Resolve each request against the registry; a rejected request
        // gets its error frame now and never reaches the scheduler.
        let mut rejected: HashMap<usize, String> = HashMap::new();
        let mut pipelines: HashMap<String, Pipeline> = HashMap::new();
        for (i, req) in reqs.iter().enumerate() {
            if !self.apps.contains_key(&req.app) {
                rejected.insert(
                    i,
                    format!("unknown app {:?} (known: {:?})", req.app, self.app_slugs()),
                );
                continue;
            }
            if !pipelines.contains_key(&req.tenant) {
                match self.cache.namespaced(&req.tenant) {
                    Ok(cache) => {
                        pipelines
                            .insert(req.tenant.clone(), Pipeline::new(cache, self.tel.clone()));
                    }
                    Err(e) => {
                        rejected.insert(i, e);
                        continue;
                    }
                }
            }
        }

        // The deduplicated node set across every accepted request.
        let mut keys: Vec<NodeKey> = Vec::new();
        let mut seen: HashSet<NodeKey> = HashSet::new();
        for (i, req) in reqs.iter().enumerate() {
            if rejected.contains_key(&i) {
                continue;
            }
            for key in Self::request_nodes(req) {
                for dep in Self::node_deps(&key) {
                    if seen.insert(dep.clone()) {
                        keys.push(dep);
                    }
                }
                if seen.insert(key.clone()) {
                    keys.push(key);
                }
            }
        }

        // Distinct heartbeat lanes for the FPS nodes, so the live
        // matrix view can route concurrent cells to their own rows.
        let mut fps_lane: HashMap<NodeKey, u64> = HashMap::new();
        for key in &keys {
            if matches!(key, NodeKey::Fps(..)) {
                fps_lane.insert(key.clone(), fps_lane.len() as u64 + 1);
            }
        }

        let nodes: Vec<DagNode<'_, NodeKey, StageOutcome>> = keys
            .into_iter()
            .map(|key| {
                let deps = Self::node_deps(&key);
                let run = self.node_runner(&pipelines, &fps_lane, key.clone());
                DagNode { key, deps, run }
            })
            .collect();

        let results = match sched::execute(self.threads, self.metrics(), nodes) {
            Ok(results) => results,
            // Structural scheduler errors cannot arise from the fixed
            // edge shape above; fail the whole batch loudly if one does.
            Err(e) => {
                return reqs
                    .iter()
                    .map(|r| error_frame(Some(&r.id), &format!("scheduler error: {e}")))
                    .collect();
            }
        };

        reqs.iter()
            .enumerate()
            .map(|(i, req)| {
                if let Some(e) = rejected.get(&i) {
                    requests_total("rejected");
                    return error_frame(Some(&req.id), e);
                }
                let outcomes: Vec<&StageOutcome> = match Self::request_nodes(req)
                    .iter()
                    .map(|k| results[k].as_ref())
                    .collect::<Result<_, _>>()
                {
                    Ok(v) => v,
                    Err(e) => {
                        requests_total("failed");
                        return error_frame(Some(&req.id), e);
                    }
                };
                let certs: Vec<_> = outcomes.iter().map(|o| o.certificate.clone()).collect();
                let composed = match compose(&certs) {
                    Ok(c) => c,
                    Err(e) => {
                        requests_total("failed");
                        return error_frame(Some(&req.id), &e.to_string());
                    }
                };
                requests_total("ok");
                Json::obj([
                    ("frame", Json::str("result")),
                    ("id", Json::str(&req.id)),
                    ("tenant", Json::str(&req.tenant)),
                    ("app", Json::str(&req.app)),
                    ("cpu", Json::str(req.cpu.to_string())),
                    ("opt", Json::str(req.opt.to_string())),
                    ("mode", Json::str(req.mode.as_str())),
                    ("cached", Json::Bool(outcomes.iter().all(|o| o.cache_hit))),
                    (
                        "stages",
                        Json::Arr(
                            outcomes
                                .iter()
                                .map(|o| {
                                    Json::obj([
                                        ("stage", Json::str(o.certificate.stage.as_str())),
                                        ("cache_hit", Json::Bool(o.cache_hit)),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("composed", composed.to_json()),
                ])
            })
            .collect()
    }

    /// The closure that executes one node: the tenant's pipeline, the
    /// registry's app, the stage picked by the key. Errors are
    /// guaranteed `[stage]`-prefixed (the pipeline prefixes run
    /// failures; input-derivation failures are prefixed here).
    fn node_runner<'a>(
        &'a self,
        pipelines: &'a HashMap<String, Pipeline>,
        fps_lane: &HashMap<NodeKey, u64>,
        key: NodeKey,
    ) -> sched::NodeFn<'a, NodeKey, StageOutcome> {
        let (tenant, slug) = match &key {
            NodeKey::Spec(t, a)
            | NodeKey::Lockstep(t, a)
            | NodeKey::Equivalence(t, a, _)
            | NodeKey::CtCheck(t, a, _)
            | NodeKey::Contract(t, a, _)
            | NodeKey::Bound(t, a, _, _)
            | NodeKey::Fps(t, a, _, _) => (t.clone(), a.clone()),
        };
        let pipeline = &pipelines[&tenant];
        let app = Arc::clone(&self.apps[&slug]);
        let lane = fps_lane.get(&key).copied().unwrap_or(0);
        let tel = self.tel.clone();
        let heartbeat = self.heartbeat;
        Box::new(move |deps| {
            let stage = match &key {
                NodeKey::Spec(..) => "speccheck",
                NodeKey::Lockstep(..) => "lockstep",
                NodeKey::Equivalence(..) => "equivalence",
                NodeKey::CtCheck(..) => "ctcheck",
                NodeKey::Contract(..) => "contract",
                NodeKey::Bound(..) => "bound",
                NodeKey::Fps(..) => "fps",
            };
            let out = match &key {
                NodeKey::Spec(..) => pipeline.speccheck_stage(&app),
                NodeKey::Lockstep(..) => pipeline.lockstep_stage(&app),
                NodeKey::Equivalence(_, _, opt) => pipeline.equivalence_stage(&app, *opt),
                NodeKey::CtCheck(_, _, opt) => pipeline.ctcheck_stage(&app, *opt),
                NodeKey::Contract(_, _, cpu) => pipeline.contract_stage(&app, *cpu),
                NodeKey::Bound(_, _, cpu, opt) => pipeline.bound_stage(&app, *cpu, *opt),
                NodeKey::Fps(t, a, cpu, opt) => {
                    let bound_key = NodeKey::Bound(t.clone(), a.clone(), *cpu, *opt);
                    let bound = deps.get(&bound_key).expect("fps depends on bound");
                    let obs = FpsObserver {
                        telemetry: tel.clone(),
                        heartbeat_cycles: heartbeat,
                        cell: lane,
                    };
                    // One thread per FPS node: on the serve path the
                    // parallelism budget is spent *across* nodes.
                    pipeline.fps_stage_bounded(&app, *cpu, *opt, &obs, 1, bound)
                }
            };
            // `run_stage` failures arrive `[stage]`-prefixed; failures
            // upstream of it (input derivation, compile errors) do not.
            out.map_err(|e| if e.starts_with('[') { e } else { format!("[{stage}] {e}") })
        })
    }
}
