//! Every loop in every production firmware must carry a finite
//! loop-bound annotation — `counted`, `host`, or `server`, never
//! `unknown` — at every optimization level. The `bound` pipeline
//! stage depends on this: an `unknown` annotation reachable from the
//! entry point is a certification failure.

use parfait_hsms::firmware::{ecdsa_app_source, hasher_app_source};
use parfait_hsms::totp::totp_app_source;
use parfait_hsms::{ecdsa, hasher, syssw, totp};
use parfait_littlec::codegen::{compile, OptLevel};
use parfait_littlec::frontend;

fn annotations(app_source: &str, syssw_src: &str, opt: OptLevel) -> Vec<String> {
    let mut source = String::from(app_source);
    source.push_str(syssw_src);
    let program = frontend(&source).unwrap();
    let asm = compile(&program, opt).unwrap();
    asm.lines().filter(|l| l.starts_with("# loopbound ")).map(String::from).collect()
}

fn check_app(name: &str, app_source: &str, sizes: (usize, usize, usize)) {
    let syssw_src = syssw::syssw_source(sizes.0, sizes.1, sizes.2);
    for opt in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
        let anns = annotations(app_source, &syssw_src, opt);
        assert!(!anns.is_empty(), "{name} {opt}: no loop annotations");
        let unknown: Vec<&String> = anns.iter().filter(|a| a.contains("kind=unknown")).collect();
        assert!(unknown.is_empty(), "{name} {opt}: unresolved loop bounds: {unknown:?}");
        // Exactly one server loop (the syssw command loop).
        let servers = anns.iter().filter(|a| a.contains("kind=server")).count();
        assert_eq!(servers, 1, "{name} {opt}: expected one server loop: {anns:?}");
        // The MMIO polls in ss_read_byte/ss_write_byte are host-blocking.
        let hosts = anns.iter().filter(|a| a.contains("kind=host")).count();
        assert!(hosts >= 2, "{name} {opt}: expected >= 2 host polls: {anns:?}");
    }
}

#[test]
fn hasher_firmware_loops_all_bounded() {
    check_app(
        "hasher",
        &hasher_app_source(),
        (hasher::STATE_SIZE, hasher::COMMAND_SIZE, hasher::RESPONSE_SIZE),
    );
}

#[test]
fn totp_firmware_loops_all_bounded() {
    check_app(
        "totp",
        &totp_app_source(),
        (totp::STATE_SIZE, totp::COMMAND_SIZE, totp::RESPONSE_SIZE),
    );
}

#[test]
fn ecdsa_firmware_loops_all_bounded() {
    check_app(
        "ecdsa",
        &ecdsa_app_source(),
        (ecdsa::STATE_SIZE, ecdsa::COMMAND_SIZE, ecdsa::RESPONSE_SIZE),
    );
}
