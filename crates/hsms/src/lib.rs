//! parfait-hsms — the four case-study HSMs (paper §7).
//!
//! Two applications × two hardware platforms:
//!
//! * [`ecdsa`] — the ECDSA-P256 certificate-signing HSM (fig. 4): a
//!   40-line-spec HSM whose `Sign` command produces deterministic-nonce
//!   ECDSA signatures, with no way to read the keys back out;
//! * [`hasher`] — the HMAC password-hashing HSM (fig. 12);
//! * [`totp`] — a third app demonstrating §8.1's modularity claim: an
//!   RFC 4226 one-time-password HSM built by reusing the HMAC-SHA-256
//!   firmware with a new ~50-line handle and ~60-line spec;
//! * [`pkcs11`] — a Cryptoki-style host session layer for the ECDSA
//!   token ("PKCS#11-compatible", §1);
//! * [`platform`] — the Ibex-like and PicoRV32-like SoC platforms and
//!   the firmware build pipeline (littlec app code + system software →
//!   RV32IM assembly → ROM image);
//! * [`syssw`] — the system software of fig. 1: the five-step execution
//!   loop, byte I/O over the ready/valid port, and journaled persistence
//!   (fig. 9: one atomically-written flag word toggling two state
//!   copies in FRAM);
//! * [`firmware`] — the littlec sources: SHA-256, BLAKE2s, HMAC, P-256
//!   Montgomery/Jacobian arithmetic, constant-time ECDSA, and the two
//!   `handle` functions.
//!
//! The littlec crypto code is differentially verified against
//! `parfait-crypto` (the HACL\*-stand-in specification) at every level
//! of the compilation pipeline.

#![forbid(unsafe_code)]

pub mod ecdsa;
pub mod firmware;
pub mod hasher;
pub mod pkcs11;
pub mod platform;
pub mod syssw;
pub mod totp;
