//! littlec firmware sources for the case-study HSMs.
//!
//! The sources are concatenated into per-app programs by the functions
//! below; P-256 constants (Montgomery parameters, base point, exponents)
//! are generated from `parfait-crypto` so the firmware and the spec can
//! never disagree about them.

use parfait_crypto::{bignum, p256};

/// SHA-256 and HMAC-SHA-256 in littlec.
pub const SHA256_LC: &str = include_str!("sha256.lc");
/// BLAKE2s and HMAC-BLAKE2s in littlec.
pub const BLAKE2S_LC: &str = include_str!("blake2s.lc");
/// P-256 bignum/field/point arithmetic in littlec.
pub const P256_LC: &str = include_str!("p256.lc");
/// The ECDSA HSM `handle` function.
pub const ECDSA_HANDLE_LC: &str = include_str!("ecdsa_handle.lc");
/// The password-hasher HSM `handle` function.
pub const HASHER_HANDLE_LC: &str = include_str!("hasher_handle.lc");

fn const_array(name: &str, limbs: &[u32]) -> String {
    let body: Vec<String> = limbs.iter().map(|l| format!("{l:#010x}")).collect();
    format!("const u32 {name}[{}] = {{ {} }};\n", limbs.len(), body.join(", "))
}

/// Generate the P-256 constant definitions the littlec code expects.
pub fn p256_constants() -> String {
    let f = p256::field();
    let n = p256::order();
    let mut out = String::new();
    out.push_str(&const_array("P256_P", &f.m));
    out.push_str(&const_array("P256_N", &n.m));
    out.push_str(&format!("const u32 P256_P_INV = {:#010x};\n", f.m_inv32));
    out.push_str(&format!("const u32 P256_N_INV = {:#010x};\n", n.m_inv32));
    out.push_str(&const_array("P256_R2_P", &f.r2));
    out.push_str(&const_array("P256_R2_N", &n.r2));
    out.push_str(&const_array("P256_ONE_P", &f.one));
    out.push_str(&const_array("P256_ONE_N", &n.one));
    out.push_str(&const_array("P256_ONE_RAW", &{
        let mut one = [0u32; 8];
        one[0] = 1;
        one
    }));
    // Base point in Montgomery form.
    out.push_str(&const_array("P256_GX_M", &f.to_mont(&p256::gx())));
    out.push_str(&const_array("P256_GY_M", &f.to_mont(&p256::gy())));
    // Public exponents for Fermat inversion.
    let two = {
        let mut t = [0u32; 8];
        t[0] = 2;
        t
    };
    out.push_str(&const_array("P256_P_MINUS_2", &bignum::sub(&f.m, &two).0));
    out.push_str(&const_array("P256_N_MINUS_2", &bignum::sub(&n.m, &two).0));
    out
}

/// The complete ECDSA HSM application program (everything `handle`
/// needs, no system software).
pub fn ecdsa_app_source() -> String {
    let mut s = String::new();
    s.push_str(&p256_constants());
    s.push_str(SHA256_LC);
    s.push_str(P256_LC);
    s.push_str(ECDSA_HANDLE_LC);
    s
}

/// The complete password-hasher application program.
pub fn hasher_app_source() -> String {
    let mut s = String::new();
    s.push_str(BLAKE2S_LC);
    s.push_str(HASHER_HANDLE_LC);
    s
}

#[cfg(test)]
mod tests_sha256;

#[cfg(test)]
mod tests_p256;

#[cfg(test)]
mod tests_blake2s;
