//! Differential tests: littlec P-256/ECDSA vs the Rust specification.

use parfait_crypto::{bignum, p256};
use parfait_littlec::frontend;
use parfait_littlec::interp::Interp;

use crate::firmware::{ecdsa_app_source, p256_constants, P256_LC};

/// P-256 code plus small test shims (no handle / hash code).
fn p256_test_source() -> String {
    let mut s = p256_constants();
    s.push_str(P256_LC);
    s.push_str(
        "
        void mont_mul_test(u8* r_be, u8* a_be, u8* b_be) {
            u32 a[8]; bn_from_be(a, a_be);
            u32 b[8]; bn_from_be(b, b_be);
            u32 am[8]; fe_to_mont(am, a);
            u32 bm[8]; fe_to_mont(bm, b);
            u32 pm[8]; fe_mul(pm, am, bm);
            u32 p[8]; fe_from_mont(p, pm);
            bn_to_be(r_be, p);
        }
        void fe_inv_test(u8* r_be, u8* a_be) {
            u32 a[8]; bn_from_be(a, a_be);
            u32 am[8]; fe_to_mont(am, a);
            u32 im[8]; fe_inv(im, am);
            u32 i[8]; fe_from_mont(i, im);
            bn_to_be(r_be, i);
        }
        void pt_mul_test(u8* x_be, u8* k_be) {
            u32 g[24];
            bn_copy(g, P256_GX_M);
            bn_copy(g + 8, P256_GY_M);
            bn_copy(g + 16, P256_ONE_P);
            u32 r[24];
            pt_mul(r, k_be, g);
            u32 x[8];
            pt_affine_x(x, r);
            bn_to_be(x_be, x);
        }
        void ecdsa_test(u8* sig, u8* ok_out, u8* msg, u8* d, u8* k) {
            u32 ok = ecdsa_sign_ct(sig, msg, d, k);
            ok_out[0] = (u8)ok;
        }
        ",
    );
    s
}

fn be(limbs: &[u32; 8]) -> Vec<u8> {
    bignum::to_be_bytes(limbs).to_vec()
}

#[test]
fn littlec_mont_mul_matches_spec() {
    let src = p256_test_source();
    let p = frontend(&src).unwrap_or_else(|e| panic!("{e}"));
    let i = Interp::new(&p);
    let f = p256::field();
    let cases = [
        ("2", "3"),
        ("deadbeefcafebabe0123456789abcdef", "fedcba9876543210"),
        (
            "ffffffff00000001000000000000000000000000fffffffffffffffffffffffe", // p-1
            "ffffffff00000001000000000000000000000000fffffffffffffffffffffffe",
        ),
    ];
    for (a_hex, b_hex) in cases {
        let a = bignum::from_hex(a_hex);
        let b = bignum::from_hex(b_hex);
        let want = f.from_mont(&f.mul(&f.to_mont(&a), &f.to_mont(&b)));
        let out = vec![0u8; 32];
        let res = i.call_with_buffers("mont_mul_test", &[&out, &be(&a), &be(&b)]).unwrap();
        assert_eq!(res[0], be(&want), "a={a_hex} b={b_hex}");
    }
}

#[test]
fn littlec_fe_inv_matches_spec() {
    let src = p256_test_source();
    let p = frontend(&src).unwrap();
    let i = Interp::new(&p);
    let f = p256::field();
    let a = bignum::from_hex("123456789abcdef0fedcba9876543210");
    let want = f.from_mont(&f.inv(&f.to_mont(&a)));
    let out = vec![0u8; 32];
    let res = i.call_with_buffers("fe_inv_test", &[&out, &be(&a)]).unwrap();
    assert_eq!(res[0], be(&want));
}

#[test]
fn littlec_scalar_mult_matches_spec() {
    let src = p256_test_source();
    let p = frontend(&src).unwrap();
    let i = Interp::new(&p);
    // k = 2: known 2G x-coordinate.
    let k = bignum::from_hex("2");
    let rp = p256::Point::generator().mul_scalar(&k);
    let (want_x, _) = rp.to_affine().unwrap();
    let out = vec![0u8; 32];
    let res = i.call_with_buffers("pt_mul_test", &[&out, &be(&k)]).unwrap();
    assert_eq!(res[0], be(&want_x), "2G");
}

#[test]
fn littlec_scalar_mult_random_scalar() {
    let src = p256_test_source();
    let p = frontend(&src).unwrap();
    let i = Interp::new(&p);
    let k = bignum::from_hex("4c3b17aa873382b0f24d6129493d8aad60a6e3c57dd01abe90086538398355dd");
    let rp = p256::Point::generator().mul_scalar(&k);
    let (want_x, _) = rp.to_affine().unwrap();
    let out = vec![0u8; 32];
    let res = i.call_with_buffers("pt_mul_test", &[&out, &be(&k)]).unwrap();
    assert_eq!(res[0], be(&want_x));
}

#[test]
fn littlec_ecdsa_sign_matches_spec() {
    let src = p256_test_source();
    let p = frontend(&src).unwrap();
    let i = Interp::new(&p);
    let msg = [0x44u8; 32];
    let mut d = [7u8; 32];
    d[0] = 0; // keep the scalar comfortably below n
    let mut k = [9u8; 32];
    k[0] = 0;
    let want = parfait_crypto::ecdsa_p256_sign(&msg, &d, &k).expect("valid inputs");
    let sig = vec![0u8; 64];
    let ok = vec![0u8; 1];
    let res = i.call_with_buffers("ecdsa_test", &[&sig, &ok, &msg, &d, &k]).unwrap();
    assert_eq!(res[1], vec![1], "ok flag");
    assert_eq!(res[0], want.to_bytes().to_vec());
}

#[test]
fn littlec_ecdsa_invalid_inputs_flagged() {
    let src = p256_test_source();
    let p = frontend(&src).unwrap();
    let i = Interp::new(&p);
    let msg = [0x44u8; 32];
    let zero = [0u8; 32];
    let mut k = [9u8; 32];
    k[0] = 0;
    let sig = vec![0u8; 64];
    let ok = vec![0u8; 1];
    let res = i.call_with_buffers("ecdsa_test", &[&sig, &ok, &msg, &zero, &k]).unwrap();
    assert_eq!(res[1], vec![0], "zero key must be rejected");
}

#[test]
fn littlec_ecdsa_handle_matches_spec_machine() {
    use crate::ecdsa::{EcdsaCodec, EcdsaCommand, EcdsaSpec, RESPONSE_SIZE};
    use parfait::lockstep::Codec;
    use parfait::StateMachine;

    let src = ecdsa_app_source();
    let p = frontend(&src).unwrap_or_else(|e| panic!("{e}"));
    let interp = Interp::new(&p);
    let spec = EcdsaSpec;
    let codec = EcdsaCodec;

    // Initialize then sign, comparing state and response encodings.
    let mut spec_state = spec.init();
    let mut impl_state = codec.encode_state(&spec_state);
    let cmds = vec![
        EcdsaCommand::GetPublicKey, // pre-initialization: PublicKey None
        EcdsaCommand::Initialize { prf_key: [0x11; 32], sig_key: [0x22; 32] },
        EcdsaCommand::Sign { msg: [0x33; 32] },
        EcdsaCommand::GetPublicKey,
    ];
    for cmd in cmds {
        let ci = codec.encode_command(&cmd);
        let (s2, r2) = spec.step(&spec_state, &cmd);
        let (si2, ri) = interp.step(&impl_state, &ci, RESPONSE_SIZE).unwrap();
        assert_eq!(si2, codec.encode_state(&s2), "state after {cmd:?}");
        assert_eq!(ri, codec.encode_response(Some(&r2)), "response to {cmd:?}");
        spec_state = s2;
        impl_state = si2;
    }

    // An invalid command must leave state unchanged and return the
    // canonical error.
    let bad = vec![0x77u8; 65];
    let (si2, ri) = interp.step(&impl_state, &bad, RESPONSE_SIZE).unwrap();
    assert_eq!(si2, impl_state);
    assert_eq!(ri, codec.encode_response(None));
}
