//! Differential tests: littlec SHA-256/HMAC vs the Rust specification.

use parfait_littlec::codegen::OptLevel;
use parfait_littlec::frontend;
use parfait_littlec::interp::Interp;

use crate::firmware::SHA256_LC;

/// A test program exposing hash/hmac through a `handle`-like driver:
/// `void sha_test(u8* out, u8* data, u8* lenbuf)`.
fn test_source() -> String {
    let mut s = String::from(SHA256_LC);
    s.push_str(
        "
        void sha_test(u8* out, u8* data, u8* lenbuf) {
            u32 len = lenbuf[0];
            sha256_hash(out, data, len);
        }
        void hmac_test(u8* out, u8* key, u8* msg, u8* lens) {
            hmac_sha256(out, key, lens[0], msg, lens[1]);
        }
        ",
    );
    s
}

fn interp_sha(data: &[u8]) -> Vec<u8> {
    let src = test_source();
    let p = frontend(&src).unwrap();
    let i = Interp::new(&p);
    let out = vec![0u8; 32];
    let mut padded = data.to_vec();
    padded.resize(data.len().max(1), 0);
    let lenbuf = vec![data.len() as u8];
    let res = i.call_with_buffers("sha_test", &[&out, &padded, &lenbuf]).unwrap();
    res[0].clone()
}

#[test]
fn littlec_sha256_matches_spec() {
    for data in [
        b"".to_vec(),
        b"abc".to_vec(),
        b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq".to_vec(),
        vec![0xA5; 64],
        vec![0x5A; 96],
        vec![7; 119],
    ] {
        let want = parfait_crypto::sha256(&data).to_vec();
        let got = interp_sha(&data);
        assert_eq!(got, want, "len={}", data.len());
    }
}

#[test]
fn littlec_hmac_sha256_matches_spec() {
    let src = test_source();
    let p = frontend(&src).unwrap();
    let i = Interp::new(&p);
    for (key, msg) in [
        (vec![0x0B; 20], b"Hi There".to_vec()),
        (b"Jefe".to_vec(), b"what do ya want for nothing?".to_vec()),
        (vec![0xAA; 64], vec![0xDD; 50]),
        (vec![1; 32], vec![2; 8]),
        (vec![9; 32], vec![3; 64]),
    ] {
        let want = parfait_crypto::hmac_sha256(&key, &msg).to_vec();
        let out = vec![0u8; 32];
        let lens = vec![key.len() as u8, msg.len() as u8];
        let res = i.call_with_buffers("hmac_test", &[&out, &key, &msg, &lens]).unwrap();
        assert_eq!(res[0], want, "keylen={} msglen={}", key.len(), msg.len());
    }
}

#[test]
fn littlec_sha256_all_compiler_levels() {
    // The same program through the full pipeline: interp / IR / asm.
    let src = test_source();
    let p = frontend(&src).unwrap();
    let data = vec![0x42u8; 61];
    let want = parfait_crypto::sha256(&data).to_vec();

    // IR level.
    let ir = parfait_littlec::ir::lower(&p).unwrap();
    let ev = parfait_littlec::ireval::IrEval::new(&ir);
    let out = vec![0u8; 32];
    let lenbuf = vec![61u8];
    let res = ev.call_with_buffers("sha_test", &[&out, &data, &lenbuf]).unwrap();
    assert_eq!(res[0], want, "IR level");

    // Asm level, all optimization levels.
    for opt in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
        let asm = parfait_littlec::codegen::compile(&p, opt).unwrap();
        let prog = parfait_riscv::assemble(&asm).unwrap();
        let mut m = parfait_riscv::Machine::with_program(&prog);
        let out_ptr = m.alloc(32);
        let data_ptr = m.alloc(data.len() as u32);
        m.storebytes(data_ptr, &data);
        let len_ptr = m.alloc(1);
        m.storebytes(len_ptr, &[61]);
        let entry = prog.address_of("sha_test").unwrap();
        m.call(entry, &[out_ptr, data_ptr, len_ptr], 50_000_000).unwrap();
        assert_eq!(m.loadbytes(out_ptr, 32), want, "asm {opt}");
    }
}
