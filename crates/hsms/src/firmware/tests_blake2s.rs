//! Differential tests: littlec BLAKE2s/HMAC-BLAKE2s vs the Rust spec.

use parfait_littlec::frontend;
use parfait_littlec::interp::Interp;

use crate::firmware::{hasher_app_source, BLAKE2S_LC};

fn test_source() -> String {
    let mut s = String::from(BLAKE2S_LC);
    s.push_str(
        "
        void b2s_test(u8* out, u8* data, u8* lenbuf) {
            blake2s_hash(out, data, lenbuf[0]);
        }
        ",
    );
    s
}

#[test]
fn littlec_blake2s_matches_spec() {
    let src = test_source();
    let p = frontend(&src).unwrap();
    let i = Interp::new(&p);
    for data in
        [b"abc".to_vec(), b"".to_vec(), vec![0x5A; 64], vec![0xA5; 96], vec![3; 128], vec![9; 65]]
    {
        let want = parfait_crypto::blake2s_256(&data).to_vec();
        let out = vec![0u8; 32];
        let padded = if data.is_empty() { vec![0] } else { data.clone() };
        let lenbuf = vec![data.len() as u8];
        let res = i.call_with_buffers("b2s_test", &[&out, &padded, &lenbuf]).unwrap();
        assert_eq!(res[0], want, "len={}", data.len());
    }
}

#[test]
fn littlec_hasher_handle_matches_spec_machine() {
    use crate::hasher::{HasherCodec, HasherCommand, HasherSpec, RESPONSE_SIZE};
    use parfait::lockstep::Codec;
    use parfait::StateMachine;

    let src = hasher_app_source();
    let p = frontend(&src).unwrap_or_else(|e| panic!("{e}"));
    let interp = Interp::new(&p);
    let spec = HasherSpec;
    let codec = HasherCodec;

    let mut spec_state = spec.init();
    let mut impl_state = codec.encode_state(&spec_state);
    let cmds = vec![
        HasherCommand::Hash { message: [0x01; 32] }, // pre-initialization
        HasherCommand::Initialize { secret: [0xAB; 32] },
        HasherCommand::Hash { message: [0x42; 32] },
        HasherCommand::Hash { message: [0x43; 32] },
    ];
    for cmd in cmds {
        let ci = codec.encode_command(&cmd);
        let (s2, r2) = spec.step(&spec_state, &cmd);
        let (si2, ri) = interp.step(&impl_state, &ci, RESPONSE_SIZE).unwrap();
        assert_eq!(si2, codec.encode_state(&s2), "state after {cmd:?}");
        assert_eq!(ri, codec.encode_response(Some(&r2)), "response to {cmd:?}");
        spec_state = s2;
        impl_state = si2;
    }
    let bad = vec![0x09u8; 33];
    let (si2, ri) = interp.step(&impl_state, &bad, RESPONSE_SIZE).unwrap();
    assert_eq!(si2, impl_state);
    assert_eq!(ri, codec.encode_response(None));
}
