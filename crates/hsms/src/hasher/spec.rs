//! The application specification of the password-hashing HSM.
//!
//! The Rust transcription of the paper's fig. 12: `Initialize(secret)`
//! and `Hash(message)` returning `hmac Blake2S secret message`. The HSM
//! defends password databases against offline brute force: without the
//! secret (which never leaves the device), candidate passwords cannot be
//! hashed for comparison.

use parfait::lockstep::Codec;
use parfait::StateMachine;
use parfait_crypto::hmac_blake2s;

use super::{COMMAND_SIZE, RESPONSE_SIZE};

/// Spec-level state: the HMAC secret.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HasherState {
    /// The device secret.
    pub secret: [u8; 32],
}

/// Spec-level commands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HasherCommand {
    /// Install a new secret.
    Initialize {
        /// The new secret.
        secret: [u8; 32],
    },
    /// Hash a 32-byte message under the secret.
    Hash {
        /// The message (e.g. a pre-hashed password).
        message: [u8; 32],
    },
}

/// Spec-level responses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HasherResponse {
    /// Acknowledgement of `Initialize`.
    Initialized,
    /// The HMAC-BLAKE2s digest.
    Hashed([u8; 32]),
}

/// The password-hasher specification machine (fig. 12).
#[derive(Clone, Copy, Debug, Default)]
pub struct HasherSpec;

impl StateMachine for HasherSpec {
    type State = HasherState;
    type Command = HasherCommand;
    type Response = HasherResponse;

    fn init(&self) -> HasherState {
        HasherState { secret: [0; 32] }
    }

    fn step(&self, st: &HasherState, cmd: &HasherCommand) -> (HasherState, HasherResponse) {
        match cmd {
            HasherCommand::Initialize { secret } => {
                (HasherState { secret: *secret }, HasherResponse::Initialized)
            }
            HasherCommand::Hash { message } => {
                let digest = hmac_blake2s(&st.secret, message);
                (st.clone(), HasherResponse::Hashed(digest))
            }
        }
    }
}

/// Byte-level encodings for the password hasher.
#[derive(Clone, Copy, Debug, Default)]
pub struct HasherCodec;

impl Codec for HasherCodec {
    type Spec = HasherSpec;
    type CI = Vec<u8>;
    type RI = Vec<u8>;
    type SI = Vec<u8>;

    fn encode_command(&self, c: &HasherCommand) -> Vec<u8> {
        let mut out = vec![0u8; COMMAND_SIZE];
        match c {
            HasherCommand::Initialize { secret } => {
                out[0] = 1;
                out[1..33].copy_from_slice(secret);
            }
            HasherCommand::Hash { message } => {
                out[0] = 2;
                out[1..33].copy_from_slice(message);
            }
        }
        out
    }

    fn decode_command(&self, c: &Vec<u8>) -> Option<HasherCommand> {
        if c.len() != COMMAND_SIZE {
            return None;
        }
        let mut payload = [0u8; 32];
        payload.copy_from_slice(&c[1..33]);
        match c[0] {
            1 => Some(HasherCommand::Initialize { secret: payload }),
            2 => Some(HasherCommand::Hash { message: payload }),
            _ => None,
        }
    }

    fn encode_response(&self, r: Option<&HasherResponse>) -> Vec<u8> {
        let mut out = vec![0u8; RESPONSE_SIZE];
        match r {
            Some(HasherResponse::Initialized) => out[0] = 1,
            Some(HasherResponse::Hashed(d)) => {
                out[0] = 2;
                out[1..33].copy_from_slice(d);
            }
            None => out[0] = 0xFF,
        }
        out
    }

    fn decode_response(&self, r: &Vec<u8>) -> HasherResponse {
        match r.first() {
            Some(2) => {
                let mut d = [0u8; 32];
                d.copy_from_slice(&r[1..33]);
                HasherResponse::Hashed(d)
            }
            _ => HasherResponse::Initialized,
        }
    }

    fn encode_state(&self, s: &HasherState) -> Vec<u8> {
        s.secret.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_matches_crypto_library() {
        let spec = HasherSpec;
        let secret = [9u8; 32];
        let msg = [3u8; 32];
        let (st, _) = spec.step(&spec.init(), &HasherCommand::Initialize { secret });
        let (_, r) = spec.step(&st, &HasherCommand::Hash { message: msg });
        assert_eq!(r, HasherResponse::Hashed(hmac_blake2s(&secret, &msg)));
    }

    #[test]
    fn codec_roundtrips() {
        let codec = HasherCodec;
        let cmds = [
            HasherCommand::Initialize { secret: [1; 32] },
            HasherCommand::Hash { message: [2; 32] },
        ];
        let resps = [HasherResponse::Initialized, HasherResponse::Hashed([7; 32])];
        parfait::lockstep::check_codec_inverse(&codec, &cmds, &resps).unwrap();
    }

    #[test]
    fn hash_does_not_change_state() {
        let spec = HasherSpec;
        let (st, _) = spec.step(&spec.init(), &HasherCommand::Initialize { secret: [5; 32] });
        let (st2, _) = spec.step(&st, &HasherCommand::Hash { message: [6; 32] });
        assert_eq!(st, st2);
    }
}
