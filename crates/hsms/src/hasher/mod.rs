//! The HMAC password-hashing HSM (paper fig. 12 and §7.1).

pub mod spec;

pub use spec::{HasherCodec, HasherCommand, HasherResponse, HasherSpec, HasherState};

/// Size of the encoded state: the 32-byte secret.
pub const STATE_SIZE: usize = 32;
/// Size of an encoded command: tag ‖ 32-byte payload.
pub const COMMAND_SIZE: usize = 33;
/// Size of an encoded response: tag ‖ 32-byte payload.
pub const RESPONSE_SIZE: usize = 33;
