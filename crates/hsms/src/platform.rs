//! Hardware platforms: the Ibex-like and PicoRV32-like SoCs, and the
//! firmware build pipeline.
//!
//! A platform build compiles the application's littlec sources together
//! with the generated system software, prepends the boot shim, assembles
//! the result at the SoC memory map, and packages it as a ROM image —
//! the paper's "linked binary … embedded in the hardware's ROM" (§2).

use parfait_cores::{IbexCore, PicoCore};
use parfait_littlec::codegen::{compile, OptLevel};
use parfait_littlec::frontend;
use parfait_littlec::LcError;
use parfait_riscv::asm::{assemble_with, Layout};
use parfait_soc::{Firmware, Soc, FRAM_BASE, RAM_BASE, ROM_BASE};

use crate::syssw;

/// Which CPU the platform uses (paper §7.1: hardware platforms 1 and 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cpu {
    /// The 2-stage pipelined Ibex-like core.
    Ibex,
    /// The size-optimized multi-cycle PicoRV32-like core.
    Pico,
}

impl std::fmt::Display for Cpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Cpu::Ibex => f.write_str("Ibex"),
            Cpu::Pico => f.write_str("PicoRV32"),
        }
    }
}

/// An application's buffer sizes (fig. 1's STATE/COMMAND/RESPONSE_SIZE).
#[derive(Clone, Copy, Debug)]
pub struct AppSizes {
    /// Encoded state size.
    pub state: usize,
    /// Encoded command size.
    pub command: usize,
    /// Encoded response size.
    pub response: usize,
}

/// Build the firmware image for an application.
///
/// `app_source` provides `handle` plus everything it calls; the system
/// software and boot shim are appended/prepended here.
pub fn build_firmware(
    app_source: &str,
    sizes: AppSizes,
    opt: OptLevel,
) -> Result<Firmware, LcError> {
    let syssw_src = syssw::syssw_source(sizes.state, sizes.command, sizes.response);
    build_firmware_parts(app_source, &syssw_src, opt, |asm| asm)
}

/// Build firmware from explicit parts, with a hook to transform the
/// generated assembly before it is linked.
///
/// The hook models post-compiler tampering: the fault-injection suite
/// uses it to plant "compiler-introduced" timing bugs (§7.2) below the
/// littlec source level, and custom `syssw_src` values plant system
/// software bugs.
pub fn build_firmware_parts(
    app_source: &str,
    syssw_src: &str,
    opt: OptLevel,
    patch_asm: impl FnOnce(String) -> String,
) -> Result<Firmware, LcError> {
    let mut source = String::from(app_source);
    source.push_str(syssw_src);
    let program = frontend(&source)?;
    let compiled = patch_asm(compile(&program, opt)?);
    let mut asm = String::from(syssw::BOOT_ASM);
    asm.push_str(&compiled);
    let prog = assemble_with(&asm, Layout { text_base: ROM_BASE, data_base: RAM_BASE })
        .map_err(|e| LcError::new(e.line, format!("firmware assembly failed: {}", e.msg)))?;
    Ok(Firmware::from_program(&prog))
}

/// Instantiate an SoC for `cpu` with the given firmware and encoded
/// initial HSM state.
///
/// The FRAM is loaded with the journaled image (both slots = initial
/// state, flag = 0); the state slots are tainted as secrets, while the
/// journal flag word — public metadata — is untainted.
pub fn make_soc(cpu: Cpu, firmware: Firmware, initial_state: &[u8]) -> Soc {
    make_soc_with(cpu, firmware, initial_state, None)
}

/// [`make_soc`] with an optional deliberately seeded core fault
/// ([`parfait_cores::SeededFault`]). Production callers pass `None`;
/// the `parfait-adversary` mutation harness (DESIGN.md §12) seeds
/// micro-architectural bugs here to prove the FPS check rejects them.
pub fn make_soc_with(
    cpu: Cpu,
    firmware: Firmware,
    initial_state: &[u8],
    fault: Option<parfait_cores::SeededFault>,
) -> Soc {
    let fram = syssw::initial_fram(initial_state);
    let core: Box<dyn parfait_cores::Core> = match cpu {
        Cpu::Ibex => Box::new(IbexCore::with_fault(ROM_BASE, fault)),
        Cpu::Pico => Box::new(PicoCore::with_fault(ROM_BASE, fault)),
    };
    let mut soc = Soc::new(core, firmware, &fram);
    // The journal flag is public.
    soc.fram.set_taint(syssw::FLAG_OFFSET, 4, false);
    soc
}

/// Convenience: the FRAM base-relative address of the journal flag.
pub const FLAG_ADDR: u32 = FRAM_BASE;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hasher;
    use parfait::lockstep::Codec;
    use parfait::StateMachine;
    use parfait_rtl::Circuit;
    use parfait_soc::host;

    fn hasher_sizes() -> AppSizes {
        AppSizes {
            state: hasher::STATE_SIZE,
            command: hasher::COMMAND_SIZE,
            response: hasher::RESPONSE_SIZE,
        }
    }

    fn run_command(soc: &mut Soc, cmd: &[u8], resp_len: usize) -> Vec<u8> {
        host::send_bytes(soc, cmd, 2_000_000).unwrap();
        let r = host::recv_bytes(soc, resp_len, 20_000_000).unwrap();
        assert!(soc.fault().is_none(), "{:?}", soc.fault());
        r
    }

    #[test]
    fn hasher_on_ibex_soc_end_to_end() {
        let fw =
            build_firmware(&crate::firmware::hasher_app_source(), hasher_sizes(), OptLevel::O2)
                .unwrap();
        let spec = hasher::HasherSpec;
        let codec = hasher::HasherCodec;
        let st0 = spec.init();
        let mut soc = make_soc(Cpu::Ibex, fw, &codec.encode_state(&st0));

        // Initialize.
        let cmd = hasher::HasherCommand::Initialize { secret: [0xAB; 32] };
        let (st1, want) = spec.step(&st0, &cmd);
        let resp = run_command(&mut soc, &codec.encode_command(&cmd), hasher::RESPONSE_SIZE);
        assert_eq!(resp, codec.encode_response(Some(&want)));

        // Hash.
        let cmd = hasher::HasherCommand::Hash { message: [0x42; 32] };
        let (_, want) = spec.step(&st1, &cmd);
        let resp = run_command(&mut soc, &codec.encode_command(&cmd), hasher::RESPONSE_SIZE);
        assert_eq!(resp, codec.encode_response(Some(&want)));

        // Invalid command.
        let bad = vec![9u8; hasher::COMMAND_SIZE];
        let resp = run_command(&mut soc, &bad, hasher::RESPONSE_SIZE);
        assert_eq!(resp, codec.encode_response(None));
    }

    #[test]
    fn hasher_on_pico_soc_end_to_end() {
        let fw =
            build_firmware(&crate::firmware::hasher_app_source(), hasher_sizes(), OptLevel::O2)
                .unwrap();
        let spec = hasher::HasherSpec;
        let codec = hasher::HasherCodec;
        let st0 = spec.init();
        let mut soc = make_soc(Cpu::Pico, fw, &codec.encode_state(&st0));
        let cmd = hasher::HasherCommand::Initialize { secret: [0x11; 32] };
        let (st1, want) = spec.step(&st0, &cmd);
        let resp = run_command(&mut soc, &codec.encode_command(&cmd), hasher::RESPONSE_SIZE);
        assert_eq!(resp, codec.encode_response(Some(&want)));
        let cmd = hasher::HasherCommand::Hash { message: [0x99; 32] };
        let (_, want) = spec.step(&st1, &cmd);
        let resp = run_command(&mut soc, &codec.encode_command(&cmd), hasher::RESPONSE_SIZE);
        assert_eq!(resp, codec.encode_response(Some(&want)));
    }

    #[test]
    fn state_persists_in_fram_across_power_cycles() {
        let fw =
            build_firmware(&crate::firmware::hasher_app_source(), hasher_sizes(), OptLevel::O2)
                .unwrap();
        let spec = hasher::HasherSpec;
        let codec = hasher::HasherCodec;
        let st0 = spec.init();
        let mut soc = make_soc(Cpu::Ibex, fw, &codec.encode_state(&st0));
        let cmd = hasher::HasherCommand::Initialize { secret: [0x77; 32] };
        let (st1, _) = spec.step(&st0, &cmd);
        run_command(&mut soc, &codec.encode_command(&cmd), hasher::RESPONSE_SIZE);

        // Power-cycle the device; the secret must survive.
        soc.power_cycle();
        let cmd = hasher::HasherCommand::Hash { message: [0x10; 32] };
        let (_, want) = spec.step(&st1, &cmd);
        let resp = run_command(&mut soc, &codec.encode_command(&cmd), hasher::RESPONSE_SIZE);
        assert_eq!(resp, codec.encode_response(Some(&want)));
    }

    #[test]
    fn journal_flag_toggles_per_command() {
        let fw =
            build_firmware(&crate::firmware::hasher_app_source(), hasher_sizes(), OptLevel::O1)
                .unwrap();
        let codec = hasher::HasherCodec;
        let spec = hasher::HasherSpec;
        let mut soc = make_soc(Cpu::Ibex, fw, &codec.encode_state(&spec.init()));
        assert_eq!(soc.fram_bytes(0, 4), vec![0, 0, 0, 0]);
        let cmd = hasher::HasherCommand::Initialize { secret: [1; 32] };
        run_command(&mut soc, &codec.encode_command(&cmd), hasher::RESPONSE_SIZE);
        assert_eq!(soc.fram_bytes(0, 4), vec![1, 0, 0, 0]);
        run_command(&mut soc, &codec.encode_command(&cmd), hasher::RESPONSE_SIZE);
        assert_eq!(soc.fram_bytes(0, 4), vec![0, 0, 0, 0]);
        // The active state tracks the journal (fig. 9).
        let active = crate::syssw::active_state(&soc.fram_bytes(0, 80), hasher::STATE_SIZE);
        assert_eq!(active, codec.encode_state(&hasher::HasherState { secret: [1; 32] }));
    }

    #[test]
    fn idle_device_stays_quiet() {
        let fw =
            build_firmware(&crate::firmware::hasher_app_source(), hasher_sizes(), OptLevel::O2)
                .unwrap();
        let codec = hasher::HasherCodec;
        let spec = hasher::HasherSpec;
        let mut soc = make_soc(Cpu::Ibex, fw, &codec.encode_state(&spec.init()));
        host::idle(&mut soc, 10_000);
        let out = soc.get_output();
        assert!(!out.tx_valid, "no spontaneous output");
        assert!(soc.fault().is_none());
    }
}
