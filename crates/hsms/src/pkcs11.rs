//! A PKCS#11-flavored host-side session API for the ECDSA HSM.
//!
//! The paper describes its first case study as "a PKCS#11-compatible
//! ECDSA certificate-signing HSM" (§1, §7.1). This module provides the
//! host side of that compatibility: a minimal Cryptoki-style session
//! layer (`C_Initialize` / `C_OpenSession` / `C_SignInit` / `C_Sign`)
//! that translates to the HSM's wire protocol. Only the mechanisms the
//! device implements are exposed: `CKM_ECDSA` over P-256 with pre-hashed
//! 32-byte inputs.
//!
//! This is host software — it sits *outside* the verified boundary
//! (like the paper's client library) and relies only on the wire-level
//! driver, which is part of the TCB as the top-level driver's lowest
//! layer.

use parfait::lockstep::Codec;
use parfait_knox2::WireDriver;
use parfait_rtl::Circuit;

use crate::ecdsa::{EcdsaCodec, EcdsaCommand, EcdsaResponse, COMMAND_SIZE, RESPONSE_SIZE};

/// PKCS#11-style return values (the subset this token can produce).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Ckr {
    /// CKR_OK.
    Ok,
    /// CKR_CRYPTOKI_NOT_INITIALIZED.
    CryptokiNotInitialized,
    /// CKR_OPERATION_NOT_INITIALIZED — `C_Sign` without `C_SignInit`.
    OperationNotInitialized,
    /// CKR_MECHANISM_INVALID — only `CKM_ECDSA` is supported.
    MechanismInvalid,
    /// CKR_DATA_LEN_RANGE — inputs must be 32-byte pre-hashes.
    DataLenRange,
    /// CKR_FUNCTION_FAILED — the device returned `Signature None`
    /// (uninitialized token or exhausted nonce counter).
    FunctionFailed,
    /// CKR_DEVICE_ERROR — wire-protocol failure.
    DeviceError,
}

/// Mechanisms (only ECDSA-no-hash exists on this token).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mechanism {
    /// CKM_ECDSA with externally hashed data.
    Ecdsa,
}

/// A Cryptoki-style session owning the transport to one HSM.
pub struct Pkcs11Session<'c> {
    device: &'c mut dyn Circuit,
    wire: WireDriver,
    initialized: bool,
    sign_armed: bool,
}

impl<'c> Pkcs11Session<'c> {
    /// `C_Initialize` + `C_OpenSession` folded together: bind to a
    /// device.
    pub fn open(device: &'c mut dyn Circuit) -> Pkcs11Session<'c> {
        Pkcs11Session {
            device,
            wire: WireDriver::new(COMMAND_SIZE, RESPONSE_SIZE),
            initialized: true,
            sign_armed: false,
        }
    }

    /// `C_InitToken`-ish: provision the keys (a real PKCS#11 token does
    /// this via `C_GenerateKeyPair`; this HSM's spec takes keys at
    /// `Initialize`, fig. 4).
    pub fn init_token(&mut self, prf_key: [u8; 32], sig_key: [u8; 32]) -> Ckr {
        if !self.initialized {
            return Ckr::CryptokiNotInitialized;
        }
        let codec = EcdsaCodec;
        let cmd = EcdsaCommand::Initialize { prf_key, sig_key };
        match self.wire.run(self.device, &codec.encode_command(&cmd)) {
            Ok(resp) => match codec.decode_response(&resp) {
                EcdsaResponse::Initialized => Ckr::Ok,
                _ => Ckr::DeviceError,
            },
            Err(_) => Ckr::DeviceError,
        }
    }

    /// `C_SignInit`: arm a signing operation with a mechanism.
    pub fn sign_init(&mut self, mechanism: Mechanism) -> Ckr {
        if !self.initialized {
            return Ckr::CryptokiNotInitialized;
        }
        match mechanism {
            Mechanism::Ecdsa => {
                self.sign_armed = true;
                Ckr::Ok
            }
        }
    }

    /// `C_Sign`: sign a 32-byte pre-hash, returning the 64-byte `r‖s`.
    pub fn sign(&mut self, data: &[u8]) -> Result<[u8; 64], Ckr> {
        if !self.initialized {
            return Err(Ckr::CryptokiNotInitialized);
        }
        if !self.sign_armed {
            return Err(Ckr::OperationNotInitialized);
        }
        // Single-part operation: disarms regardless of outcome (as the
        // PKCS#11 state machine requires).
        self.sign_armed = false;
        if data.len() != 32 {
            return Err(Ckr::DataLenRange);
        }
        let mut msg = [0u8; 32];
        msg.copy_from_slice(data);
        let codec = EcdsaCodec;
        let cmd = EcdsaCommand::Sign { msg };
        let resp = self
            .wire
            .run(self.device, &codec.encode_command(&cmd))
            .map_err(|_| Ckr::DeviceError)?;
        match codec.decode_response(&resp) {
            EcdsaResponse::Signature(Some(sig)) => Ok(sig),
            EcdsaResponse::Signature(None) => Err(Ckr::FunctionFailed),
            _ => Err(Ckr::DeviceError),
        }
    }

    /// `C_GetAttributeValue(CKA_EC_POINT)`-ish: fetch the token's public
    /// key (affine `x‖y`, big-endian) from the device.
    pub fn get_public_key(&mut self) -> Result<[u8; 64], Ckr> {
        if !self.initialized {
            return Err(Ckr::CryptokiNotInitialized);
        }
        let codec = EcdsaCodec;
        let resp = self
            .wire
            .run(self.device, &codec.encode_command(&EcdsaCommand::GetPublicKey))
            .map_err(|_| Ckr::DeviceError)?;
        match codec.decode_response(&resp) {
            EcdsaResponse::PublicKey(Some(q)) => Ok(q),
            EcdsaResponse::PublicKey(None) => Err(Ckr::FunctionFailed),
            _ => Err(Ckr::DeviceError),
        }
    }

    /// `C_CloseSession`.
    pub fn close(mut self) {
        self.initialized = false;
        let _ = self.sign_armed;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ecdsa::{EcdsaCodec, EcdsaSpec, STATE_SIZE};
    use crate::firmware::ecdsa_app_source;
    use crate::platform::{build_firmware, make_soc, AppSizes, Cpu};
    use parfait::StateMachine;
    use parfait_crypto::ecdsa::public_key;
    use parfait_crypto::{ecdsa_p256_verify, Signature};
    use parfait_littlec::codegen::OptLevel;

    fn device() -> parfait_soc::Soc {
        let sizes = AppSizes { state: STATE_SIZE, command: COMMAND_SIZE, response: RESPONSE_SIZE };
        let fw = build_firmware(&ecdsa_app_source(), sizes, OptLevel::O2).unwrap();
        make_soc(Cpu::Ibex, fw, &EcdsaCodec.encode_state(&EcdsaSpec.init()))
    }

    #[test]
    fn pkcs11_state_machine() {
        let mut soc = device();
        let mut session = Pkcs11Session::open(&mut soc);
        // C_Sign before C_SignInit fails per Cryptoki rules.
        session.sign_armed = false;
        assert_eq!(session.sign(&[0u8; 32]).unwrap_err(), Ckr::OperationNotInitialized);
        // Sign on an uninitialized token: the device answers None.
        assert_eq!(session.sign_init(Mechanism::Ecdsa), Ckr::Ok);
        assert_eq!(session.sign(&[3u8; 32]).unwrap_err(), Ckr::FunctionFailed);
        // Length checks.
        assert_eq!(session.sign_init(Mechanism::Ecdsa), Ckr::Ok);
        assert_eq!(session.sign(&[1u8; 31]).unwrap_err(), Ckr::DataLenRange);
    }

    #[test]
    fn pkcs11_public_key_comes_from_the_device() {
        let mut soc = device();
        let mut session = Pkcs11Session::open(&mut soc);
        // Uninitialized token: no key to export.
        assert_eq!(session.get_public_key().unwrap_err(), Ckr::FunctionFailed);
        let sig_key = *b"pkcs11-token-key-0123456789abcd!";
        assert_eq!(session.init_token([7; 32], sig_key), Ckr::Ok);
        let q = session.get_public_key().unwrap();
        let (x, y) = public_key(&sig_key).unwrap();
        assert_eq!(&q[..32], &parfait_crypto::bignum::to_be_bytes(&x));
        assert_eq!(&q[32..], &parfait_crypto::bignum::to_be_bytes(&y));
    }

    #[test]
    fn pkcs11_sign_verifies() {
        let mut soc = device();
        let mut session = Pkcs11Session::open(&mut soc);
        let sig_key = *b"pkcs11-token-key-0123456789abcd!";
        assert_eq!(session.init_token([7; 32], sig_key), Ckr::Ok);
        assert_eq!(session.sign_init(Mechanism::Ecdsa), Ckr::Ok);
        let digest = parfait_crypto::sha256(b"to-be-signed certificate data");
        let sig = session.sign(&digest).unwrap();
        let pk = public_key(&sig_key).unwrap();
        assert!(ecdsa_p256_verify(&digest, &pk, &Signature::from_bytes(&sig).unwrap()));
        session.close();
    }
}
