//! System software — the paper's fig. 1 execution loop plus the
//! platform library (§2, §5.2): byte I/O over the ready/valid port and
//! journaled persistence in FRAM (fig. 9).
//!
//! Layout of persistent memory:
//!
//! ```text
//! FRAM+0            : u32 flag (0 → slot 0 active, 1 → slot 1 active)
//! FRAM+4            : state slot 0
//! FRAM+4+pad(SIZE)  : state slot 1
//! ```
//!
//! `store_state` writes the *inactive* slot, then flips the flag — a
//! single atomically-writable word — so a crash between any two cycles
//! leaves a consistent state (the old one before the flip, the new one
//! after). The flag is public metadata (its value equals the parity of
//! committed operations, derivable from the wire trace), so the
//! platform marks its FRAM word untainted; the state slots stay secret.

/// Pad a state size to a 4-byte boundary (slot stride in FRAM).
pub fn slot_stride(state_size: usize) -> usize {
    (state_size + 3) & !3
}

/// Offset of the journal flag within FRAM.
pub const FLAG_OFFSET: usize = 0;
/// Offset of slot 0 within FRAM.
pub const SLOT0_OFFSET: usize = 4;

/// Offset of slot 1 within FRAM.
pub fn slot1_offset(state_size: usize) -> usize {
    SLOT0_OFFSET + slot_stride(state_size)
}

/// The littlec system-software source, specialized to an application's
/// buffer sizes.
pub fn syssw_source(state_size: usize, command_size: usize, response_size: usize) -> String {
    let slot1 = 0x3000_0000u32 + slot1_offset(state_size) as u32;
    format!(
        r#"
// --- system software (generated for sizes S={state_size} C={command_size} R={response_size}) ---

u32 ss_read_byte() {{
    u32* status = (u32*)0x10000000;
    while (status[0] == 0) {{ }}
    u32* data = (u32*)0x10000004;
    return data[0];
}}

void ss_write_byte(u32 b) {{
    u32* status = (u32*)0x10000008;
    while (status[0] == 0) {{ }}
    u32* data = (u32*)0x1000000c;
    data[0] = b;
}}

void read_command(u8* cmd) {{
    for (u32 i = 0; i < {command_size}; i = i + 1) {{
        cmd[i] = (u8)ss_read_byte();
    }}
}}

void write_response(u8* resp) {{
    for (u32 i = 0; i < {response_size}; i = i + 1) {{
        ss_write_byte(resp[i]);
    }}
}}

void load_state(u8* state) {{
    u32* flag = (u32*)0x30000000;
    u8* src = (u8*)0x30000004;
    if (flag[0] != 0) {{
        src = (u8*){slot1};
    }}
    for (u32 i = 0; i < {state_size}; i = i + 1) {{
        state[i] = src[i];
    }}
}}

void store_state(u8* state) {{
    u32* flag = (u32*)0x30000000;
    u8* dst = (u8*){slot1};
    if (flag[0] != 0) {{
        dst = (u8*)0x30000004;
    }}
    for (u32 i = 0; i < {state_size}; i = i + 1) {{
        dst[i] = state[i];
    }}
    // Atomic commit point: flip the single flag word.
    flag[0] = 1 - flag[0];
}}

void hsm_main() {{
    u8 state[{state_size}];
    u8 cmd[{command_size}];
    u8 resp[{response_size}];
    while (1) {{
        read_command(cmd);
        load_state(state);
        handle(state, cmd, resp);
        store_state(state);
        write_response(resp);
    }}
}}
"#
    )
}

/// A deliberately *unsafe* persistence variant for the design ablation:
/// `store_state` writes the active slot in place, with no journal flip.
/// A crash mid-write leaves a torn state — exactly what fig. 9's
/// journaling exists to prevent. Used only by tests and benches.
pub fn naive_syssw_source(state_size: usize, command_size: usize, response_size: usize) -> String {
    let journaled = syssw_source(state_size, command_size, response_size);
    let naive_store = format!(
        r#"void store_state(u8* state) {{
    u32* flag = (u32*)0x30000000;
    u8* dst = (u8*)0x30000004;
    if (flag[0] != 0) {{
        dst = (u8*){slot1};
    }}
    for (u32 i = 0; i < {state_size}; i = i + 1) {{
        dst[i] = state[i];
    }}
}}"#,
        slot1 = 0x3000_0000u32 + slot1_offset(state_size) as u32,
    );
    // Replace the journaled store_state with the in-place one.
    let start = journaled.find("void store_state").expect("store_state present");
    let end = journaled[start..].find("\n}\n").expect("function end") + start + 3;
    format!("{}{}{}", &journaled[..start], naive_store, &journaled[end..])
}

/// The boot shim: set up the stack and enter the main loop. This is the
/// "startup code written in assembly to boot the processor and set up
/// the environment for executing C code" of §2.
pub const BOOT_ASM: &str = "
.text
_start:
    li sp, 0x2003ff00
    call hsm_main
_halt:
    j _halt
";

/// Build the initial FRAM image for a fresh device with the given
/// encoded initial state: flag = 0, both slots hold the state.
pub fn initial_fram(state: &[u8]) -> Vec<u8> {
    let stride = slot_stride(state.len());
    let mut img = vec![0u8; SLOT0_OFFSET + 2 * stride];
    img[SLOT0_OFFSET..SLOT0_OFFSET + state.len()].copy_from_slice(state);
    let s1 = slot1_offset(state.len());
    img[s1..s1 + state.len()].copy_from_slice(state);
    img
}

/// Read the active state out of an FRAM image (the refinement relation
/// of fig. 9, as a function).
pub fn active_state(fram: &[u8], state_size: usize) -> Vec<u8> {
    let flag = u32::from_le_bytes([fram[0], fram[1], fram[2], fram[3]]);
    let off = if flag == 0 { SLOT0_OFFSET } else { slot1_offset(state_size) };
    fram[off..off + state_size].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fram_layout_roundtrip() {
        let state = vec![7u8; 33];
        let img = initial_fram(&state);
        assert_eq!(active_state(&img, 33), state);
        assert_eq!(slot_stride(33), 36);
        assert_eq!(slot1_offset(33), 40);
    }

    #[test]
    fn active_state_follows_flag() {
        let mut img = initial_fram(&[1u8; 4]);
        img[slot1_offset(4)..slot1_offset(4) + 4].copy_from_slice(&[9; 4]);
        assert_eq!(active_state(&img, 4), vec![1; 4]);
        img[0] = 1; // flip flag
        assert_eq!(active_state(&img, 4), vec![9; 4]);
    }

    #[test]
    fn syssw_source_typechecks_with_a_handle() {
        let mut src = syssw_source(8, 4, 4);
        src.push_str("void handle(u8* s, u8* c, u8* r) { r[0] = (u8)(s[0] + c[0]); }");
        parfait_littlec::frontend(&src).unwrap();
    }
}
