//! The ECDSA certificate-signing HSM (paper fig. 4 and §7.1).

pub mod spec;

pub use spec::{EcdsaCodec, EcdsaCommand, EcdsaResponse, EcdsaSpec, EcdsaState};

/// Size of the encoded state: prf_key ‖ prf_counter_be ‖ sig_key.
pub const STATE_SIZE: usize = 72;
/// Size of an encoded command: tag ‖ 64-byte payload.
pub const COMMAND_SIZE: usize = 65;
/// Size of an encoded response: tag ‖ 64-byte payload.
pub const RESPONSE_SIZE: usize = 65;
