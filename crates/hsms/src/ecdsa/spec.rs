//! The application specification of the ECDSA-signing HSM.
//!
//! This is the Rust transcription of the paper's fig. 4 — the F\* `step`
//! function — together with the byte-level codec the Starling lockstep
//! proof uses (encode/decode of commands, responses, and state).
//! The whole observable behaviour of 2,300 lines of firmware and the
//! SoC beneath it refines this file.

use parfait::lockstep::Codec;
use parfait::StateMachine;
use parfait_crypto::{ecdsa_p256_sign, hmac_sha256};

use super::{COMMAND_SIZE, RESPONSE_SIZE, STATE_SIZE};

/// Spec-level state: `{ prf_key; prf_counter; sig_key }`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EcdsaState {
    /// HMAC key for the nonce PRF.
    pub prf_key: [u8; 32],
    /// Monotone nonce counter; saturates at `u64::MAX`.
    pub prf_counter: u64,
    /// ECDSA-P256 signing key (big-endian scalar).
    pub sig_key: [u8; 32],
}

/// Spec-level commands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EcdsaCommand {
    /// Configure the HSM with a PRF key and a signing key.
    Initialize {
        /// The PRF key.
        prf_key: [u8; 32],
        /// The signing key.
        sig_key: [u8; 32],
    },
    /// Sign a 32-byte pre-hashed message.
    Sign {
        /// The message (pre-hashed, the `NoHash` instantiation).
        msg: [u8; 32],
    },
    /// Read the public key corresponding to the signing key (safe to
    /// expose, unlike the signing key itself, which has no read-out
    /// command).
    GetPublicKey,
}

/// Spec-level responses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EcdsaResponse {
    /// Acknowledgement of `Initialize`.
    Initialized,
    /// Result of `Sign`: `None` when the counter is exhausted or the
    /// keys/nonce are out of range — indistinguishable by design.
    Signature(Option<[u8; 64]>),
    /// Result of `GetPublicKey`: the affine point `x ‖ y` (big-endian),
    /// or `None` when the signing key is out of range (uninitialized).
    PublicKey(Option<[u8; 64]>),
}

/// The ECDSA HSM specification machine (fig. 4).
///
/// There is no command to read the signing key or the PRF key back out,
/// and nonces are unique across operations: IPR against this machine is
/// the HSM's entire security statement.
#[derive(Clone, Copy, Debug, Default)]
pub struct EcdsaSpec;

impl StateMachine for EcdsaSpec {
    type State = EcdsaState;
    type Command = EcdsaCommand;
    type Response = EcdsaResponse;

    fn init(&self) -> EcdsaState {
        EcdsaState { prf_key: [0; 32], prf_counter: 0, sig_key: [0; 32] }
    }

    fn step(&self, st: &EcdsaState, cmd: &EcdsaCommand) -> (EcdsaState, EcdsaResponse) {
        match cmd {
            EcdsaCommand::Initialize { prf_key, sig_key } => (
                EcdsaState { prf_key: *prf_key, prf_counter: 0, sig_key: *sig_key },
                EcdsaResponse::Initialized,
            ),
            EcdsaCommand::Sign { msg } => {
                if st.prf_counter == u64::MAX {
                    return (st.clone(), EcdsaResponse::Signature(None));
                }
                let data = st.prf_counter.to_be_bytes();
                let k = hmac_sha256(&st.prf_key, &data);
                let sig = ecdsa_p256_sign(msg, &st.sig_key, &k).map(|s| s.to_bytes());
                (
                    EcdsaState { prf_counter: st.prf_counter + 1, ..st.clone() },
                    EcdsaResponse::Signature(sig),
                )
            }
            EcdsaCommand::GetPublicKey => {
                let q = parfait_crypto::ecdsa::public_key(&st.sig_key).map(|(x, y)| {
                    let mut out = [0u8; 64];
                    out[..32].copy_from_slice(&parfait_crypto::bignum::to_be_bytes(&x));
                    out[32..].copy_from_slice(&parfait_crypto::bignum::to_be_bytes(&y));
                    out
                });
                (st.clone(), EcdsaResponse::PublicKey(q))
            }
        }
    }
}

/// Byte-level encodings shared by the driver, the emulator, and the
/// Starling lockstep obligations.
#[derive(Clone, Copy, Debug, Default)]
pub struct EcdsaCodec;

impl Codec for EcdsaCodec {
    type Spec = EcdsaSpec;
    type CI = Vec<u8>;
    type RI = Vec<u8>;
    type SI = Vec<u8>;

    fn encode_command(&self, c: &EcdsaCommand) -> Vec<u8> {
        let mut out = vec![0u8; COMMAND_SIZE];
        match c {
            EcdsaCommand::Initialize { prf_key, sig_key } => {
                out[0] = 1;
                out[1..33].copy_from_slice(prf_key);
                out[33..65].copy_from_slice(sig_key);
            }
            EcdsaCommand::Sign { msg } => {
                out[0] = 2;
                out[1..33].copy_from_slice(msg);
            }
            EcdsaCommand::GetPublicKey => out[0] = 3,
        }
        out
    }

    fn decode_command(&self, c: &Vec<u8>) -> Option<EcdsaCommand> {
        if c.len() != COMMAND_SIZE {
            return None;
        }
        match c[0] {
            1 => {
                let mut prf_key = [0u8; 32];
                prf_key.copy_from_slice(&c[1..33]);
                let mut sig_key = [0u8; 32];
                sig_key.copy_from_slice(&c[33..65]);
                Some(EcdsaCommand::Initialize { prf_key, sig_key })
            }
            2 => {
                // Trailing payload bytes are ignored (lenient decode):
                // several low-level inputs map to the same command.
                let mut msg = [0u8; 32];
                msg.copy_from_slice(&c[1..33]);
                Some(EcdsaCommand::Sign { msg })
            }
            3 => Some(EcdsaCommand::GetPublicKey),
            _ => None,
        }
    }

    fn encode_response(&self, r: Option<&EcdsaResponse>) -> Vec<u8> {
        let mut out = vec![0u8; RESPONSE_SIZE];
        match r {
            Some(EcdsaResponse::Initialized) => out[0] = 1,
            Some(EcdsaResponse::Signature(Some(sig))) => {
                out[0] = 2;
                out[1..65].copy_from_slice(sig);
            }
            Some(EcdsaResponse::Signature(None)) => out[0] = 3,
            Some(EcdsaResponse::PublicKey(Some(q))) => {
                out[0] = 4;
                out[1..65].copy_from_slice(q);
            }
            Some(EcdsaResponse::PublicKey(None)) => out[0] = 5,
            None => out[0] = 0xFF,
        }
        out
    }

    fn decode_response(&self, r: &Vec<u8>) -> EcdsaResponse {
        match r.first() {
            Some(1) => EcdsaResponse::Initialized,
            Some(2) => {
                let mut sig = [0u8; 64];
                sig.copy_from_slice(&r[1..65]);
                EcdsaResponse::Signature(Some(sig))
            }
            Some(4) => {
                let mut q = [0u8; 64];
                q.copy_from_slice(&r[1..65]);
                EcdsaResponse::PublicKey(Some(q))
            }
            Some(5) => EcdsaResponse::PublicKey(None),
            _ => EcdsaResponse::Signature(None),
        }
    }

    fn encode_state(&self, s: &EcdsaState) -> Vec<u8> {
        let mut out = vec![0u8; STATE_SIZE];
        out[..32].copy_from_slice(&s.prf_key);
        out[32..40].copy_from_slice(&s.prf_counter.to_be_bytes());
        out[40..72].copy_from_slice(&s.sig_key);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parfait_crypto::ecdsa::public_key;
    use parfait_crypto::ecdsa_p256_verify;
    use parfait_crypto::Signature;

    fn b32(seed: u8) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, b) in out.iter_mut().enumerate() {
            *b = seed.wrapping_add(i as u8).wrapping_mul(73) ^ 0x3C;
        }
        out
    }

    #[test]
    fn spec_signs_verifiably() {
        let spec = EcdsaSpec;
        let st = spec.init();
        let (st, r) =
            spec.step(&st, &EcdsaCommand::Initialize { prf_key: b32(1), sig_key: b32(2) });
        assert_eq!(r, EcdsaResponse::Initialized);
        let msg = b32(3);
        let (st2, r) = spec.step(&st, &EcdsaCommand::Sign { msg });
        let sig = match r {
            EcdsaResponse::Signature(Some(s)) => s,
            other => panic!("expected a signature, got {other:?}"),
        };
        assert_eq!(st2.prf_counter, 1);
        let pk = public_key(&b32(2)).unwrap();
        assert!(ecdsa_p256_verify(&msg, &pk, &Signature::from_bytes(&sig).unwrap()));
    }

    #[test]
    fn nonces_are_unique_across_signs() {
        let spec = EcdsaSpec;
        let (st, _) =
            spec.step(&spec.init(), &EcdsaCommand::Initialize { prf_key: b32(1), sig_key: b32(2) });
        let msg = b32(3);
        let (st2, r1) = spec.step(&st, &EcdsaCommand::Sign { msg });
        let (_, r2) = spec.step(&st2, &EcdsaCommand::Sign { msg });
        assert_ne!(r1, r2, "same message must get different nonces");
    }

    #[test]
    fn uninitialized_hsm_returns_none() {
        let spec = EcdsaSpec;
        let (_, r) = spec.step(&spec.init(), &EcdsaCommand::Sign { msg: b32(3) });
        assert_eq!(r, EcdsaResponse::Signature(None));
    }

    #[test]
    fn counter_saturates() {
        let spec = EcdsaSpec;
        let st = EcdsaState { prf_key: b32(1), prf_counter: u64::MAX, sig_key: b32(2) };
        let (st2, r) = spec.step(&st, &EcdsaCommand::Sign { msg: b32(3) });
        assert_eq!(r, EcdsaResponse::Signature(None));
        assert_eq!(st2.prf_counter, u64::MAX, "no increment at saturation");
    }

    #[test]
    fn get_public_key_matches_library() {
        let spec = EcdsaSpec;
        let (st, _) =
            spec.step(&spec.init(), &EcdsaCommand::Initialize { prf_key: b32(1), sig_key: b32(2) });
        let (st2, r) = spec.step(&st, &EcdsaCommand::GetPublicKey);
        assert_eq!(st, st2, "reading the public key must not change state");
        let q = match r {
            EcdsaResponse::PublicKey(Some(q)) => q,
            other => panic!("expected a public key, got {other:?}"),
        };
        let (x, y) = parfait_crypto::ecdsa::public_key(&b32(2)).unwrap();
        assert_eq!(&q[..32], &parfait_crypto::bignum::to_be_bytes(&x));
        assert_eq!(&q[32..], &parfait_crypto::bignum::to_be_bytes(&y));
        // Uninitialized device: key out of range.
        let (_, r) = spec.step(&spec.init(), &EcdsaCommand::GetPublicKey);
        assert_eq!(r, EcdsaResponse::PublicKey(None));
    }

    #[test]
    fn codec_roundtrips() {
        let codec = EcdsaCodec;
        let cmds = [
            EcdsaCommand::Initialize { prf_key: b32(1), sig_key: b32(2) },
            EcdsaCommand::Sign { msg: b32(3) },
            EcdsaCommand::GetPublicKey,
        ];
        let resps = [
            EcdsaResponse::Initialized,
            EcdsaResponse::Signature(Some([7u8; 64])),
            EcdsaResponse::Signature(None),
            EcdsaResponse::PublicKey(Some([9u8; 64])),
            EcdsaResponse::PublicKey(None),
        ];
        parfait::lockstep::check_codec_inverse(&codec, &cmds, &resps).unwrap();
    }
}
