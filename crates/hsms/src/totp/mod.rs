//! A third HSM application: HOTP one-time-password generation
//! (RFC 4226 dynamic truncation over HMAC-SHA-256).
//!
//! The paper's §8.1 measures the marginal cost of a *new* application
//! once the frameworks exist (the password hasher took two developer
//! hours). This app reproduces that exercise: it reuses the
//! HMAC-SHA-256 littlec firmware of the ECDSA signer unchanged, adds a
//! ~50-line handle, a ~60-line spec, and verifies on both platforms
//! with zero platform-side changes.
//!
//! RFC 4226's "dynamic truncation" indexes the MAC by its own low
//! nibble — a secret-dependent memory index that the taint tracker
//! would (correctly!) flag. The handle instead scans all 16 candidate
//! windows and selects with masks, the same §7.1 style used by the
//! ECDSA signer.

pub mod spec;

pub use spec::{TotpCodec, TotpCommand, TotpResponse, TotpSpec, TotpState};

/// Size of the encoded state: the 32-byte seed.
pub const STATE_SIZE: usize = 32;
/// Size of an encoded command: tag ‖ 32-byte payload.
pub const COMMAND_SIZE: usize = 33;
/// Size of an encoded response: tag ‖ 32-byte payload (zero padded).
pub const RESPONSE_SIZE: usize = 33;

/// The littlec `handle` for the OTP HSM.
pub const TOTP_HANDLE_LC: &str = r#"
// The one-time-password HSM's handle function.
//
// State (32 bytes): seed.
// Command (33 bytes): tag | payload[32].
//   tag 1 = Initialize(seed[32])
//   tag 2 = Code(counter_be[8] || ignored[24])
// Response (33 bytes): tag | payload[32].
//   1 | zeros               = Initialized
//   2 | code_be[4] | zeros  = Code (6-digit HOTP value)
//   0xff | zeros            = invalid command

void handle(u8* state, u8* cmd, u8* resp) {
    for (u32 i = 0; i < 33; i = i + 1) {
        resp[i] = 0;
    }
    u32 tag = cmd[0];
    if (tag == 1) {
        for (u32 i = 0; i < 32; i = i + 1) {
            state[i] = cmd[1 + i];
        }
        resp[0] = 1;
        return;
    }
    if (tag == 2) {
        u8 mac[32];
        hmac_sha256(mac, state, 32, cmd + 1, 8);
        // Dynamic truncation, constant time: the offset nibble is
        // secret-derived, so scan every window and select with masks
        // instead of indexing by it.
        u32 off = mac[31] & 15;
        u32 bin = 0;
        for (u32 o = 0; o < 16; o = o + 1) {
            u32 cand = ((mac[o] & 0x7f) << 24)
                     | (mac[o + 1] << 16)
                     | (mac[o + 2] << 8)
                     | mac[o + 3];
            u32 m = 0 - (o == off);
            bin = bin | (cand & m);
        }
        // bin % 1000000 without the divider (its latency is
        // data-dependent on this hardware): conditional-subtract chain.
        for (u32 k = 0; k < 12; k = k + 1) {
            u32 m2 = 1000000 << (11 - k);
            u32 ge = bin >= m2;
            u32 mask2 = 0 - ge;
            bin = bin - (m2 & mask2);
        }
        u32 code = bin;
        resp[0] = 2;
        resp[1] = (u8)(code >> 24);
        resp[2] = (u8)(code >> 16);
        resp[3] = (u8)(code >> 8);
        resp[4] = (u8)code;
        return;
    }
    resp[0] = 0xff;
}
"#;

/// The complete OTP application program (HMAC-SHA-256 + handle).
pub fn totp_app_source() -> String {
    let mut s = String::new();
    s.push_str(crate::firmware::SHA256_LC);
    s.push_str(TOTP_HANDLE_LC);
    s
}
