//! The application specification of the one-time-password HSM.

use parfait::lockstep::Codec;
use parfait::StateMachine;
use parfait_crypto::hmac_sha256;

use super::{COMMAND_SIZE, RESPONSE_SIZE};

/// Spec-level state: the OTP seed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TotpState {
    /// The shared secret seed.
    pub seed: [u8; 32],
}

/// Spec-level commands.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TotpCommand {
    /// Install a new seed.
    Initialize {
        /// The new seed.
        seed: [u8; 32],
    },
    /// Produce the HOTP code for a counter value (the host derives the
    /// counter from time for TOTP).
    Code {
        /// The moving factor.
        counter: u64,
    },
}

/// Spec-level responses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TotpResponse {
    /// Acknowledgement of `Initialize`.
    Initialized,
    /// A 6-digit one-time password (0..=999999).
    Code(u32),
}

/// The OTP specification machine: RFC 4226 HOTP with HMAC-SHA-256.
#[derive(Clone, Copy, Debug, Default)]
pub struct TotpSpec;

/// RFC 4226 §5.3 over HMAC-SHA-256, on the spec side.
pub fn hotp_sha256(seed: &[u8; 32], counter: u64) -> u32 {
    let mac = hmac_sha256(seed, &counter.to_be_bytes());
    let off = (mac[31] & 15) as usize;
    let bin = ((mac[off] as u32 & 0x7F) << 24)
        | ((mac[off + 1] as u32) << 16)
        | ((mac[off + 2] as u32) << 8)
        | mac[off + 3] as u32;
    bin % 1_000_000
}

impl StateMachine for TotpSpec {
    type State = TotpState;
    type Command = TotpCommand;
    type Response = TotpResponse;

    fn init(&self) -> TotpState {
        TotpState { seed: [0; 32] }
    }

    fn step(&self, st: &TotpState, cmd: &TotpCommand) -> (TotpState, TotpResponse) {
        match cmd {
            TotpCommand::Initialize { seed } => {
                (TotpState { seed: *seed }, TotpResponse::Initialized)
            }
            TotpCommand::Code { counter } => {
                (st.clone(), TotpResponse::Code(hotp_sha256(&st.seed, *counter)))
            }
        }
    }
}

/// Byte-level encodings for the OTP HSM.
#[derive(Clone, Copy, Debug, Default)]
pub struct TotpCodec;

impl Codec for TotpCodec {
    type Spec = TotpSpec;
    type CI = Vec<u8>;
    type RI = Vec<u8>;
    type SI = Vec<u8>;

    fn encode_command(&self, c: &TotpCommand) -> Vec<u8> {
        let mut out = vec![0u8; COMMAND_SIZE];
        match c {
            TotpCommand::Initialize { seed } => {
                out[0] = 1;
                out[1..33].copy_from_slice(seed);
            }
            TotpCommand::Code { counter } => {
                out[0] = 2;
                out[1..9].copy_from_slice(&counter.to_be_bytes());
            }
        }
        out
    }

    fn decode_command(&self, c: &Vec<u8>) -> Option<TotpCommand> {
        if c.len() != COMMAND_SIZE {
            return None;
        }
        match c[0] {
            1 => {
                let mut seed = [0u8; 32];
                seed.copy_from_slice(&c[1..33]);
                Some(TotpCommand::Initialize { seed })
            }
            2 => {
                // Trailing payload is ignored (lenient decode).
                let mut ctr = [0u8; 8];
                ctr.copy_from_slice(&c[1..9]);
                Some(TotpCommand::Code { counter: u64::from_be_bytes(ctr) })
            }
            _ => None,
        }
    }

    fn encode_response(&self, r: Option<&TotpResponse>) -> Vec<u8> {
        let mut out = vec![0u8; RESPONSE_SIZE];
        match r {
            Some(TotpResponse::Initialized) => out[0] = 1,
            Some(TotpResponse::Code(code)) => {
                out[0] = 2;
                out[1..5].copy_from_slice(&code.to_be_bytes());
            }
            None => out[0] = 0xFF,
        }
        out
    }

    fn decode_response(&self, r: &Vec<u8>) -> TotpResponse {
        match r.first() {
            Some(2) => TotpResponse::Code(u32::from_be_bytes([r[1], r[2], r[3], r[4]])),
            _ => TotpResponse::Initialized,
        }
    }

    fn encode_state(&self, s: &TotpState) -> Vec<u8> {
        s.seed.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hotp_is_six_digits() {
        for c in 0..50u64 {
            let code = hotp_sha256(&[7; 32], c);
            assert!(code < 1_000_000, "counter {c}: {code}");
        }
    }

    #[test]
    fn codes_vary_with_counter_and_seed() {
        let a = hotp_sha256(&[1; 32], 0);
        let b = hotp_sha256(&[1; 32], 1);
        let c = hotp_sha256(&[2; 32], 0);
        assert!(a != b || a != c, "codes should vary");
    }

    #[test]
    fn codec_roundtrips() {
        let codec = TotpCodec;
        parfait::lockstep::check_codec_inverse(
            &codec,
            &[
                TotpCommand::Initialize { seed: [3; 32] },
                TotpCommand::Code { counter: 0xDEAD_BEEF_0102_0304 },
            ],
            &[TotpResponse::Initialized, TotpResponse::Code(123456)],
        )
        .unwrap();
    }
}
