//! Specification-level information-flow census.
//!
//! IPR proves the implementation leaks *no more than the specification*
//! — but the specification itself may leak (paper §9: "the specification
//! may have bugs that allow for information leakage ... noninterference
//! ... approaches are complementary to Parfait"). This module provides
//! the executable complement: a census of which commands' responses
//! actually *depend* on the machine state, computed by running each
//! command against many states and comparing responses.
//!
//! A command that the developer believes is state-independent (error
//! responses, acknowledgements) but whose response varies across states
//! is a spec-level leak — exactly the class IPR cannot catch.

use crate::machine::StateMachine;

/// The census result for one command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Flow {
    /// The response was identical across every sampled state.
    StateIndependent,
    /// The response varied across states (it reveals state — which may
    /// be by design, e.g. `Hash` revealing a digest).
    StateDependent {
        /// How many distinct responses were observed.
        distinct_responses: usize,
    },
}

/// One row of the census.
#[derive(Clone, Debug)]
pub struct CensusEntry<C> {
    /// The command examined.
    pub command: C,
    /// Whether (and how much) its response depends on the state.
    pub flow: Flow,
}

/// Run the census: for each command, step it from every sampled state
/// and classify the response's dependence on the state.
pub fn census<M>(
    machine: &M,
    states: &[M::State],
    commands: &[M::Command],
) -> Vec<CensusEntry<M::Command>>
where
    M: StateMachine,
    M::Command: Clone,
{
    let mut out = Vec::with_capacity(commands.len());
    for cmd in commands {
        let mut responses: Vec<M::Response> = Vec::new();
        for st in states {
            let (_, r) = machine.step(st, cmd);
            if !responses.contains(&r) {
                responses.push(r);
            }
        }
        let flow = if responses.len() <= 1 {
            Flow::StateIndependent
        } else {
            Flow::StateDependent { distinct_responses: responses.len() }
        };
        out.push(CensusEntry { command: cmd.clone(), flow });
    }
    out
}

/// Assert that the given commands are state-independent (the developer's
/// declared non-leaking command set); returns the offending commands.
pub fn check_state_independent<M>(
    machine: &M,
    states: &[M::State],
    commands: &[M::Command],
) -> Result<(), Vec<M::Command>>
where
    M: StateMachine,
    M::Command: Clone,
{
    let bad: Vec<M::Command> = census(machine, states, commands)
        .into_iter()
        .filter(|e| matches!(e.flow, Flow::StateDependent { .. }))
        .map(|e| e.command)
        .collect();
    if bad.is_empty() {
        Ok(())
    } else {
        Err(bad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::examples::{counter_spec, CounterCmd};

    #[test]
    fn census_classifies_counter_commands() {
        let m = counter_spec();
        let states = vec![0u32, 1, 41, u32::MAX];
        let entries = census(&m, &states, &[CounterCmd::Add(5), CounterCmd::Get]);
        // Add's response is always 0: state-independent.
        assert_eq!(entries[0].flow, Flow::StateIndependent);
        // Get reveals the counter: state-dependent by design.
        assert_eq!(entries[1].flow, Flow::StateDependent { distinct_responses: 4 });
    }

    #[test]
    fn check_flags_only_dependent_commands() {
        let m = counter_spec();
        let states = vec![0u32, 7];
        check_state_independent(&m, &states, &[CounterCmd::Add(1)]).unwrap();
        let bad = check_state_independent(&m, &states, &[CounterCmd::Get]).unwrap_err();
        assert_eq!(bad, vec![CounterCmd::Get]);
    }

    #[test]
    fn single_state_is_trivially_independent() {
        let m = counter_spec();
        let entries = census(&m, &[9u32], &[CounterCmd::Get]);
        assert_eq!(entries[0].flow, Flow::StateIndependent);
    }
}
