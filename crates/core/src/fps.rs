//! IPR by functional-physical simulation (paper §3, from Knox).
//!
//! Functional-physical simulation generalizes forward simulation to the
//! IPR setting: a *refinement relation* connects spec states to
//! implementation states, and a one-spec-step-to-many-impl-steps
//! correspondence (the driver's program) preserves it. The existence of
//! such a relation, together with an emulator whose behaviour matches
//! the implementation on arbitrary (adversarial) low-level operations,
//! implies IPR.
//!
//! This module provides the *functional* half as a generic, executable
//! obligation over whole-command machines: [`check_forward_simulation`].
//! The *physical* half — adversarial wire-level operations, timing, and
//! the emulator template for circuits — is instantiated by
//! `parfait-knox2`, which checks cycle-exact trace equivalence between
//! the real SoC and the emulator's SoC instance.

use crate::machine::StateMachine;
use crate::world::Driver;

/// A violated simulation obligation.
#[derive(Clone, Debug)]
pub struct SimulationViolation {
    /// Description of the failing case.
    pub detail: String,
}

impl std::fmt::Display for SimulationViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "functional-physical simulation violated: {}", self.detail)
    }
}

/// Check the forward-simulation obligation: for every related pair of
/// states `(s_spec, s_impl)` (as produced by `project`), running the
/// driver's program for a command on the implementation yields the same
/// response as the spec step and re-establishes the relation.
///
/// * `related` — the developer-supplied refinement relation (fig. 9);
/// * `commands` — spec-level commands to exercise;
/// * `states` — spec states paired with implementation states that
///   `related` accepts (reachable-state sampling is the caller's job).
pub fn check_forward_simulation<MS, MI, D>(
    spec: &MS,
    imp: &MI,
    driver: &D,
    related: &dyn Fn(&MS::State, &MI::State) -> bool,
    states: &[(MS::State, MI::State)],
    commands: &[MS::Command],
) -> Result<(), SimulationViolation>
where
    MS: StateMachine,
    MI: StateMachine,
    D: Driver<MS::Command, MS::Response, MI::Command, MI::Response>,
{
    for (ss, si) in states {
        if !related(ss, si) {
            return Err(SimulationViolation {
                detail: "initial state pair not related by R".into(),
            });
        }
        for cmd in commands {
            let (ss2, want) = spec.step(ss, cmd);
            let mut cur = si.clone();
            let mut io = |ci: &MI::Command| {
                let (s, r) = imp.step(&cur, ci);
                cur = s;
                r
            };
            let got = driver.run(cmd, &mut io);
            if got != want {
                return Err(SimulationViolation {
                    detail: format!("driver produced {got:?}, spec produced {want:?}"),
                });
            }
            if !related(&ss2, &cur) {
                return Err(SimulationViolation {
                    detail: "post-states not related by R".to_string(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::examples::*;
    use crate::machine::FnMachine;
    use crate::world::Driver;

    /// A "journaled" counter implementation in the shape of fig. 9: the
    /// state is (flag, slot0, slot1); the active slot is selected by the
    /// flag, and each update writes the inactive slot then flips the
    /// flag (two low-level commands per spec command).
    #[derive(Clone, Debug, PartialEq)]
    struct J {
        flag: bool,
        slots: [u32; 2],
    }

    #[derive(Clone, Debug)]
    enum JCmd {
        WriteInactive(u32),
        FlipFlag,
        Read,
    }

    fn journal_machine() -> FnMachine<J, JCmd, u32> {
        FnMachine {
            init: J { flag: false, slots: [0, 0] },
            step: |s, c| match c {
                JCmd::WriteInactive(v) => {
                    let mut s2 = s.clone();
                    s2.slots[!s.flag as usize % 2] = *v;
                    // Inactive slot is the one NOT selected by flag.
                    s2.slots[if s.flag { 0 } else { 1 }] = *v;
                    (s2, 0)
                }
                JCmd::FlipFlag => {
                    let mut s2 = s.clone();
                    s2.flag = !s.flag;
                    (s2, 0)
                }
                JCmd::Read => (s.clone(), s.slots[s.flag as usize]),
            },
        }
    }

    struct JournalDriver;

    impl Driver<CounterCmd, u32, JCmd, u32> for JournalDriver {
        fn run(&self, cmd: &CounterCmd, io: &mut dyn FnMut(&JCmd) -> u32) -> u32 {
            match cmd {
                CounterCmd::Add(n) => {
                    let cur = io(&JCmd::Read);
                    io(&JCmd::WriteInactive(cur.wrapping_add(*n)));
                    io(&JCmd::FlipFlag);
                    0
                }
                CounterCmd::Get => io(&JCmd::Read),
            }
        }
    }

    fn related(spec: &u32, imp: &J) -> bool {
        imp.slots[imp.flag as usize] == *spec
    }

    #[test]
    fn journal_implementation_simulates_counter() {
        let spec = counter_spec();
        let imp = journal_machine();
        let states = vec![
            (0u32, J { flag: false, slots: [0, 0] }),
            (7, J { flag: true, slots: [3, 7] }),
            (u32::MAX, J { flag: false, slots: [u32::MAX, 1] }),
        ];
        check_forward_simulation(
            &spec,
            &imp,
            &JournalDriver,
            &(|s: &u32, i: &J| related(s, i)),
            &states,
            &[CounterCmd::Add(1), CounterCmd::Add(100), CounterCmd::Get],
        )
        .unwrap();
    }

    #[test]
    fn wrong_relation_is_caught() {
        let spec = counter_spec();
        let imp = journal_machine();
        // Claim the *inactive* slot holds the value: fails immediately.
        let wrong = |s: &u32, i: &J| {
            i.slots[!i.flag as usize % 2] == *s && i.slots[if i.flag { 0 } else { 1 }] == *s
        };
        let states = vec![(7u32, J { flag: true, slots: [3, 7] })];
        let err = check_forward_simulation(
            &spec,
            &imp,
            &JournalDriver,
            &wrong,
            &states,
            &[CounterCmd::Get],
        );
        assert!(err.is_err());
    }

    #[test]
    fn buggy_driver_is_caught() {
        struct BadDriver;
        impl Driver<CounterCmd, u32, JCmd, u32> for BadDriver {
            fn run(&self, cmd: &CounterCmd, io: &mut dyn FnMut(&JCmd) -> u32) -> u32 {
                match cmd {
                    CounterCmd::Add(n) => {
                        let cur = io(&JCmd::Read);
                        io(&JCmd::WriteInactive(cur.wrapping_add(*n)));
                        // Forgets to flip the flag: commit never happens.
                        0
                    }
                    CounterCmd::Get => io(&JCmd::Read),
                }
            }
        }
        let spec = counter_spec();
        let imp = journal_machine();
        let states = vec![(0u32, J { flag: false, slots: [0, 0] })];
        let err = check_forward_simulation(
            &spec,
            &imp,
            &BadDriver,
            &(|s: &u32, i: &J| related(s, i)),
            &states,
            &[CounterCmd::Add(5)],
        );
        assert!(err.is_err());
    }
}
