//! IPR by equivalence (paper §3).
//!
//! When two state machines have identical input/output types and are
//! observationally equivalent — the situation produced by a verified (or
//! translation-validated) compiler between the Low\*, C, and Asm levels
//! — IPR holds with the *identity* driver and emulator. This module
//! provides those identity constructions and an executable equivalence
//! checker.

use crate::machine::StateMachine;
use crate::world::{Driver, Emulator};

/// The identity driver: a spec-level command *is* an impl-level command.
pub struct IdentityDriver;

impl<C: Clone, R> Driver<C, R, C, R> for IdentityDriver {
    fn run(&self, cmd: &C, io: &mut dyn FnMut(&C) -> R) -> R {
        io(cmd)
    }
}

/// The identity emulator: forward every command to the spec.
pub struct IdentityEmulator;

impl<C, R> Emulator<C, R, C, R> for IdentityEmulator {
    fn reset(&mut self) {}

    fn on_command(&mut self, cmd: &C, spec: &mut dyn FnMut(&C) -> R) -> R {
        spec(cmd)
    }
}

/// A witnessed inequivalence between two machines.
#[derive(Clone, Debug)]
pub struct Inequivalence<R> {
    /// Index of the command sequence that distinguished them.
    pub sequence: usize,
    /// Index of the diverging command within the sequence.
    pub step: usize,
    /// Response of the first machine.
    pub left: R,
    /// Response of the second machine.
    pub right: R,
}

/// Check observational equivalence of two machines with identical
/// command/response types over the given command sequences.
pub fn check_equivalence<M1, M2>(
    m1: &M1,
    m2: &M2,
    sequences: &[Vec<M1::Command>],
) -> Result<(), Inequivalence<M1::Response>>
where
    M1: StateMachine,
    M2: StateMachine<Command = M1::Command, Response = M1::Response>,
{
    for (si, seq) in sequences.iter().enumerate() {
        let r1 = m1.run(seq);
        let r2 = m2.run(seq);
        for (i, (a, b)) in r1.iter().zip(r2.iter()).enumerate() {
            if a != b {
                return Err(Inequivalence {
                    sequence: si,
                    step: i,
                    left: a.clone(),
                    right: b.clone(),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::examples::*;
    use crate::world::{check_ipr, Op};

    #[test]
    fn equivalent_machines_pass() {
        let a = counter_bytes();
        let b = counter_bytes();
        let seqs = vec![
            vec![vec![1, 5, 0, 0, 0], vec![2, 0, 0, 0, 0]],
            vec![vec![9, 9, 9, 9, 9], vec![2, 0, 0, 0, 0]],
        ];
        check_equivalence(&a, &b, &seqs).unwrap();
    }

    #[test]
    fn inequivalent_machines_caught() {
        let a = counter_bytes();
        let b = counter_bytes_leaky();
        let seqs = vec![vec![vec![1, 5, 0, 0, 0], vec![0xAB]]];
        let err = check_equivalence(&a, &b, &seqs).unwrap_err();
        assert_eq!(err.step, 1);
    }

    #[test]
    fn equivalence_implies_ipr_via_identity() {
        // Two equal machines related by the identity driver/emulator pass
        // the full two-world check, including adversarial (impl-level)
        // operations.
        let a = counter_bytes();
        let b = counter_bytes();
        let ops: Vec<Op<Vec<u8>, Vec<u8>>> = vec![
            Op::Spec(vec![1, 3, 0, 0, 0]),
            Op::Impl(vec![2, 0, 0, 0, 0]),
            Op::Impl(vec![0xFF; 5]),
            Op::Spec(vec![2, 0, 0, 0, 0]),
        ];
        check_ipr(&a, &b, &IdentityDriver, &mut IdentityEmulator, &ops).unwrap();
    }
}
