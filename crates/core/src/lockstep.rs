//! IPR by lockstep (paper §3 and fig. 6).
//!
//! Lockstep applies when one step of the implementation corresponds to
//! one step of the specification, differing only in input/output
//! encodings. The developer supplies a [`Codec`] (encode/decode
//! functions and a state encoding); the driver and emulator are then
//! *derived* — the developer never writes an emulator at this level —
//! and two executable obligations imply IPR:
//!
//! 1. **Codec inversion**: `decode_command ∘ encode_command = Some` and
//!    `decode_response ∘ encode_response ∘ Some = id`;
//! 2. **Lockstep simulation** (fig. 6): stepping the implementation on a
//!    decodable input mirrors the spec step through `encode_state` /
//!    `encode_response` (the `Some` case), and an undecodable input
//!    leaves the state unchanged and returns the canonical error
//!    response (the `None` case).

use crate::machine::StateMachine;
use crate::world::{Driver, Emulator};

/// Encode/decode functions relating a spec machine to a byte-level
/// implementation machine with command type `CI`, response type `RI`,
/// and state type `SI`.
pub trait Codec {
    /// The specification machine type.
    type Spec: StateMachine;
    /// Implementation-level command type.
    type CI;
    /// Implementation-level response type.
    type RI;
    /// Implementation-level state type.
    type SI;

    /// Encode a spec command for the implementation (driver side).
    fn encode_command(&self, c: &<Self::Spec as StateMachine>::Command) -> Self::CI;
    /// Decode an implementation command (emulator side); `None` marks
    /// inputs that correspond to no spec command.
    fn decode_command(&self, c: &Self::CI) -> Option<<Self::Spec as StateMachine>::Command>;
    /// Encode a spec response (or the error marker `None`).
    fn encode_response(&self, r: Option<&<Self::Spec as StateMachine>::Response>) -> Self::RI;
    /// Decode an implementation response (driver side).
    fn decode_response(&self, r: &Self::RI) -> <Self::Spec as StateMachine>::Response;
    /// Encode a spec state as an implementation state (the refinement
    /// relation `R` of fig. 6, given functionally as in fig. 7).
    fn encode_state(&self, s: &<Self::Spec as StateMachine>::State) -> Self::SI;
}

/// The driver derived from a codec: encode, one I/O step, decode.
pub struct LockstepDriver<'c, C: ?Sized>(pub &'c C);

impl<C>
    Driver<<C::Spec as StateMachine>::Command, <C::Spec as StateMachine>::Response, C::CI, C::RI>
    for LockstepDriver<'_, C>
where
    C: Codec + ?Sized,
{
    fn run(
        &self,
        cmd: &<C::Spec as StateMachine>::Command,
        io: &mut dyn FnMut(&C::CI) -> C::RI,
    ) -> <C::Spec as StateMachine>::Response {
        let ci = self.0.encode_command(cmd);
        let ri = io(&ci);
        self.0.decode_response(&ri)
    }
}

/// The emulator implicitly constructed by the lockstep strategy.
pub struct LockstepEmulator<'c, C: ?Sized>(pub &'c C);

impl<C>
    Emulator<<C::Spec as StateMachine>::Command, <C::Spec as StateMachine>::Response, C::CI, C::RI>
    for LockstepEmulator<'_, C>
where
    C: Codec + ?Sized,
{
    fn reset(&mut self) {}

    fn on_command(
        &mut self,
        cmd: &C::CI,
        spec: &mut dyn FnMut(
            &<C::Spec as StateMachine>::Command,
        ) -> <C::Spec as StateMachine>::Response,
    ) -> C::RI {
        match self.0.decode_command(cmd) {
            Some(cs) => {
                let rs = spec(&cs);
                self.0.encode_response(Some(&rs))
            }
            None => self.0.encode_response(None),
        }
    }
}

/// A violated lockstep obligation.
#[derive(Clone, Debug)]
pub struct LockstepViolation {
    /// Which obligation failed.
    pub obligation: &'static str,
    /// Description of the failing case.
    pub detail: String,
}

impl std::fmt::Display for LockstepViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lockstep obligation `{}` violated: {}", self.obligation, self.detail)
    }
}

/// Check codec inversion on sample commands and responses.
pub fn check_codec_inverse<C>(
    codec: &C,
    commands: &[<C::Spec as StateMachine>::Command],
    responses: &[<C::Spec as StateMachine>::Response],
) -> Result<(), LockstepViolation>
where
    C: Codec,
    <C::Spec as StateMachine>::Command: PartialEq + std::fmt::Debug,
{
    for c in commands {
        let round = codec.decode_command(&codec.encode_command(c));
        match round {
            Some(ref c2) if c2 == c => {}
            other => {
                return Err(LockstepViolation {
                    obligation: "decode_command ∘ encode_command = Some",
                    detail: format!("{c:?} round-tripped to {other:?}"),
                })
            }
        }
    }
    for r in responses {
        let round = codec.decode_response(&codec.encode_response(Some(r)));
        if &round != r {
            return Err(LockstepViolation {
                obligation: "decode_response ∘ encode_response = id",
                detail: format!("{r:?} round-tripped to {round:?}"),
            });
        }
    }
    Ok(())
}

/// Check the lockstep simulation property (both cases of fig. 6) for
/// every given spec state against every given implementation input.
///
/// The implementation machine must have `SI` as its state type and be
/// deterministic; `states` should cover the reachable spec states of
/// interest and `inputs` should mix encodings of valid commands with
/// adversarial garbage.
pub fn check_lockstep_simulation<MI, C>(
    codec: &C,
    spec: &C::Spec,
    imp: &MI,
    states: &[<C::Spec as StateMachine>::State],
    inputs: &[MI::Command],
) -> Result<(), LockstepViolation>
where
    MI: StateMachine,
    MI::State: PartialEq + std::fmt::Debug,
    MI::Response: PartialEq + std::fmt::Debug,
    C: Codec<CI = MI::Command, RI = MI::Response, SI = MI::State>,
{
    for s2 in states {
        let s1 = codec.encode_state(s2);
        for i1 in inputs {
            let (s1p, o1) = imp.step(&s1, i1);
            match codec.decode_command(i1) {
                Some(i2) => {
                    // fig. 6a: the spec must step to a related state with
                    // a response whose encoding matches.
                    let (s2p, o2) = spec.step(s2, &i2);
                    let want_state = codec.encode_state(&s2p);
                    if s1p != want_state {
                        return Err(LockstepViolation {
                            obligation: "lockstep simulation (Some): state",
                            detail: format!("impl state {s1p:?} != encode_state {want_state:?}"),
                        });
                    }
                    let want_resp = codec.encode_response(Some(&o2));
                    if o1 != want_resp {
                        return Err(LockstepViolation {
                            obligation: "lockstep simulation (Some): response",
                            detail: format!("impl response {o1:?} != {want_resp:?}"),
                        });
                    }
                }
                None => {
                    // fig. 6b: state unchanged, canonical error response.
                    if s1p != s1 {
                        return Err(LockstepViolation {
                            obligation: "lockstep simulation (None): state unchanged",
                            detail: format!("invalid input mutated state: {s1:?} -> {s1p:?}"),
                        });
                    }
                    let want = codec.encode_response(None);
                    if o1 != want {
                        return Err(LockstepViolation {
                            obligation: "lockstep simulation (None): deterministic error",
                            detail: format!(
                                "impl response {o1:?} != encode_response(None) {want:?}"
                            ),
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::examples::*;
    use crate::world::{check_ipr, Op};

    struct CounterCodec;

    impl Codec for CounterCodec {
        type Spec = crate::machine::FnMachine<u32, CounterCmd, u32>;
        type CI = Vec<u8>;
        type RI = Vec<u8>;
        type SI = u32;

        fn encode_command(&self, c: &CounterCmd) -> Vec<u8> {
            match c {
                CounterCmd::Add(n) => {
                    let mut b = vec![1];
                    b.extend_from_slice(&n.to_le_bytes());
                    b
                }
                CounterCmd::Get => vec![2, 0, 0, 0, 0],
            }
        }
        fn decode_command(&self, c: &Vec<u8>) -> Option<CounterCmd> {
            if c.len() != 5 {
                return None;
            }
            let arg = u32::from_le_bytes([c[1], c[2], c[3], c[4]]);
            match c[0] {
                1 => Some(CounterCmd::Add(arg)),
                2 if arg == 0 => Some(CounterCmd::Get),
                _ => None,
            }
        }
        fn encode_response(&self, r: Option<&u32>) -> Vec<u8> {
            match r {
                Some(v) => v.to_le_bytes().to_vec(),
                None => vec![0xFF; 4],
            }
        }
        fn decode_response(&self, r: &Vec<u8>) -> u32 {
            u32::from_le_bytes([r[0], r[1], r[2], r[3]])
        }
        fn encode_state(&self, s: &u32) -> u32 {
            *s
        }
    }

    fn sample_inputs() -> Vec<Vec<u8>> {
        vec![
            vec![1, 5, 0, 0, 0],
            vec![2, 0, 0, 0, 0],
            vec![3, 0, 0, 0, 0],
            vec![2, 1, 0, 0, 0], // get with nonzero arg: undecodable
            vec![],
            vec![1, 2],
            vec![0xFF; 5],
        ]
    }

    #[test]
    fn codec_inversion_holds() {
        check_codec_inverse(
            &CounterCodec,
            &[CounterCmd::Add(0), CounterCmd::Add(123), CounterCmd::Get],
            &[0, 1, u32::MAX],
        )
        .unwrap();
    }

    #[test]
    fn lockstep_simulation_holds_for_correct_impl() {
        // counter_bytes treats "get with nonzero arg" as valid `get`,
        // while the codec calls it undecodable — but the response
        // happens to match encode_response(Some(s)) only when... check:
        // it must actually FAIL obligation None-case for input
        // [2,1,0,0,0] because the impl answers with the counter value.
        let err = check_lockstep_simulation(
            &CounterCodec,
            &counter_spec(),
            &counter_bytes(),
            &[0, 7, u32::MAX],
            &sample_inputs(),
        );
        assert!(err.is_err(), "sloppy input validation must be caught");
        // Restrict to inputs the implementation validates strictly.
        let strict: Vec<Vec<u8>> = sample_inputs()
            .into_iter()
            .filter(|i| !(i.len() == 5 && i[0] == 2 && i[1..] != [0, 0, 0, 0]))
            .collect();
        check_lockstep_simulation(
            &CounterCodec,
            &counter_spec(),
            &counter_bytes(),
            &[0, 7, u32::MAX],
            &strict,
        )
        .unwrap();
    }

    #[test]
    fn lockstep_gives_ipr() {
        // The derived driver/emulator pass the world-equivalence check.
        let spec = counter_spec();
        let imp = counter_bytes();
        let driver = LockstepDriver(&CounterCodec);
        let mut emu = LockstepEmulator(&CounterCodec);
        let ops: Vec<Op<CounterCmd, Vec<u8>>> = vec![
            Op::Spec(CounterCmd::Add(9)),
            Op::Impl(vec![1, 1, 0, 0, 0]),
            Op::Spec(CounterCmd::Get),
            Op::Impl(vec![0xAB]), // garbage
            Op::Impl(vec![2, 0, 0, 0, 0]),
        ];
        check_ipr(&spec, &imp, &driver, &mut emu, &ops).unwrap();
    }

    #[test]
    fn leaky_impl_fails_lockstep() {
        let err = check_lockstep_simulation(
            &CounterCodec,
            &counter_spec(),
            &counter_bytes_leaky(),
            &[41],
            &[vec![0xAB]],
        )
        .unwrap_err();
        assert_eq!(err.obligation, "lockstep simulation (None): deterministic error");
    }
}
