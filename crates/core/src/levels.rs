//! The live registry of abstraction levels (paper Table 1).
//!
//! Every proof artifact in the pipeline relates two adjacent levels of
//! this chain; the transitivity theorem ([`crate::transitive`]) is what
//! lets the per-level claims compose into the end-to-end statement
//!
//! ```text
//! App Spec  ≈IPR  App Impl [Low*]  ≈IPR  ... ≈IPR  SoC
//! ```
//!
//! The registry is data, not prose: `table1` renders it, and the proof
//! pipeline (`parfait-pipeline`) uses [`Level`] labels in its stage
//! certificates so a composed certificate's claim chain can be checked
//! mechanically against this ordering.

/// One level of abstraction in the IPR chain, ordered from the
/// application specification down to the circuit.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// The application specification (a Rust `StateMachine`).
    Spec,
    /// The application implementation under the littlec interpreter
    /// (the paper's Low* level).
    LowStar,
    /// The implementation lowered to the three-address IR (the paper's
    /// C level).
    Ir,
    /// The compiled RV32IM assembly under the Riscette machine.
    Asm,
    /// The complete system-on-a-chip at the wire level.
    Soc,
}

impl Level {
    /// The full chain, top to bottom.
    pub const CHAIN: [Level; 5] = [Level::Spec, Level::LowStar, Level::Ir, Level::Asm, Level::Soc];

    /// Stable machine-readable name (used in certificates).
    pub fn name(self) -> &'static str {
        match self {
            Level::Spec => "app-spec",
            Level::LowStar => "app-impl-lowstar",
            Level::Ir => "app-impl-ir",
            Level::Asm => "app-impl-asm",
            Level::Soc => "soc",
        }
    }

    /// Position in the chain (0 = specification).
    pub fn index(self) -> usize {
        Level::CHAIN.iter().position(|l| *l == self).unwrap()
    }

    /// A qualified label for certificates, e.g. `app-impl-asm(-O2)` or
    /// `soc(Ibex)`; `None` yields the bare [`Level::name`].
    pub fn label(self, qualifier: Option<&str>) -> String {
        match qualifier {
            Some(q) => format!("{}({q})", self.name()),
            None => self.name().to_string(),
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One row of Table 1: how a level is realized in this repo.
#[derive(Clone, Copy, Debug)]
pub struct LevelInfo {
    /// Which level.
    pub level: Level,
    /// Human-readable title (Table 1's first column).
    pub title: &'static str,
    /// What the state is at this level.
    pub state: &'static str,
    /// What I/O looks like at this level.
    pub io: &'static str,
    /// The executable step function realizing the level.
    pub step: &'static str,
}

/// The registry, in chain order.
pub fn registry() -> [LevelInfo; 5] {
    [
        LevelInfo {
            level: Level::Spec,
            title: "App Spec [Rust]",
            state: "EcdsaState / HasherState",
            io: "Command / Response enums",
            step: "StateMachine::step()",
        },
        LevelInfo {
            level: Level::LowStar,
            title: "App Impl [littlec interp]",
            state: "bytes",
            io: "bytes",
            step: "handle() under interp::Interp",
        },
        LevelInfo {
            level: Level::Ir,
            title: "App Impl [IR]",
            state: "bytes",
            io: "bytes",
            step: "handle() under ireval::IrEval",
        },
        LevelInfo {
            level: Level::Asm,
            title: "App Impl [Asm]",
            state: "bytes",
            io: "bytes",
            step: "handle() under riscv::AsmStateMachine",
        },
        LevelInfo {
            level: Level::Soc,
            title: "System-on-a-Chip",
            state: "registers & memories",
            io: "wires",
            step: "rtl::Circuit::tick()",
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_ordered_and_named() {
        for (i, l) in Level::CHAIN.iter().enumerate() {
            assert_eq!(l.index(), i);
        }
        assert_eq!(Level::Asm.label(Some("-O2")), "app-impl-asm(-O2)");
        assert_eq!(Level::Spec.label(None), "app-spec");
    }

    #[test]
    fn registry_matches_chain() {
        let reg = registry();
        assert_eq!(reg.len(), Level::CHAIN.len());
        for (info, level) in reg.iter().zip(Level::CHAIN) {
            assert_eq!(info.level, level);
        }
    }
}
