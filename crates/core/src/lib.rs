//! parfait — the theory of information-preserving refinement (IPR).
//!
//! This crate is the executable counterpart of the Parfait paper's Coq
//! formalization (§3): state machines (fig. 3), drivers and emulators,
//! the real/ideal-world definition of IPR (fig. 5), the transitivity
//! construction that lets refinements compose across levels of
//! abstraction, and the three proof strategies — *IPR by lockstep*, *IPR
//! by equivalence*, and *IPR by functional-physical simulation*.
//!
//! Where the paper proves these statements once and for all in Coq, this
//! crate turns every definition into a runnable construction and every
//! theorem into a *checker*: observational equivalence of the two worlds
//! is tested over adversarially mixed command sequences, and the
//! composition operators are validated by the test suite and by the
//! downstream Starling/Knox2 crates that instantiate them on real HSMs.
//!
//! Map from paper artifacts to modules:
//!
//! | Paper | Module |
//! |---|---|
//! | `state_machine` record (fig. 3) | [`machine::StateMachine`] |
//! | driver / emulator / worlds (fig. 5) | [`world`] |
//! | IPR transitivity theorem | [`transitive`] |
//! | IPR by lockstep (fig. 6) | [`lockstep`] |
//! | IPR by equivalence | [`equivalence`] |
//! | IPR by functional-physical simulation | [`fps`] |
//! | spec-level non-leakage (§9 complement) | [`speccheck`] |
//! | levels of abstraction (Table 1) | [`levels`] |

#![forbid(unsafe_code)]

pub mod equivalence;
pub mod fps;
pub mod levels;
pub mod lockstep;
pub mod machine;
pub mod speccheck;
pub mod transitive;
pub mod world;

pub use levels::Level;
pub use machine::StateMachine;
pub use world::{check_ipr, Counterexample, Driver, Emulator, Obs, Op};
