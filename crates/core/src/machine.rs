//! State machines — fig. 3 of the paper.

/// A deterministic state machine, the paper's
/// `Record state_machine (command response : Type)`.
///
/// Every level of abstraction — application specification, byte-level
/// `handle` implementation, compiled assembly, and the SoC circuit — is
/// modeled as a value of this trait (paper Table 1).
///
/// ```
/// use parfait::machine::{FnMachine, StateMachine};
///
/// // A two-command counter spec in fig. 4 style.
/// let spec: FnMachine<u32, u32, u32> = FnMachine {
///     init: 0,
///     step: |s, add| (s + add, s + add),
/// };
/// assert_eq!(spec.run(&[5, 7]), vec![5, 12]);
/// ```
pub trait StateMachine {
    /// The machine's state type.
    type State: Clone;
    /// Input commands.
    type Command;
    /// Output responses.
    type Response: PartialEq + Clone + std::fmt::Debug;

    /// The initial state (`init` in fig. 3).
    fn init(&self) -> Self::State;

    /// The transition function (`step` in fig. 3).
    fn step(&self, state: &Self::State, cmd: &Self::Command) -> (Self::State, Self::Response);

    /// Run a command sequence from the initial state, collecting
    /// responses.
    fn run(&self, cmds: &[Self::Command]) -> Vec<Self::Response> {
        let mut state = self.init();
        let mut out = Vec::with_capacity(cmds.len());
        for c in cmds {
            let (s, r) = self.step(&state, c);
            state = s;
            out.push(r);
        }
        out
    }
}

/// A state machine built from closures, for tests and small specs.
pub struct FnMachine<S, C, R> {
    /// Initial state.
    pub init: S,
    /// Step function.
    pub step: fn(&S, &C) -> (S, R),
}

impl<S: Clone, C, R: PartialEq + Clone + std::fmt::Debug> StateMachine for FnMachine<S, C, R> {
    type State = S;
    type Command = C;
    type Response = R;

    fn init(&self) -> S {
        self.init.clone()
    }

    fn step(&self, state: &S, cmd: &C) -> (S, R) {
        (self.step)(state, cmd)
    }
}

/// Example machines used throughout the test suite.
pub mod examples {
    use super::*;

    /// Commands of the counter spec.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum CounterCmd {
        /// Add `n` to the counter.
        Add(u32),
        /// Read the counter.
        Get,
    }

    /// A counter specification machine.
    pub fn counter_spec() -> FnMachine<u32, CounterCmd, u32> {
        FnMachine {
            init: 0,
            step: |s, c| match c {
                CounterCmd::Add(n) => (s.wrapping_add(*n), 0),
                CounterCmd::Get => (*s, *s),
            },
        }
    }

    /// A byte-level counter implementation: commands are 5-byte buffers
    /// `[tag, le32]`; responses are 4-byte little-endian buffers.
    /// Tag 1 = add, tag 2 = get; anything else is an invalid command and
    /// returns `[0xFF; 4]` without changing state.
    pub fn counter_bytes() -> FnMachine<u32, Vec<u8>, Vec<u8>> {
        FnMachine {
            init: 0,
            step: |s, c| {
                if c.len() != 5 {
                    return (*s, vec![0xFF; 4]);
                }
                let arg = u32::from_le_bytes([c[1], c[2], c[3], c[4]]);
                match c[0] {
                    1 => (s.wrapping_add(arg), vec![0, 0, 0, 0]),
                    2 => (*s, s.to_le_bytes().to_vec()),
                    _ => (*s, vec![0xFF; 4]),
                }
            },
        }
    }

    /// A buggy byte-level counter that leaks state on invalid commands
    /// (used to show the IPR checker catching leakage).
    pub fn counter_bytes_leaky() -> FnMachine<u32, Vec<u8>, Vec<u8>> {
        FnMachine {
            init: 0,
            step: |s, c| {
                if c.len() != 5 || !(c[0] == 1 || c[0] == 2) {
                    // Leak: the "error" response reveals the counter.
                    return (*s, s.to_le_bytes().to_vec());
                }
                let arg = u32::from_le_bytes([c[1], c[2], c[3], c[4]]);
                match c[0] {
                    1 => (s.wrapping_add(arg), vec![0, 0, 0, 0]),
                    _ => (*s, s.to_le_bytes().to_vec()),
                }
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::examples::*;
    use super::*;

    #[test]
    fn run_collects_responses() {
        let m = counter_spec();
        let rs = m.run(&[CounterCmd::Add(2), CounterCmd::Add(3), CounterCmd::Get]);
        assert_eq!(rs, vec![0, 0, 5]);
    }

    #[test]
    fn byte_machine_matches_spec_behaviour() {
        let m = counter_bytes();
        let rs = m.run(&[vec![1, 7, 0, 0, 0], vec![2, 0, 0, 0, 0]]);
        assert_eq!(rs[1], vec![7, 0, 0, 0]);
    }

    #[test]
    fn invalid_commands_do_not_change_state() {
        let m = counter_bytes();
        let rs = m.run(&[vec![1, 7, 0, 0, 0], vec![9, 9, 9, 9, 9], vec![2, 0, 0, 0, 0]]);
        assert_eq!(rs[1], vec![0xFF; 4]);
        assert_eq!(rs[2], vec![7, 0, 0, 0]);
    }
}
