//! Transitivity of IPR — the key contribution of the paper (§3).
//!
//! Given `M1 ≈IPR[d12] M2` and `M2 ≈IPR[d23] M3`, the paper's Coq
//! development proves `M1 ≈IPR[d12 ∘ d23] M3`. This module provides the
//! two executable constructions that appear in that proof:
//!
//! * [`ComposedDriver`] — `d12 ∘ d23`: a spec-level command is mapped by
//!   `d12` to mid-level operations, each of which is mapped by `d23` to
//!   low-level operations;
//! * [`ComposedEmulator`] — `e23 ∘ e12`: a low-level adversary command is
//!   handled by `e23`, whose mid-level spec queries are answered by
//!   `e12`, whose queries reach the top-level spec.
//!
//! The crate's tests (and the end-to-end HSM tests in `parfait-hsms`)
//! validate the theorem by checking the composed pair with
//! [`crate::world::check_ipr`].

use std::marker::PhantomData;

use crate::world::{Driver, Emulator};

/// The composition `d12 ∘ d23` of two drivers.
pub struct ComposedDriver<D12, D23, CM, RM> {
    /// Driver between the top and middle levels.
    pub d12: D12,
    /// Driver between the middle and bottom levels.
    pub d23: D23,
    _marker: PhantomData<fn() -> (CM, RM)>,
}

impl<D12, D23, CM, RM> ComposedDriver<D12, D23, CM, RM> {
    /// Compose two drivers across a middle level of abstraction.
    pub fn new(d12: D12, d23: D23) -> Self {
        ComposedDriver { d12, d23, _marker: PhantomData }
    }
}

impl<CS, RS, CM, RM, CI, RI, D12, D23> Driver<CS, RS, CI, RI> for ComposedDriver<D12, D23, CM, RM>
where
    D12: Driver<CS, RS, CM, RM>,
    D23: Driver<CM, RM, CI, RI>,
{
    fn run(&self, cmd: &CS, io: &mut dyn FnMut(&CI) -> RI) -> RS {
        let d23 = &self.d23;
        self.d12.run(cmd, &mut |cm: &CM| d23.run(cm, io))
    }
}

/// The composition `e23 ∘ e12` of two emulators.
pub struct ComposedEmulator<E12, E23, CM, RM> {
    /// Emulator relating the top and middle levels.
    pub e12: E12,
    /// Emulator relating the middle and bottom levels.
    pub e23: E23,
    _marker: PhantomData<fn() -> (CM, RM)>,
}

impl<E12, E23, CM, RM> ComposedEmulator<E12, E23, CM, RM> {
    /// Compose two emulators across a middle level of abstraction.
    pub fn new(e12: E12, e23: E23) -> Self {
        ComposedEmulator { e12, e23, _marker: PhantomData }
    }
}

impl<CS, RS, CM, RM, CI, RI, E12, E23> Emulator<CS, RS, CI, RI>
    for ComposedEmulator<E12, E23, CM, RM>
where
    E12: Emulator<CS, RS, CM, RM>,
    E23: Emulator<CM, RM, CI, RI>,
{
    fn reset(&mut self) {
        self.e12.reset();
        self.e23.reset();
    }

    fn on_command(&mut self, cmd: &CI, spec: &mut dyn FnMut(&CS) -> RS) -> RI {
        let e12 = &mut self.e12;
        self.e23.on_command(cmd, &mut |cm: &CM| e12.on_command(cm, spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::examples::*;
    use crate::machine::FnMachine;
    use crate::world::{check_ipr, Op};

    // Three levels: CounterCmd (spec) / bytes (mid) / "wire" where each
    // wire op carries one byte of a framed message. To keep the test
    // tractable, the wire level transfers whole 5-byte buffers but with
    // a parity trailer.

    /// Wire level: commands are 6-byte frames `[cmd[5], checksum]`;
    /// responses are 5-byte frames `[resp[4], checksum]`. A frame with a
    /// bad checksum returns all-zero without stepping the machine.
    fn counter_wire() -> FnMachine<u32, Vec<u8>, Vec<u8>> {
        FnMachine {
            init: 0,
            step: |s, c| {
                let frame_ok =
                    c.len() == 6 && c[5] == c[..5].iter().fold(0u8, |a, b| a.wrapping_add(*b));
                if !frame_ok {
                    return (*s, vec![0; 5]);
                }
                let inner = counter_bytes();
                let (s2, r) = crate::machine::StateMachine::step(&inner, s, &c[..5].to_vec());
                let mut out = r.clone();
                out.push(r.iter().fold(0u8, |a, b| a.wrapping_add(*b)));
                (s2, out)
            },
        }
    }

    struct SpecToBytes;
    impl crate::world::Driver<CounterCmd, u32, Vec<u8>, Vec<u8>> for SpecToBytes {
        fn run(&self, cmd: &CounterCmd, io: &mut dyn FnMut(&Vec<u8>) -> Vec<u8>) -> u32 {
            let buf = match cmd {
                CounterCmd::Add(n) => {
                    let mut b = vec![1];
                    b.extend_from_slice(&n.to_le_bytes());
                    b
                }
                CounterCmd::Get => vec![2, 0, 0, 0, 0],
            };
            let r = io(&buf);
            u32::from_le_bytes([r[0], r[1], r[2], r[3]])
        }
    }

    struct BytesToWire;
    impl crate::world::Driver<Vec<u8>, Vec<u8>, Vec<u8>, Vec<u8>> for BytesToWire {
        fn run(&self, cmd: &Vec<u8>, io: &mut dyn FnMut(&Vec<u8>) -> Vec<u8>) -> Vec<u8> {
            let mut framed = cmd.clone();
            framed.push(cmd.iter().fold(0u8, |a, b| a.wrapping_add(*b)));
            let r = io(&framed);
            r[..4].to_vec()
        }
    }

    struct SpecToBytesEmu;
    impl crate::world::Emulator<CounterCmd, u32, Vec<u8>, Vec<u8>> for SpecToBytesEmu {
        fn reset(&mut self) {}
        fn on_command(
            &mut self,
            cmd: &Vec<u8>,
            spec: &mut dyn FnMut(&CounterCmd) -> u32,
        ) -> Vec<u8> {
            if cmd.len() != 5 {
                return vec![0xFF; 4];
            }
            let arg = u32::from_le_bytes([cmd[1], cmd[2], cmd[3], cmd[4]]);
            match cmd[0] {
                1 => {
                    spec(&CounterCmd::Add(arg));
                    vec![0, 0, 0, 0]
                }
                2 => spec(&CounterCmd::Get).to_le_bytes().to_vec(),
                _ => vec![0xFF; 4],
            }
        }
    }

    struct BytesToWireEmu;
    impl crate::world::Emulator<Vec<u8>, Vec<u8>, Vec<u8>, Vec<u8>> for BytesToWireEmu {
        fn reset(&mut self) {}
        fn on_command(
            &mut self,
            cmd: &Vec<u8>,
            spec: &mut dyn FnMut(&Vec<u8>) -> Vec<u8>,
        ) -> Vec<u8> {
            let frame_ok =
                cmd.len() == 6 && cmd[5] == cmd[..5].iter().fold(0u8, |a, b| a.wrapping_add(*b));
            if !frame_ok {
                return vec![0; 5];
            }
            let r = spec(&cmd[..5].to_vec());
            let mut out = r.clone();
            out.push(r.iter().fold(0u8, |a, b| a.wrapping_add(*b)));
            out
        }
    }

    fn frame(buf: &[u8]) -> Vec<u8> {
        let mut f = buf.to_vec();
        f.push(buf.iter().fold(0u8, |a, b| a.wrapping_add(*b)));
        f
    }

    #[test]
    fn each_level_satisfies_ipr() {
        // Level 1≈2.
        let ops: Vec<Op<CounterCmd, Vec<u8>>> = vec![
            Op::Spec(CounterCmd::Add(3)),
            Op::Impl(vec![2, 0, 0, 0, 0]),
            Op::Impl(vec![7; 5]),
            Op::Spec(CounterCmd::Get),
        ];
        check_ipr(&counter_spec(), &counter_bytes(), &SpecToBytes, &mut SpecToBytesEmu, &ops)
            .unwrap();
        // Level 2≈3.
        let ops: Vec<Op<Vec<u8>, Vec<u8>>> = vec![
            Op::Spec(vec![1, 9, 0, 0, 0]),
            Op::Impl(frame(&[2, 0, 0, 0, 0])),
            Op::Impl(vec![1, 2, 3]), // bad frame
            Op::Spec(vec![2, 0, 0, 0, 0]),
        ];
        check_ipr(&counter_bytes(), &counter_wire(), &BytesToWire, &mut BytesToWireEmu, &ops)
            .unwrap();
    }

    #[test]
    fn transitivity_composes_end_to_end() {
        // M1 ≈ M3 with the composed driver and emulator — the executable
        // form of the transitivity theorem.
        let driver = ComposedDriver::<_, _, Vec<u8>, Vec<u8>>::new(SpecToBytes, BytesToWire);
        let mut emu =
            ComposedEmulator::<_, _, Vec<u8>, Vec<u8>>::new(SpecToBytesEmu, BytesToWireEmu);
        let ops: Vec<Op<CounterCmd, Vec<u8>>> = vec![
            Op::Spec(CounterCmd::Add(3)),
            Op::Impl(frame(&[1, 4, 0, 0, 0])),
            Op::Spec(CounterCmd::Get),
            Op::Impl(vec![0xde, 0xad]), // bad frame at the wire level
            Op::Impl(frame(&[9, 9, 9, 9, 9])), // good frame, bad command
            Op::Impl(frame(&[2, 0, 0, 0, 0])),
            Op::Spec(CounterCmd::Get),
        ];
        check_ipr(&counter_spec(), &counter_wire(), &driver, &mut emu, &ops).unwrap();
    }

    #[test]
    fn composition_exposes_lower_level_leak() {
        // Break the wire level so that bad frames leak the counter; the
        // composed check must catch it.
        let leaky_wire: FnMachine<u32, Vec<u8>, Vec<u8>> = FnMachine {
            init: 0,
            step: |s, c| {
                let frame_ok =
                    c.len() == 6 && c[5] == c[..5].iter().fold(0u8, |a, b| a.wrapping_add(*b));
                if !frame_ok {
                    let mut out = s.to_le_bytes().to_vec();
                    out.push(0);
                    return (*s, out); // leaks!
                }
                let inner = counter_bytes();
                let (s2, r) = crate::machine::StateMachine::step(&inner, s, &c[..5].to_vec());
                let mut out = r.clone();
                out.push(r.iter().fold(0u8, |a, b| a.wrapping_add(*b)));
                (s2, out)
            },
        };
        let driver = ComposedDriver::<_, _, Vec<u8>, Vec<u8>>::new(SpecToBytes, BytesToWire);
        let mut emu =
            ComposedEmulator::<_, _, Vec<u8>, Vec<u8>>::new(SpecToBytesEmu, BytesToWireEmu);
        let ops: Vec<Op<CounterCmd, Vec<u8>>> = vec![
            Op::Spec(CounterCmd::Add(41)),
            Op::Impl(vec![0xde, 0xad]), // bad frame → leak
        ];
        let err = check_ipr(&counter_spec(), &leaky_wire, &driver, &mut emu, &ops);
        assert_eq!(err.unwrap_err().index, 1);
    }
}
