//! The IPR definition: drivers, emulators, and the real/ideal worlds
//! (fig. 5 of the paper), plus the observational-equivalence checker.

use crate::machine::StateMachine;

/// A driver translates one spec-level command into a program of
/// implementation-level I/O (paper §3: "a program mapping spec-level
/// operations to implementation-level I/O", akin to a device driver).
///
/// The driver is in the TCB.
pub trait Driver<CS, RS, CI, RI> {
    /// Execute the spec-level command `cmd`, performing
    /// implementation-level operations through `io`, and decode the
    /// spec-level response.
    fn run(&self, cmd: &CS, io: &mut dyn FnMut(&CI) -> RI) -> RS;
}

/// An emulator — the dual of the driver and a proof artifact, *not* in
/// the TCB. It exposes the implementation-level interface while having
/// only query access to the specification.
pub trait Emulator<CS, RS, CI, RI> {
    /// Return to the initial emulator state.
    fn reset(&mut self);

    /// Handle one implementation-level command, optionally querying the
    /// specification through `spec` (each query takes a real spec step).
    fn on_command(&mut self, cmd: &CI, spec: &mut dyn FnMut(&CS) -> RS) -> RI;
}

/// One client operation: either a spec-level operation (via the driver
/// in the real world) or a raw implementation-level operation
/// (the adversary's interface).
#[derive(Clone, Debug)]
pub enum Op<CS, CI> {
    /// A spec-level operation.
    Spec(CS),
    /// A raw implementation-level operation.
    Impl(CI),
}

/// The observation a client makes for one [`Op`].
#[derive(Clone, Debug, PartialEq)]
pub enum Obs<RS, RI> {
    /// Response of a spec-level operation.
    Spec(RS),
    /// Response of an implementation-level operation.
    Impl(RI),
}

/// Run the **real world**: the implementation machine, with spec-level
/// operations translated by the driver.
pub fn run_real<MI, CS, RS, D>(
    imp: &MI,
    driver: &D,
    ops: &[Op<CS, MI::Command>],
) -> Vec<Obs<RS, MI::Response>>
where
    MI: StateMachine,
    D: Driver<CS, RS, MI::Command, MI::Response>,
{
    let mut state = imp.init();
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        match op {
            Op::Spec(cs) => {
                let mut io = |ci: &MI::Command| {
                    let (s, r) = imp.step(&state, ci);
                    state = s;
                    r
                };
                let rs = driver.run(cs, &mut io);
                out.push(Obs::Spec(rs));
            }
            Op::Impl(ci) => {
                let (s, r) = imp.step(&state, ci);
                state = s;
                out.push(Obs::Impl(r));
            }
        }
    }
    out
}

/// Run the **ideal world**: the specification machine, with
/// implementation-level operations answered by the emulator (which may
/// query the spec).
pub fn run_ideal<MS, CI, RI, E>(
    spec: &MS,
    emu: &mut E,
    ops: &[Op<MS::Command, CI>],
) -> Vec<Obs<MS::Response, RI>>
where
    MS: StateMachine,
    E: Emulator<MS::Command, MS::Response, CI, RI>,
{
    emu.reset();
    let mut state = spec.init();
    let mut out = Vec::with_capacity(ops.len());
    for op in ops {
        match op {
            Op::Spec(cs) => {
                let (s, r) = spec.step(&state, cs);
                state = s;
                out.push(Obs::Spec(r));
            }
            Op::Impl(ci) => {
                let mut q = |c: &MS::Command| {
                    let (s, r) = spec.step(&state, c);
                    state = s;
                    r
                };
                let ri = emu.on_command(ci, &mut q);
                out.push(Obs::Impl(ri));
            }
        }
    }
    out
}

/// A failed equivalence check: the first operation index at which the
/// two worlds produced different observations.
#[derive(Clone, Debug)]
pub struct Counterexample<RS, RI> {
    /// Index into the operation sequence.
    pub index: usize,
    /// What the real world observed.
    pub real: Obs<RS, RI>,
    /// What the ideal world observed.
    pub ideal: Obs<RS, RI>,
}

impl<RS: std::fmt::Debug, RI: std::fmt::Debug> std::fmt::Display for Counterexample<RS, RI> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "worlds diverge at operation {}: real={:?} ideal={:?}",
            self.index, self.real, self.ideal
        )
    }
}

/// Check observational equivalence of the real and ideal worlds on one
/// operation sequence — the executable form of
/// `M_i ≈ IPR[d] M_s` from fig. 5, restricted to the given trace.
///
/// Soundness note: a passing check on finitely many traces is evidence,
/// not proof; the HSM test suites drive this with both exhaustive small
/// traces and randomized long ones.
pub fn check_ipr<MS, MI, D, E>(
    spec: &MS,
    imp: &MI,
    driver: &D,
    emu: &mut E,
    ops: &[Op<MS::Command, MI::Command>],
) -> Result<(), Counterexample<MS::Response, MI::Response>>
where
    MS: StateMachine,
    MI: StateMachine,
    MS::Command: Clone,
    MI::Command: Clone,
    D: Driver<MS::Command, MS::Response, MI::Command, MI::Response>,
    E: Emulator<MS::Command, MS::Response, MI::Command, MI::Response>,
{
    let real = run_real(imp, driver, ops);
    let ideal = run_ideal(spec, emu, ops);
    for (i, (r, d)) in real.iter().zip(ideal.iter()).enumerate() {
        if r != d {
            return Err(Counterexample { index: i, real: r.clone(), ideal: d.clone() });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::examples::*;

    /// The obvious counter driver: encode command, decode response.
    struct CounterDriver;

    impl Driver<CounterCmd, u32, Vec<u8>, Vec<u8>> for CounterDriver {
        fn run(&self, cmd: &CounterCmd, io: &mut dyn FnMut(&Vec<u8>) -> Vec<u8>) -> u32 {
            let buf = match cmd {
                CounterCmd::Add(n) => {
                    let mut b = vec![1];
                    b.extend_from_slice(&n.to_le_bytes());
                    b
                }
                CounterCmd::Get => vec![2, 0, 0, 0, 0],
            };
            let resp = io(&buf);
            u32::from_le_bytes([resp[0], resp[1], resp[2], resp[3]])
        }
    }

    /// The counter emulator: decodes commands, queries the spec, encodes
    /// responses; invalid commands get the fixed error response.
    struct CounterEmu;

    impl Emulator<CounterCmd, u32, Vec<u8>, Vec<u8>> for CounterEmu {
        fn reset(&mut self) {}
        fn on_command(
            &mut self,
            cmd: &Vec<u8>,
            spec: &mut dyn FnMut(&CounterCmd) -> u32,
        ) -> Vec<u8> {
            if cmd.len() != 5 {
                return vec![0xFF; 4];
            }
            let arg = u32::from_le_bytes([cmd[1], cmd[2], cmd[3], cmd[4]]);
            match cmd[0] {
                1 => {
                    spec(&CounterCmd::Add(arg));
                    vec![0, 0, 0, 0]
                }
                2 => spec(&CounterCmd::Get).to_le_bytes().to_vec(),
                _ => vec![0xFF; 4],
            }
        }
    }

    fn mixed_ops() -> Vec<Op<CounterCmd, Vec<u8>>> {
        vec![
            Op::Spec(CounterCmd::Add(5)),
            Op::Impl(vec![1, 2, 0, 0, 0]),
            Op::Spec(CounterCmd::Get),
            Op::Impl(vec![9, 9, 9, 9, 9]), // invalid
            Op::Impl(vec![2, 0, 0, 0, 0]),
            Op::Impl(vec![1, 2, 3]), // malformed length
            Op::Spec(CounterCmd::Get),
        ]
    }

    #[test]
    fn correct_impl_satisfies_ipr() {
        let spec = counter_spec();
        let imp = counter_bytes();
        check_ipr(&spec, &imp, &CounterDriver, &mut CounterEmu, &mixed_ops()).unwrap();
    }

    #[test]
    fn leaky_impl_fails_ipr() {
        // The leaky implementation reveals the counter on invalid input;
        // no emulator with only spec access could reproduce that, and
        // this particular emulator certainly doesn't.
        let spec = counter_spec();
        let imp = counter_bytes_leaky();
        let err = check_ipr(&spec, &imp, &CounterDriver, &mut CounterEmu, &mixed_ops());
        let ce = err.unwrap_err();
        assert_eq!(ce.index, 3, "diverges at the invalid command");
    }

    #[test]
    fn spec_only_traces_always_agree() {
        let spec = counter_spec();
        let imp = counter_bytes();
        let ops: Vec<Op<CounterCmd, Vec<u8>>> = vec![
            Op::Spec(CounterCmd::Add(1)),
            Op::Spec(CounterCmd::Add(2)),
            Op::Spec(CounterCmd::Get),
        ];
        check_ipr(&spec, &imp, &CounterDriver, &mut CounterEmu, &ops).unwrap();
    }
}
