//! Property-based tests of the IPR theory: transitivity on random
//! operation traces, and lockstep-derived worlds agreeing on random
//! adversarial inputs.

use proptest::prelude::*;

use parfait::equivalence::{check_equivalence, IdentityDriver, IdentityEmulator};
use parfait::machine::examples::{counter_bytes, counter_spec, CounterCmd};
use parfait::machine::StateMachine;
use parfait::world::{check_ipr, Driver, Emulator, Op};

struct CounterDriver;

impl Driver<CounterCmd, u32, Vec<u8>, Vec<u8>> for CounterDriver {
    fn run(&self, cmd: &CounterCmd, io: &mut dyn FnMut(&Vec<u8>) -> Vec<u8>) -> u32 {
        let buf = match cmd {
            CounterCmd::Add(n) => {
                let mut b = vec![1];
                b.extend_from_slice(&n.to_le_bytes());
                b
            }
            CounterCmd::Get => vec![2, 0, 0, 0, 0],
        };
        let r = io(&buf);
        u32::from_le_bytes([r[0], r[1], r[2], r[3]])
    }
}

struct CounterEmu;

impl Emulator<CounterCmd, u32, Vec<u8>, Vec<u8>> for CounterEmu {
    fn reset(&mut self) {}
    fn on_command(&mut self, cmd: &Vec<u8>, spec: &mut dyn FnMut(&CounterCmd) -> u32) -> Vec<u8> {
        if cmd.len() != 5 {
            return vec![0xFF; 4];
        }
        let arg = u32::from_le_bytes([cmd[1], cmd[2], cmd[3], cmd[4]]);
        match cmd[0] {
            1 => {
                spec(&CounterCmd::Add(arg));
                vec![0, 0, 0, 0]
            }
            2 => spec(&CounterCmd::Get).to_le_bytes().to_vec(),
            _ => vec![0xFF; 4],
        }
    }
}

fn arb_op() -> impl Strategy<Value = Op<CounterCmd, Vec<u8>>> {
    prop_oneof![
        any::<u32>().prop_map(|n| Op::Spec(CounterCmd::Add(n))),
        Just(Op::Spec(CounterCmd::Get)),
        any::<u32>().prop_map(|n| {
            let mut b = vec![1];
            b.extend_from_slice(&n.to_le_bytes());
            Op::Impl(b)
        }),
        Just(Op::Impl(vec![2, 0, 0, 0, 0])),
        prop::collection::vec(any::<u8>(), 0..8).prop_map(Op::Impl),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The correct implementation satisfies IPR on arbitrary mixed
    /// adversarial traces.
    #[test]
    fn ipr_holds_on_random_traces(ops in prop::collection::vec(arb_op(), 0..32)) {
        let spec = counter_spec();
        let imp = counter_bytes();
        check_ipr(&spec, &imp, &CounterDriver, &mut CounterEmu, &ops)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }

    /// Identity driver/emulator give IPR between equal machines on any
    /// trace — equivalence implies IPR.
    #[test]
    fn equivalence_implies_ipr(ops in prop::collection::vec(arb_op(), 0..32)) {
        let a = counter_bytes();
        let b = counter_bytes();
        let byte_ops: Vec<Op<Vec<u8>, Vec<u8>>> = ops
            .into_iter()
            .map(|op| match op {
                Op::Spec(CounterCmd::Add(n)) => {
                    let mut b = vec![1];
                    b.extend_from_slice(&n.to_le_bytes());
                    Op::Spec(b)
                }
                Op::Spec(CounterCmd::Get) => Op::Spec(vec![2, 0, 0, 0, 0]),
                Op::Impl(v) => Op::Impl(v),
            })
            .collect();
        check_ipr(&a, &b, &IdentityDriver, &mut IdentityEmulator, &byte_ops)
            .map_err(|e| TestCaseError::fail(format!("{e}")))?;
    }

    /// run() is the fold of step(): prefix responses are stable.
    #[test]
    fn machine_run_is_prefix_stable(cmds in prop::collection::vec(any::<u32>(), 0..16)) {
        let m = counter_spec();
        let cmds: Vec<CounterCmd> = cmds.into_iter().map(CounterCmd::Add).collect();
        let full = m.run(&cmds);
        for n in 0..cmds.len() {
            let prefix = m.run(&cmds[..n]);
            prop_assert_eq!(&full[..n], &prefix[..]);
        }
    }

    /// check_equivalence is reflexive on random sequences.
    #[test]
    fn equivalence_reflexive(seqs in prop::collection::vec(
        prop::collection::vec(prop::collection::vec(any::<u8>(), 0..6), 0..6), 0..4)) {
        let a = counter_bytes();
        let b = counter_bytes();
        check_equivalence(&a, &b, &seqs).map_err(|e| TestCaseError::fail(format!("{e:?}")))?;
    }
}
