//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides a minimal wall-clock bench harness with criterion's
//! surface API as used by this workspace: `Criterion::bench_function`,
//! `benchmark_group` with `sample_size` / `throughput` /
//! `bench_function` / `finish`, `Throughput::Elements`, the
//! `criterion_group!` / `criterion_main!` macros, and `black_box`.
//!
//! It reports the median ns/iter over `sample_size` samples (no
//! statistical analysis, no HTML reports, no saved baselines).

pub use std::hint::black_box;

use std::time::Instant;

/// Work-per-iteration declaration, used to derive a rate column.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Each iteration processes this many logical elements.
    Elements(u64),
    /// Each iteration processes this many bytes.
    Bytes(u64),
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Time `f`, called `self.iters` times back to back.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }
}

fn run_samples(sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) -> f64 {
    // Calibrate the per-sample iteration count so one sample takes
    // roughly 10ms (bounded so huge benches still finish).
    let mut calib = Bencher { iters: 1, elapsed_ns: 0 };
    f(&mut calib);
    let per_iter = calib.elapsed_ns.max(1);
    let iters = (10_000_000 / per_iter).clamp(1, 1_000_000) as u64;

    let mut medians: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters, elapsed_ns: 0 };
        f(&mut b);
        medians.push(b.elapsed_ns as f64 / iters as f64);
    }
    medians.sort_by(|a, b| a.partial_cmp(b).unwrap());
    medians[medians.len() / 2]
}

fn report(name: &str, ns_per_iter: f64, throughput: Option<Throughput>) {
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 * 1e9 / ns_per_iter;
            println!("{name:<40} {ns_per_iter:>14.1} ns/iter {rate:>14.0} elem/s");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 * 1e9 / ns_per_iter;
            println!("{name:<40} {ns_per_iter:>14.1} ns/iter {rate:>14.0} B/s");
        }
        None => println!("{name:<40} {ns_per_iter:>14.1} ns/iter"),
    }
}

/// The top-level harness handle.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { default_sample_size: 20 }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let median = run_samples(self.default_sample_size, &mut f);
        report(name.as_ref(), median, None);
        self
    }

    /// Open a named group sharing sample-size/throughput settings.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.as_ref().to_string(),
            sample_size: self.default_sample_size,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A group of related benchmarks (`soc-cycles/ibex`, `soc-cycles/pico`, …).
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration work so a rate column is printed.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function(
        &mut self,
        name: impl AsRef<str>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let median = run_samples(self.sample_size, &mut f);
        report(&format!("{}/{}", self.name, name.as_ref()), median, self.throughput);
        self
    }

    /// End the group (accepted for criterion API compatibility).
    pub fn finish(self) {}
}

/// Bundle bench functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($f(&mut c);)+
        }
    };
}

/// Emit `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        c.bench_function("tiny/add", |b| b.iter(|| black_box(1u64) + black_box(2)));
        let mut group = c.benchmark_group("tiny-group");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_function(String::from("fmt-name"), |b| b.iter(|| black_box(7u32).wrapping_mul(3)));
        group.finish();
    }

    criterion_group!(benches, tiny);

    #[test]
    fn harness_runs() {
        benches();
    }
}
