//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the (small) API surface the workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`RngExt`]
//! convenience methods `fill`, `random`, `random_range`, and
//! `random_bool`. The generator is xoshiro256** seeded via SplitMix64 —
//! deterministic, portable, and plenty for test-input generation (none
//! of this workspace's randomness is security-relevant; the crypto
//! crate has its own deterministic nonce derivation).

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be produced uniformly at random.
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn draw(rng: &mut dyn RngCore) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw(rng: &mut dyn RngCore) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw(rng: &mut dyn RngCore) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = ((self.end as i128) - (self.start as i128)) as u128;
                ((self.start as i128) + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as i128) - (lo as i128) + 1) as u128;
                ((lo as i128) + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing convenience methods (rand 0.9+ naming).
pub trait RngExt: RngCore {
    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let w = self.next_u64().to_le_bytes();
            let n = rest.len();
            rest.copy_from_slice(&w[..n]);
        }
    }

    /// A uniformly random value of a primitive type.
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// A uniformly random value in `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Compatibility alias: older call sites use `Rng` for the extension
/// trait.
pub use RngExt as Rng;

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256** seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn fill_covers_tail() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0), "13 zero bytes is absurdly unlikely");
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: u8 = rng.random_range(0..8);
            assert!(w < 8);
        }
    }
}
