//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate re-implements the subset of proptest this workspace uses:
//! the `proptest!` / `prop_oneof!` / `prop_assert*!` / `prop_assume!`
//! macros, `Strategy` with `prop_map` / `prop_recursive` / `boxed`,
//! `any::<T>()` over an `Arbitrary` trait, integer-range strategies,
//! tuple strategies, `prop::collection::vec`, and a `TestRunner` with
//! `ProptestConfig`.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case reports its inputs (via the
//!   assertion message) and the case seed, but is not minimized.
//! - **Deterministic seeds.** Every run draws the same cases, seeded
//!   from a fixed constant plus the case index, so CI is reproducible.
//! - Strategies are generation functions, not value trees.

use std::rc::Rc;

pub mod test_runner {
    //! Config, error type, and the case-driving runner.

    /// Run-time configuration for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Upper bound on `prop_assume!` rejections across the whole
        /// run before the test aborts.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256, max_global_rejects: 65_536 }
        }
    }

    impl ProptestConfig {
        /// A default config with a specific case count.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases, ..ProptestConfig::default() }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case failed an assertion — the whole test fails.
        Fail(String),
        /// The case was rejected by `prop_assume!` — draw another.
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection (assumption not met) with the given message.
        pub fn reject(reason: impl Into<String>) -> TestCaseError {
            TestCaseError::Reject(reason.into())
        }
    }

    /// Deterministic per-case random source (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn new(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (`n` must be non-zero).
        pub fn below(&mut self, n: u64) -> u64 {
            self.next_u64() % n
        }
    }

    /// Drives a strategy through `config.cases` successful executions.
    pub struct TestRunner {
        config: ProptestConfig,
    }

    impl TestRunner {
        pub fn new(config: ProptestConfig) -> TestRunner {
            TestRunner { config }
        }

        /// Run `test` on fresh inputs until `cases` successes. Panics
        /// (failing the enclosing `#[test]`) on the first failure.
        pub fn run<S: crate::strategy::Strategy>(
            &mut self,
            strategy: &S,
            test: impl Fn(S::Value) -> Result<(), TestCaseError>,
        ) {
            let mut passed = 0u32;
            let mut rejected = 0u32;
            let mut case = 0u64;
            while passed < self.config.cases {
                // Fixed base seed: runs are reproducible and a failure
                // report's case index identifies the exact inputs.
                let seed = 0x50_52_4F_50_54_45_53_54u64 ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D);
                case += 1;
                let mut rng = TestRng::new(seed);
                let value = strategy.generate(&mut rng);
                match test(value) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => {
                        rejected += 1;
                        if rejected > self.config.max_global_rejects {
                            panic!(
                                "proptest: too many prop_assume! rejections \
                                 ({rejected} rejects for {passed} passes)"
                            );
                        }
                    }
                    Err(TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case #{case} failed (seed {seed:#x}, no shrinking): {msg}"
                        );
                    }
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::Rc;
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase into a clonable, shareable strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }

        /// Build a recursive strategy: at each of `depth` levels,
        /// choose between staying at the current depth and one
        /// application of `f` (which receives the shallower strategy).
        ///
        /// `_desired_size` and `_expected_branch_size` are accepted for
        /// proptest API compatibility; depth alone bounds the values
        /// here.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                let deeper = f(strat.clone()).boxed();
                strat = Union::new(vec![strat, deeper]).boxed();
            }
            strat
        }
    }

    /// A type-erased, reference-counted strategy (clonable so it can be
    /// reused inside recursive definitions).
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Always yields clones of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among several strategies for the same type
    /// (backs `prop_oneof!`; arms are unweighted).
    #[derive(Clone)]
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty => $wide:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                    let off = (rng.next_u64() as u128 % span) as $wide;
                    (self.start as $wide).wrapping_add(off) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "cannot sample empty range");
                    let span = (hi as $wide).wrapping_sub(lo as $wide) as u128 + 1;
                    let off = (rng.next_u64() as u128 % span) as $wide;
                    (lo as $wide).wrapping_add(off) as $t
                }
            }
        )*};
    }

    int_range_strategy!(
        u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
        i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
    );

    macro_rules! tuple_strategy {
        ($($S:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($S,)+) = self;
                    ($($S.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

pub mod arbitrary {
    //! `any::<T>()` over a small `Arbitrary` universe.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            core::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    impl<T: Arbitrary> Arbitrary for Vec<T> {
        fn arbitrary(rng: &mut TestRng) -> Vec<T> {
            // Length skews small but crosses typical block/word
            // boundaries (hash block = 64 bytes).
            let len = (rng.next_u64() % 96) as usize;
            (0..len).map(|_| T::arbitrary(rng)).collect()
        }
    }

    /// Strategy producing arbitrary values of `T`.
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A size specification: either exact or a half-open range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange { lo: *r.start(), hi: *r.end() + 1 }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from a
    /// [`SizeRange`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
    /// `prop::collection::vec(...)` etc. resolve through this alias.
    pub use crate as prop;
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies. Matches real proptest's surface syntax: an optional
/// `#![proptest_config(...)]` header, then functions whose parameters
/// are either `name in strategy` or `name: Type` (sugar for
/// `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_params! {
                cfg = ($cfg);
                pats = [];
                strats = [];
                body = $body;
                rest = [$($params)*];
            }
        }
        $crate::__proptest_fns! { cfg = ($cfg); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_params {
    // name in strategy, ...
    (cfg = ($cfg:expr); pats = [$(($p:pat))*]; strats = [$(($s:expr))*]; body = $body:block;
     rest = [$name:ident in $strat:expr, $($rest:tt)*];) => {
        $crate::__proptest_params! {
            cfg = ($cfg);
            pats = [$(($p))* ($name)];
            strats = [$(($s))* ($strat)];
            body = $body;
            rest = [$($rest)*];
        }
    };
    // name in strategy  (final, no trailing comma)
    (cfg = ($cfg:expr); pats = [$(($p:pat))*]; strats = [$(($s:expr))*]; body = $body:block;
     rest = [$name:ident in $strat:expr];) => {
        $crate::__proptest_params! {
            cfg = ($cfg);
            pats = [$(($p))* ($name)];
            strats = [$(($s))* ($strat)];
            body = $body;
            rest = [];
        }
    };
    // name: Type, ...
    (cfg = ($cfg:expr); pats = [$(($p:pat))*]; strats = [$(($s:expr))*]; body = $body:block;
     rest = [$name:ident : $ty:ty, $($rest:tt)*];) => {
        $crate::__proptest_params! {
            cfg = ($cfg);
            pats = [$(($p))* ($name)];
            strats = [$(($s))* ($crate::arbitrary::any::<$ty>())];
            body = $body;
            rest = [$($rest)*];
        }
    };
    // name: Type  (final, no trailing comma)
    (cfg = ($cfg:expr); pats = [$(($p:pat))*]; strats = [$(($s:expr))*]; body = $body:block;
     rest = [$name:ident : $ty:ty];) => {
        $crate::__proptest_params! {
            cfg = ($cfg);
            pats = [$(($p))* ($name)];
            strats = [$(($s))* ($crate::arbitrary::any::<$ty>())];
            body = $body;
            rest = [];
        }
    };
    // All parameters consumed: emit the runner invocation.
    (cfg = ($cfg:expr); pats = [$(($p:pat))+]; strats = [$(($s:expr))+]; body = $body:block;
     rest = [];) => {
        let config = $cfg;
        let mut runner = $crate::test_runner::TestRunner::new(config);
        let strategy = ($($s,)+);
        runner.run(&strategy, |($($p,)+)| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
            $body
            ::core::result::Result::Ok(())
        });
    };
}

/// Uniform (unweighted) choice among strategy arms.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Like `assert!`, but fails only the current case (with its inputs
/// reported) rather than unwinding past the runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `assert_eq!` analogue of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", lhs, rhs),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`: {}", lhs, rhs, format!($($fmt)+)),
            ));
        }
    }};
}

/// `assert_ne!` analogue of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", lhs, rhs),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs == rhs {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`: {}", lhs, rhs, format!($($fmt)+)),
            ));
        }
    }};
}

/// Reject the current case (it is redrawn, not failed) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Mixed `in`/`:` parameter forms, trailing comma, and `?` in
        /// the body.
        #[test]
        fn params_and_ranges(x in 1u32..100, y: u8, flip: bool,) {
            prop_assert!((1..100).contains(&x));
            let _ = y;
            if flip {
                Ok::<(), &str>(()).map_err(|e| TestCaseError::fail(e.to_string()))?;
            }
        }

        #[test]
        fn vec_sizes_respected(v in prop::collection::vec(any::<u8>(), 3..7), exact in prop::collection::vec(any::<u32>(), 4usize)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert_eq!(exact.len(), 4);
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![
            (0u32..10).prop_map(|n| n * 2),
            Just(1u32),
        ]) {
            prop_assert!(v == 1 || (v % 2 == 0 && v < 20));
        }

        #[test]
        fn signed_ranges(v in -2048i32..2048) {
            prop_assert!((-2048..2048).contains(&v));
        }

        #[test]
        fn assume_rejects_not_fails(v: u8) {
            prop_assume!(v % 2 == 0);
            prop_assert_eq!(v % 2, 0, "only even values reach the body");
        }
    }

    #[derive(Clone, Debug, PartialEq)]
    enum E {
        Leaf(u32),
        Neg(Box<E>),
        Add(Box<E>, Box<E>),
    }

    fn depth(e: &E) -> u32 {
        match e {
            E::Leaf(_) => 0,
            E::Neg(a) => 1 + depth(a),
            E::Add(a, b) => 1 + depth(a).max(depth(b)),
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// `prop_recursive` bounds nesting by its depth argument and
        /// produces non-leaf values.
        #[test]
        fn recursive_depth_bounded(e in any::<u32>().prop_map(E::Leaf).prop_recursive(4, 32, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
                inner.prop_map(|a| E::Neg(Box::new(a))),
            ]
        })) {
            prop_assert!(depth(&e) <= 4, "depth {} too deep: {:?}", depth(&e), e);
        }
    }

    #[test]
    fn recursion_actually_recurses() {
        // Over many deterministic draws, at least one non-leaf must
        // appear, or the Union weighting is broken.
        let strat = any::<u32>()
            .prop_map(E::Leaf)
            .prop_recursive(4, 32, 2, |inner| inner.prop_map(|a| E::Neg(Box::new(a))));
        let mut rng = crate::test_runner::TestRng::new(99);
        let saw_nested = (0..200).any(|_| depth(&strat.generate(&mut rng)) > 0);
        assert!(saw_nested);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        // No #[test] meta: driven manually by the should_panic test
        // below.
        fn always_fails(v: u32) {
            prop_assert!(v.count_ones() > 32, "forced failure");
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_panic_with_case_info() {
        always_fails();
    }
}
