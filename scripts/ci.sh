#!/bin/sh
# Full local CI gate: formatting, the unsafe-code ban, release build,
# tier-1 tests, workspace tests, all examples built and the quickstart
# run end-to-end, the constant-time lint against its findings baseline,
# the deterministic performance ratchet against perf_baseline.json,
# the certified-resource-bound ratchet against bound_baseline.json,
# the differential parallel-checker test under a fixed thread budget,
# the pipeline cache differential test (now including the ctcheck
# stage) run twice against one shared PARFAIT_CACHE_DIR (cold pass then
# warm pass — proving warm-run determinism), the serve-daemon gate (a
# recorded two-tenant session replayed cold then warm; the warm pass
# must be all cache hits), and clippy with warnings promoted to
# errors. Run from the repo root.
set -eux

# rustfmt's ignore option is nightly-only, so enumerate our packages
# instead of formatting the vendored ones.
for pkg in parfait parfait-telemetry parfait-riscv parfait-littlec \
    parfait-crypto parfait-rtl parfait-parallel parfait-cores \
    parfait-soc parfait-starling parfait-knox2 parfait-hsms \
    parfait-analyzer parfait-pipeline parfait-adversary parfait-bench \
    parfait-repro; do
    cargo fmt --check -p "$pkg"
done

# Every crate forbids unsafe code at the root; a new crate (or a
# removed attribute) must fail here, not in review.
for lib in src/lib.rs crates/*/src/lib.rs; do
    grep -q '#!\[forbid(unsafe_code)\]' "$lib" \
        || { echo "missing #![forbid(unsafe_code)] in $lib" >&2; exit 1; }
done

cargo build --release
cargo test -q
cargo test -q --workspace
# Every example must build, and the quickstart must run end-to-end.
cargo build --release --examples
cargo run --release --example quickstart
# Static constant-time lint: any finding not recorded in the baseline
# ratchet fails the build loudly.
cargo run --release -p parfait-bench --bin lint -- --baseline lint_baseline.json
# Deterministic performance ratchet: hot-path counters (analyzer
# fixpoint iterations and memo hits, FPS cycles, decode-cache hit
# rate, firmware-build memo hits) must not regress against
# perf_baseline.json; wall clock is only a generous backstop. Ratchet
# improvements in with `perfstat --baseline perf_baseline.json
# --update` (which refuses regressions).
./target/release/perfstat --baseline perf_baseline.json
# Certified-resource-bound ratchet: every production cell's certified
# WCET and stack depth may only tighten against bound_baseline.json.
# Ratchet tightened bounds in with `boundstat --baseline
# bound_baseline.json --update` (which refuses loosened bounds).
./target/release/boundstat --baseline bound_baseline.json
# The parallel FPS checker must be observationally identical to the
# sequential oracle regardless of the ambient thread budget.
PARFAIT_THREADS=2 cargo test -q --release --test fps_parallel
# The certificate cache must be deterministic across processes: the
# same test suite against the same cache directory, first cold then
# warm, must pass both times with byte-identical certificates.
PIPELINE_CACHE_DIR="${PARFAIT_CACHE_DIR:-target/ci-pipeline-cache}"
rm -rf "$PIPELINE_CACHE_DIR"
PARFAIT_CACHE_DIR="$PIPELINE_CACHE_DIR" cargo test -q --release --test pipeline_cache
PARFAIT_CACHE_DIR="$PIPELINE_CACHE_DIR" cargo test -q --release --test pipeline_cache
# Adversarial mutation smoke gate: one seeded fault per level must die
# at exactly the stage the ratcheted baseline records (DESIGN.md §12).
# The full catalog runs in the nightly path (drop --quick).
cargo run --release -p parfait-bench --bin mutatest -- \
    --quick --baseline mutation_baseline.json
# Observability gate: a cold instrumented verify must emit a metrics
# snapshot containing the pipeline, cache-ledger, worker-pool,
# contract-battery, and bound-analysis families, with every pipeline
# stage in StageKind::ALL represented (`@stages`); cold + --threads 2,
# so the FPS segment pool actually spins up. The seven-stage verify
# runs the contract battery and bound analysis cold here and must hit
# their certificates on the warm re-run.
OBS_CACHE_DIR="target/ci-obs-cache"
rm -rf "$OBS_CACHE_DIR"
PARFAIT_CACHE_DIR="$OBS_CACHE_DIR" ./target/release/verify \
    --app hasher --platform ibex --threads 2 \
    --json target/ci-obs-cold.json --metrics target/ci-obs-cold-metrics.json
./target/release/cachestat --check-metrics target/ci-obs-cold-metrics.json \
    --require pipeline_stage_,certcache_,pool_,fps_,contract_,bound_,@stages
PARFAIT_CACHE_DIR="$OBS_CACHE_DIR" ./target/release/verify \
    --app hasher --platform ibex --threads 2 \
    --metrics target/ci-obs-warm-metrics.json
# Warm runs must still surface the certified bounds (read back off the
# cached certificate, not recomputed), so bound_ is gated here too.
./target/release/cachestat --check-metrics target/ci-obs-warm-metrics.json \
    --require pipeline_stage_,certcache_,bound_,@stages
./target/release/cachestat --dir "$OBS_CACHE_DIR"
# Serve gate: the proof daemon replays a recorded two-tenant JSONL
# session twice against one cache root. The cold pass must answer every
# request (and say goodbye — graceful drain on shutdown); the warm pass
# must be cache hits all the way down: every result frame reports
# `cached: true` (servestat --expect-all-cached) and the metrics
# snapshot records zero stage misses (cachestat @nomiss).
SERVE_CACHE_DIR="target/ci-serve-cache"
rm -rf "$SERVE_CACHE_DIR"
printf '%s\n' \
    '{"op":"ping"}' \
    '{"op":"verify","id":"s1","tenant":"team-a","app":"hasher","cpu":"pico","opt":"-O2"}' \
    '{"op":"verify","id":"s2","tenant":"team-b","app":"hasher","cpu":"pico","opt":"-O2"}' \
    '{"op":"shutdown"}' > target/ci-serve-session.jsonl
PARFAIT_CACHE_DIR="$SERVE_CACHE_DIR" ./target/release/serve --threads 2 \
    --metrics target/ci-serve-cold-metrics.json \
    < target/ci-serve-session.jsonl > target/ci-serve-cold.jsonl
./target/release/servestat target/ci-serve-cold.jsonl \
    --expect-results 2 --expect-errors 0 --expect-bye
PARFAIT_CACHE_DIR="$SERVE_CACHE_DIR" ./target/release/serve --threads 2 \
    --metrics target/ci-serve-warm-metrics.json \
    < target/ci-serve-session.jsonl > target/ci-serve-warm.jsonl
./target/release/servestat target/ci-serve-warm.jsonl \
    --expect-results 2 --expect-errors 0 --expect-all-cached --expect-bye
./target/release/cachestat --check-metrics target/ci-serve-warm-metrics.json \
    --require serve_,certcache_,@nomiss
cargo clippy --workspace --all-targets -- -D warnings
