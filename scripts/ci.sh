#!/bin/sh
# Full local CI gate: release build, tier-1 tests, workspace tests, and
# clippy with warnings promoted to errors. Run from the repo root.
set -eux

cargo build --release
cargo test -q
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
