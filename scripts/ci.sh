#!/bin/sh
# Full local CI gate: formatting, release build, tier-1 tests, workspace
# tests, the differential parallel-checker test under a fixed thread
# budget, and clippy with warnings promoted to errors. Run from the
# repo root.
set -eux

# rustfmt's ignore option is nightly-only, so enumerate our packages
# instead of formatting the vendored ones.
for pkg in parfait parfait-telemetry parfait-riscv parfait-littlec \
    parfait-crypto parfait-rtl parfait-parallel parfait-cores \
    parfait-soc parfait-starling parfait-knox2 parfait-hsms \
    parfait-bench; do
    cargo fmt --check -p "$pkg"
done

cargo build --release
cargo test -q
cargo test -q --workspace
# The parallel FPS checker must be observationally identical to the
# sequential oracle regardless of the ambient thread budget.
PARFAIT_THREADS=2 cargo test -q --release --test fps_parallel
cargo clippy --workspace --all-targets -- -D warnings
