#!/bin/sh
# Benchmarks. Emits BENCH_fps.json (FPS-throughput: sequential oracle
# vs. the snapshot-fork parallel checker over the Table 4 matrix),
# BENCH_pipeline.json (proof pipeline: cold vs. warm verification via
# the content-addressed certificate cache), and BENCH_lint.json (static
# constant-time lint wall time, the contrast to a cold FPS run), and
# BENCH_mutatest.json (adversary catalog: time from seeded fault to
# stage rejection) at the repo root, plus BENCH_serve.json (the serve
# daemon vs. sequential one-shot sessions on one request mix — request
# throughput and dedup accounting, not wall-clock speedup), then
# BENCH_perf.json (the
# deterministic hot-path counters compared against perf_baseline.json —
# the same ratchet CI enforces, so a bench run reports the comparison
# alongside the numbers it just produced). Run from the repo root.
#
#   scripts/bench.sh            # quick matrices (hasher-only)
#   FULL=1 scripts/bench.sh     # full matrices (adds the ECDSA runs)
#   THREADS=8 scripts/bench.sh  # override the thread budget
set -eux

cargo build --release -p parfait-bench

QUICK="--quick"
[ "${FULL:-0}" = "1" ] && QUICK=""
THREADS="${THREADS:-$(nproc 2>/dev/null || echo 4)}"

# Each bin also writes its RunManifest (build id, env knobs, thread
# count, metrics snapshot) next to the BENCH_*.json it produced, so a
# result is never separated from the conditions that generated it.
./target/release/bench_fps $QUICK --threads "$THREADS" \
    --json BENCH_fps.json --metrics BENCH_fps.manifest.json
./target/release/bench_pipeline $QUICK --threads "$THREADS" \
    --json BENCH_pipeline.json --metrics BENCH_pipeline.manifest.json
./target/release/bench_lint $QUICK \
    --json BENCH_lint.json --metrics BENCH_lint.manifest.json
./target/release/bench_mutatest --threads "$THREADS" \
    --json BENCH_mutatest.json --metrics BENCH_mutatest.manifest.json
# The serve daemon vs. sequential one-shot sessions on an identical
# two-tenant request mix (throughput and dedup accounting; the
# certificate byte-identity assertions run inside the bin).
./target/release/bench_serve $QUICK --threads "$THREADS" \
    --json BENCH_serve.json --metrics BENCH_serve.manifest.json
# The perf ratchet's fixed workloads, measured fresh and compared
# against the checked-in baseline; a regression fails the bench run
# loudly, exactly as it would fail CI.
./target/release/perfstat --baseline perf_baseline.json \
    --json BENCH_perf.json --metrics BENCH_perf.manifest.json
