#!/bin/sh
# FPS-throughput benchmark: sequential oracle vs. the snapshot-fork
# parallel checker over the Table 4 matrix. Emits BENCH_fps.json at the
# repo root. Run from the repo root.
#
#   scripts/bench.sh            # quick matrix (hasher on both cores)
#   FULL=1 scripts/bench.sh     # full matrix (adds the ECDSA runs)
#   THREADS=8 scripts/bench.sh  # override the thread budget
set -eux

cargo build --release -p parfait-bench

QUICK="--quick"
[ "${FULL:-0}" = "1" ] && QUICK=""
THREADS="${THREADS:-$(nproc 2>/dev/null || echo 4)}"

./target/release/bench_fps $QUICK --threads "$THREADS" --json BENCH_fps.json
