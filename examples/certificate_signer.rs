//! A miniature certificate authority backed by the ECDSA-signing HSM —
//! the paper's motivating application (§1: "single-function devices
//! intended to perform security-critical operations such as ECDSA
//! public-key signatures").
//!
//! The CA keeps its signing key inside the HSM; the host only ever sees
//! certificate hashes and signatures. Certificates are verified against
//! the CA public key with the specification-level crypto library.
//!
//! ```sh
//! cargo run --release --example certificate_signer
//! ```

use parfait::lockstep::Codec;
use parfait::StateMachine;
use parfait_crypto::ecdsa::public_key;
use parfait_crypto::{ecdsa_p256_verify, sha256, Signature};
use parfait_hsms::ecdsa::{
    EcdsaCodec, EcdsaCommand, EcdsaResponse, EcdsaSpec, COMMAND_SIZE, RESPONSE_SIZE, STATE_SIZE,
};
use parfait_hsms::firmware::ecdsa_app_source;
use parfait_hsms::platform::{build_firmware, make_soc, AppSizes, Cpu};
use parfait_knox2::WireDriver;
use parfait_littlec::codegen::OptLevel;
use parfait_rtl::Circuit;

/// A toy certificate: subject + public-key fingerprint + validity.
struct Certificate {
    subject: String,
    key_fingerprint: [u8; 32],
    not_after: u64,
}

impl Certificate {
    /// The to-be-signed hash (the `NoHash` pre-hash the HSM consumes).
    fn tbs_hash(&self) -> [u8; 32] {
        let mut tbs = Vec::new();
        tbs.extend_from_slice(self.subject.as_bytes());
        tbs.extend_from_slice(&self.key_fingerprint);
        tbs.extend_from_slice(&self.not_after.to_be_bytes());
        sha256(&tbs)
    }
}

fn main() {
    println!("building the ECDSA certificate-signing HSM firmware...");
    let sizes = AppSizes { state: STATE_SIZE, command: COMMAND_SIZE, response: RESPONSE_SIZE };
    let firmware = build_firmware(&ecdsa_app_source(), sizes, OptLevel::O2).unwrap();

    let spec = EcdsaSpec;
    let codec = EcdsaCodec;
    let mut spec_state = spec.init();
    let mut soc = make_soc(Cpu::Ibex, firmware, &codec.encode_state(&spec_state));
    let wire = WireDriver::new(COMMAND_SIZE, RESPONSE_SIZE);

    // Provision the CA: the signing key enters the HSM once, at
    // initialization, and can never be read back out (there is no such
    // command in the 40-line spec — that *is* the security argument).
    let sig_key = *b"ca-signing-key-0123456789abcdef!";
    let prf_key = *b"nonce-prf-key-0123456789abcdef!!";
    let init = EcdsaCommand::Initialize { prf_key, sig_key };
    let resp = wire.run(&mut soc, &codec.encode_command(&init)).unwrap();
    let (s2, want) = spec.step(&spec_state, &init);
    spec_state = s2;
    assert_eq!(codec.decode_response(&resp), want);
    println!("CA provisioned (the key now lives only in FRAM)");

    // Fetch the CA public key FROM THE DEVICE (GetPublicKey command) and
    // cross-check it against the library derivation.
    let resp = wire.run(&mut soc, &codec.encode_command(&EcdsaCommand::GetPublicKey)).unwrap();
    let EcdsaResponse::PublicKey(Some(q)) = codec.decode_response(&resp) else {
        panic!("device must export its public key");
    };
    let ca_pub = public_key(&sig_key).expect("valid CA key");
    let mut expect = [0u8; 64];
    expect[..32].copy_from_slice(&parfait_crypto::bignum::to_be_bytes(&ca_pub.0));
    expect[32..].copy_from_slice(&parfait_crypto::bignum::to_be_bytes(&ca_pub.1));
    assert_eq!(q, expect, "device-exported key matches the derivation");
    println!("CA public key exported from the device ({} bytes)", q.len());

    let certs = [
        Certificate {
            subject: "CN=alice.example.org".into(),
            key_fingerprint: sha256(b"alice-public-key"),
            not_after: 1_893_456_000,
        },
        Certificate {
            subject: "CN=bob.example.org".into(),
            key_fingerprint: sha256(b"bob-public-key"),
            not_after: 1_893_456_000,
        },
    ];

    for cert in &certs {
        let msg = cert.tbs_hash();
        let cmd = EcdsaCommand::Sign { msg };
        let t0 = soc.cycles();
        let resp_bytes = wire.run(&mut soc, &codec.encode_command(&cmd)).unwrap();
        let resp = codec.decode_response(&resp_bytes);
        let (s2, want) = spec.step(&spec_state, &cmd);
        spec_state = s2;
        assert_eq!(resp, want, "SoC signature matches the specification");
        let EcdsaResponse::Signature(Some(sig)) = resp else {
            panic!("expected a signature");
        };
        // Anyone can verify against the CA public key.
        let ok = ecdsa_p256_verify(&msg, &ca_pub, &Signature::from_bytes(&sig).unwrap());
        assert!(ok);
        println!(
            "issued certificate for {} ({} SoC cycles, signature verifies)",
            cert.subject,
            soc.cycles() - t0
        );
    }

    assert!(soc.core.leaks().is_empty());
    println!("\n2 certificates issued; CA key never left the device");
}
