//! A password vault hardened with the password-hashing HSM — the
//! paper's second application (§7.1, after Brekalo et al.): stolen
//! password databases cannot be brute-forced offline, because hashes
//! are keyed by a secret that never leaves the device.
//!
//! ```sh
//! cargo run --release --example password_vault
//! ```

use std::collections::HashMap;

use parfait::lockstep::Codec;
use parfait::StateMachine;
use parfait_crypto::sha256;
use parfait_hsms::firmware::hasher_app_source;
use parfait_hsms::hasher::{
    HasherCodec, HasherCommand, HasherResponse, HasherSpec, COMMAND_SIZE, RESPONSE_SIZE, STATE_SIZE,
};
use parfait_hsms::platform::{build_firmware, make_soc, AppSizes, Cpu};
use parfait_knox2::WireDriver;
use parfait_littlec::codegen::OptLevel;
use parfait_soc::Soc;

/// The server's password database: username → HSM-keyed digest.
struct Vault {
    soc: Soc,
    wire: WireDriver,
    records: HashMap<String, [u8; 32]>,
}

impl Vault {
    fn new(device_secret: [u8; 32]) -> Vault {
        let sizes = AppSizes { state: STATE_SIZE, command: COMMAND_SIZE, response: RESPONSE_SIZE };
        let firmware =
            build_firmware(&hasher_app_source(), sizes, OptLevel::O2).expect("firmware builds");
        let codec = HasherCodec;
        let mut soc = make_soc(Cpu::Pico, firmware, &codec.encode_state(&HasherSpec.init()));
        let wire = WireDriver::new(COMMAND_SIZE, RESPONSE_SIZE);
        let init = HasherCommand::Initialize { secret: device_secret };
        wire.run(&mut soc, &codec.encode_command(&init)).expect("initialize");
        Vault { soc, wire, records: HashMap::new() }
    }

    /// Hash a password through the device.
    fn device_hash(&mut self, password: &str) -> [u8; 32] {
        let message = sha256(password.as_bytes()); // pre-hash to 32 bytes
        let codec = HasherCodec;
        let cmd = HasherCommand::Hash { message };
        let resp = self.wire.run(&mut self.soc, &codec.encode_command(&cmd)).expect("hash");
        match codec.decode_response(&resp) {
            HasherResponse::Hashed(d) => d,
            other => panic!("unexpected response {other:?}"),
        }
    }

    fn enroll(&mut self, user: &str, password: &str) {
        let digest = self.device_hash(password);
        self.records.insert(user.to_string(), digest);
    }

    fn check(&mut self, user: &str, password: &str) -> bool {
        let Some(stored) = self.records.get(user).copied() else {
            return false;
        };
        let candidate = self.device_hash(password);
        parfait_crypto::ct::eq(&stored, &candidate)
    }
}

fn main() {
    let mut vault = Vault::new(*b"device-unique-secret-32-bytes!!!");
    vault.enroll("alice", "correct horse battery staple");
    vault.enroll("bob", "hunter2");
    println!("enrolled 2 users");

    assert!(vault.check("alice", "correct horse battery staple"));
    assert!(!vault.check("alice", "wrong password"));
    assert!(vault.check("bob", "hunter2"));
    assert!(!vault.check("mallory", "anything"));
    println!("login checks behave correctly");

    // The offline-attack story: an attacker who steals `records` cannot
    // test candidate passwords without the device, because the digests
    // are keyed by the in-device secret. Demonstrate: recompute the
    // digest WITHOUT the device secret — it does not match.
    let stolen = vault.records["bob"];
    let offline_guess = parfait_crypto::hmac_blake2s(&[0u8; 32], &sha256(b"hunter2"));
    assert_ne!(stolen.to_vec(), offline_guess.to_vec());
    println!("offline brute-force without the device secret fails");

    // And the spec predicts the device exactly (IPR in action).
    let spec = HasherSpec;
    let codec = HasherCodec;
    let (st, _) = spec.step(
        &spec.init(),
        &HasherCommand::Initialize { secret: *b"device-unique-secret-32-bytes!!!" },
    );
    let (_, want) = spec.step(&st, &HasherCommand::Hash { message: sha256(b"hunter2") });
    assert_eq!(HasherResponse::Hashed(stolen), want);
    let _ = codec;
    println!("device behaviour matches the 30-line specification");
}
