//! Quickstart: build a verified password-hashing HSM, run it on the
//! cycle-accurate Ibex-like SoC, and talk to it over the wire.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use parfait::lockstep::Codec;
use parfait::StateMachine;
use parfait_hsms::firmware::hasher_app_source;
use parfait_hsms::hasher::{
    HasherCodec, HasherCommand, HasherSpec, COMMAND_SIZE, RESPONSE_SIZE, STATE_SIZE,
};
use parfait_hsms::platform::{build_firmware, make_soc, AppSizes, Cpu};
use parfait_knox2::WireDriver;
use parfait_littlec::codegen::OptLevel;
use parfait_rtl::Circuit;

fn main() {
    // 1. Compile the littlec application + system software into a
    //    RISC-V firmware image (the paper's App Impl → Asm pipeline).
    let sizes = AppSizes { state: STATE_SIZE, command: COMMAND_SIZE, response: RESPONSE_SIZE };
    let firmware =
        build_firmware(&hasher_app_source(), sizes, OptLevel::O2).expect("firmware builds");
    println!(
        "firmware: {} bytes of ROM, {} bytes of initialized data",
        firmware.rom.len(),
        firmware.ram_init.len()
    );

    // 2. Instantiate the SoC: CPU + ROM + RAM + FRAM + wire I/O port.
    let spec = HasherSpec;
    let codec = HasherCodec;
    let mut state = spec.init();
    let mut soc = make_soc(Cpu::Ibex, firmware, &codec.encode_state(&state));

    // 3. Talk to the device over the wire, exactly like a host would.
    let wire = WireDriver::new(COMMAND_SIZE, RESPONSE_SIZE);
    let commands = [
        HasherCommand::Initialize { secret: *b"super-secret-hmac-key-32-bytes!!" },
        HasherCommand::Hash { message: *b"hunter2_pre-hashed_to_32_bytes__" },
        HasherCommand::Hash { message: *b"correct-horse-battery-staple-32b" },
    ];
    for cmd in commands {
        let t0 = soc.cycles();
        let resp_bytes = wire.run(&mut soc, &codec.encode_command(&cmd)).expect("response");
        let resp = codec.decode_response(&resp_bytes);
        // The specification (paper fig. 12) predicts every byte.
        let (next, want) = spec.step(&state, &cmd);
        assert_eq!(resp, want, "the SoC refines the spec");
        state = next;
        println!("{cmd:?}\n  -> {resp:?}\n  ({} cycles)", soc.cycles() - t0);
    }

    // 4. Non-leakage diagnostics: no secret-derived value reached the
    //    processor's control state during the entire session.
    assert!(soc.core.leaks().is_empty());
    println!("\nno taint reached control state; all responses match the 30-line spec");
}
