//! Porting an HSM to a new hardware platform — the paper's §8.1
//! experiment ("porting the platform to use a different CPU took just
//! two hours of developer time and 10 lines of changed proof code").
//!
//! In this reproduction the app, system software, firmware build, spec,
//! driver, and verification harness are all CPU-agnostic; the *entire*
//! port is the choice of `Cpu::Pico` instead of `Cpu::Ibex` — the
//! 10-line state mapping of fig. 10 lives behind the `Core` trait that
//! both models implement.
//!
//! ```sh
//! cargo run --release --example port_new_platform
//! ```

use std::time::Instant;

use parfait::lockstep::Codec;
use parfait::StateMachine;
use parfait_hsms::firmware::hasher_app_source;
use parfait_hsms::hasher::{
    HasherCodec, HasherSpec, HasherState, COMMAND_SIZE, RESPONSE_SIZE, STATE_SIZE,
};
use parfait_hsms::platform::{build_firmware, make_soc, AppSizes, Cpu};
use parfait_hsms::syssw;
use parfait_knox2::{check_fps, CircuitEmulator, FpsConfig, HostOp};
use parfait_littlec::codegen::OptLevel;
use parfait_littlec::validate::asm_machine;
use parfait_soc::Soc;

fn main() {
    let sizes = AppSizes { state: STATE_SIZE, command: COMMAND_SIZE, response: RESPONSE_SIZE };
    // ONE firmware image, ONE spec, ONE script...
    let fw = build_firmware(&hasher_app_source(), sizes, OptLevel::O2).unwrap();
    let program = parfait_littlec::frontend(&hasher_app_source()).unwrap();
    let spec =
        asm_machine(&program, OptLevel::O2, STATE_SIZE, COMMAND_SIZE, RESPONSE_SIZE).unwrap();
    let codec = HasherCodec;
    let secret = codec.encode_state(&HasherState { secret: [0x42; 32] });
    let cfg = FpsConfig {
        command_size: COMMAND_SIZE,
        response_size: RESPONSE_SIZE,
        timeout: 50_000_000,
        state_size: STATE_SIZE,
    };
    let project = |soc: &Soc| syssw::active_state(&soc.fram_bytes(0, 256), STATE_SIZE);
    let script = vec![
        HostOp::Command(
            codec.encode_command(&parfait_hsms::hasher::HasherCommand::Hash { message: [7; 32] }),
        ),
        HostOp::Command(vec![0xEE; COMMAND_SIZE]),
    ];

    // ...verified on BOTH platforms. The port is this one enum value.
    for cpu in [Cpu::Ibex, Cpu::Pico] {
        let mut real = make_soc(cpu, fw.clone(), &secret);
        let dummy = make_soc(cpu, fw.clone(), &codec.encode_state(&HasherSpec.init()));
        let mut emu = CircuitEmulator::new(dummy, &spec, secret.clone(), COMMAND_SIZE);
        let t0 = Instant::now();
        let report = check_fps(&mut real, &mut emu, &cfg, &project, &script)
            .unwrap_or_else(|e| panic!("{cpu}: {e}"));
        println!(
            "{cpu:10} verified: {:>9} cycles in {:>7.3}s ({:.2}M cyc/s)",
            report.cycles,
            t0.elapsed().as_secs_f64(),
            report.cycles_per_second() / 1e6
        );
    }
    println!("\nport effort: 1 changed line (the Cpu enum); everything else reused");
}
