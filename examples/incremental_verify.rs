//! Incremental verification with the proof pipeline: verify the
//! password-hasher HSM end-to-end (speccheck → lockstep → equivalence
//! → FPS), then verify it again against the same certificate cache and
//! watch every stage come back as a near-instant cache hit.
//!
//! ```sh
//! cargo run --release --example incremental_verify
//! ```
//!
//! In day-to-day use, point `PARFAIT_CACHE_DIR` at a persistent
//! directory and run `verify`; this example uses a private temporary
//! cache so it is self-contained and always starts cold.

use std::time::Instant;

use parfait_hsms::platform::Cpu;
use parfait_knox2::FpsObserver;
use parfait_littlec::codegen::OptLevel;
use parfait_pipeline::{CellReport, CertCache, Pipeline, StdApp};

fn show(label: &str, cell: &CellReport, secs: f64) {
    println!("{label} ({secs:.3}s total):");
    for s in &cell.stages {
        println!(
            "  {:<12} {:>9.4}s  {}  {} ⇒ {}",
            s.certificate.stage.to_string(),
            s.wall.as_secs_f64(),
            if s.cache_hit { "[cache hit ]" } else { "[ran fresh ]" },
            s.certificate.claim.0,
            s.certificate.claim.1,
        );
    }
    println!(
        "  composed     end-to-end claim: {} ≈IPR {} (inputs {})",
        cell.composed.claim.0,
        cell.composed.claim.1,
        cell.composed.inputs.short()
    );
}

fn main() {
    let cache_dir =
        std::env::temp_dir().join(format!("parfait-incremental-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let app = StdApp::Hasher.pipeline();
    let obs = FpsObserver::default();
    let threads = parfait_parallel::default_threads();

    // Cold: every stage runs and mints a certificate into the cache.
    let pipeline = Pipeline::new(CertCache::at(cache_dir.clone()), Default::default());
    let t0 = Instant::now();
    let cold = pipeline.verify_cell(&app, Cpu::Ibex, OptLevel::O2, &obs, threads).unwrap();
    let cold_secs = t0.elapsed().as_secs_f64();
    show("cold run", &cold, cold_secs);

    // Warm: a brand-new pipeline handle (as a fresh process would be)
    // finds every certificate on disk.
    let pipeline = Pipeline::new(CertCache::at(cache_dir.clone()), Default::default());
    let t0 = Instant::now();
    let warm = pipeline.verify_cell(&app, Cpu::Ibex, OptLevel::O2, &obs, threads).unwrap();
    let warm_secs = t0.elapsed().as_secs_f64();
    show("warm run", &warm, warm_secs);

    assert!(warm.fully_cached(), "warm run must be fully cached");
    assert_eq!(
        warm.composed.canonical(),
        cold.composed.canonical(),
        "cached certificates are byte-identical to fresh ones"
    );
    println!(
        "\nunchanged app re-verified {:.0}x faster ({cold_secs:.3}s → {warm_secs:.4}s); \
         certificates byte-identical",
        cold_secs / warm_secs.max(1e-9)
    );
    let _ = std::fs::remove_dir_all(&cache_dir);
}
