//! Leak hunt: plant a timing side channel in the HSM firmware and watch
//! the Knox2 verification catch it — the paper's §8.1 development-cycle
//! story ("Knox2 verification will fail with a mismatch between the real
//! circuit's execution and the emulator's execution ... this will
//! generally reveal non-constant-time code, such as `if (secret) ...`").
//!
//! ```sh
//! cargo run --release --example leak_hunt
//! ```

use parfait::lockstep::Codec;
use parfait::StateMachine;
use parfait_hsms::firmware::hasher_app_source;
use parfait_hsms::hasher::{
    HasherCodec, HasherCommand, HasherSpec, HasherState, COMMAND_SIZE, RESPONSE_SIZE, STATE_SIZE,
};
use parfait_hsms::platform::{build_firmware, make_soc, AppSizes, Cpu};
use parfait_hsms::syssw;
use parfait_knox2::{check_fps, CircuitEmulator, FpsConfig, HostOp};
use parfait_littlec::codegen::OptLevel;
use parfait_littlec::validate::asm_machine;
use parfait_soc::Soc;

fn verify(app_source: &str, label: &str) {
    let sizes = AppSizes { state: STATE_SIZE, command: COMMAND_SIZE, response: RESPONSE_SIZE };
    let fw = build_firmware(app_source, sizes, OptLevel::O2).unwrap();
    let program = parfait_littlec::frontend(app_source).unwrap();
    let spec =
        asm_machine(&program, OptLevel::O2, STATE_SIZE, COMMAND_SIZE, RESPONSE_SIZE).unwrap();
    let codec = HasherCodec;
    let secret = codec.encode_state(&HasherState { secret: *b"the-secret-the-adversary-wants!!" });
    let mut real = make_soc(Cpu::Ibex, fw.clone(), &secret);
    let dummy_soc = make_soc(Cpu::Ibex, fw, &codec.encode_state(&HasherSpec.init()));
    let mut emu = CircuitEmulator::new(dummy_soc, &spec, secret, COMMAND_SIZE);
    let cfg = FpsConfig {
        command_size: COMMAND_SIZE,
        response_size: RESPONSE_SIZE,
        timeout: 50_000_000,
        state_size: STATE_SIZE,
    };
    let project = |soc: &Soc| syssw::active_state(&soc.fram_bytes(0, 256), STATE_SIZE);
    let script =
        vec![HostOp::Command(codec.encode_command(&HasherCommand::Hash { message: [0x11; 32] }))];
    print!("{label}: ");
    match check_fps(&mut real, &mut emu, &cfg, &project, &script) {
        Ok(report) => println!(
            "VERIFIED — {} cycles, wire trace of the real device is cycle-identical \
             to the emulator's (which never saw the secret)",
            report.cycles
        ),
        Err(e) => println!("LEAK FOUND — {e}"),
    }
}

fn main() {
    // The shipped firmware is leakage-free.
    verify(&hasher_app_source(), "clean firmware      ");

    // Bug 1: an "optimization" that skips work when the first secret
    // byte is zero — a textbook secret-dependent branch.
    let branchy = hasher_app_source().replace(
        "u8 digest[32];",
        "if (state[0] == 0) { resp[0] = 2; return; }\n        u8 digest[32];",
    );
    assert_ne!(branchy, hasher_app_source());
    verify(&branchy, "secret-branch bug   ");

    // Bug 2: a data-dependent divide on the secret — the hardware's
    // iterative divider takes a different number of cycles per value.
    let divy = hasher_app_source().replace(
        "u8 digest[32];",
        "u32 pace = (state[0] + 1) / (cmd[1] | 1);\n        resp[0] = (u8)(resp[0] + 0 * pace);\n        u8 digest[32];",
    );
    assert_ne!(divy, hasher_app_source());
    verify(&divy, "variable-latency bug");
}
